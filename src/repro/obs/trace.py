"""Spans, the tracer, and span export (ring buffer + JSONL).

A :class:`Span` is one timed operation: a name, a trace/span id pair,
an optional parent span id, wall-clock start, duration, a status and a
flat attribute dict.  A :class:`Tracer` creates spans (parenting them
on the current :mod:`repro.obs.context` automatically), keeps the most
recent ones in a bounded in-process ring buffer (served by
``GET /v1/traces``), and optionally appends every finished span as one
JSON line to a trace file (``repro-hetsim serve --trace-file`` /
``campaign --trace-file``).

Foreign spans -- built by campaign pool workers in another process and
shipped home as payload dicts -- enter the same buffer/file through
:meth:`Tracer.record`, so one trace's spans end up queryable in one
place no matter which substrate executed them.

The module-level tracer (:func:`get_tracer`) is what the service, the
campaign runner and the profiling hooks share; tests build private
:class:`Tracer` instances to assert in isolation.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

from .context import (
    SpanContext,
    attach,
    current_context,
    detach,
    new_span_id,
    new_trace_id,
)

__all__ = ["Span", "Tracer", "get_tracer", "configure_tracer"]

#: Default ring-buffer capacity (spans, newest win).
DEFAULT_BUFFER_SIZE = 4096


class Span:
    """One timed operation inside a trace.

    Use as a context manager (the usual way, via
    :meth:`Tracer.span`) or drive :meth:`finish` manually.  Mutating
    accessors are not thread-safe; a span belongs to the one logical
    flow that created it.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "duration_s",
        "status",
        "attributes",
        "_start_perf",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        tracer: "Tracer",
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_unix = time.time()
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self._start_perf = time.perf_counter()
        self._tracer = tracer
        self._token = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def backdate(self, start_unix: float, start_perf: float) -> "Span":
        """Rebase the span's start to an earlier instant.

        For spans created at *settle* time for work that was queued
        earlier (the campaign runner's per-task spans): the span then
        covers submit-to-settle, and queue wait becomes visible.
        """
        self.start_unix = start_unix
        self._start_perf = start_perf
        return self

    def finish(self, status: Optional[str] = None) -> None:
        """Stamp the duration and hand the span to the tracer (once)."""
        if self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self._start_perf
        if status is not None:
            self.status = status
        self._tracer.record(self.payload())

    def payload(self) -> Dict[str, Any]:
        """The JSON-ready export form (one JSONL line / buffer entry)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_ms": (
                None
                if self.duration_s is None
                else round(self.duration_s * 1e3, 6)
            ),
            "status": self.status,
            "attributes": self.attributes,
        }

    def __enter__(self) -> "Span":
        self._token = attach(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            detach(self._token)
            self._token = None
        self.finish("error" if exc_type is not None else None)


class Tracer:
    """Creates spans and owns their export (ring buffer + JSONL file).

    Thread-safe: spans finish on the event loop, on dispatcher worker
    threads, and on the campaign runner's settle path; the buffer and
    the file handle are guarded by one lock.
    """

    def __init__(
        self,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        export_path: Optional[str] = None,
    ):
        self._lock = threading.Lock()
        self._buffer: "deque[Dict[str, Any]]" = deque(maxlen=buffer_size)
        self._export_path = export_path
        self._exported = 0
        self._dropped = 0
        self._dropped_counter = None

    # -- span creation -----------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """A new span, parented on ``parent`` or the current context.

        With neither a parent nor an enclosing span, the span starts a
        fresh trace (or joins ``trace_id`` when given -- the serving
        layer uses that to honour client-supplied request ids).
        """
        parent = parent if parent is not None else current_context()
        if parent is not None:
            trace = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace = trace_id or new_trace_id()
            parent_id = None
        return Span(
            name=name,
            trace_id=trace,
            span_id=new_span_id(),
            parent_id=parent_id,
            tracer=self,
            attributes=attributes,
        )

    # -- export ------------------------------------------------------------

    def record(self, payload: Dict[str, Any]) -> None:
        """Accept one finished span payload (local or from a worker).

        A full ring buffer evicts its oldest span -- and *counts* it:
        the per-tracer ``dropped`` tally surfaces in :meth:`stats` (and
        the ``GET /v1/traces`` eviction note), and the process-wide
        ``repro_trace_spans_dropped_total`` counter makes silent trace
        loss alertable.
        """
        evicted = False
        with self._lock:
            if (
                self._buffer.maxlen is not None
                and len(self._buffer) == self._buffer.maxlen
            ):
                evicted = True
                self._dropped += 1
            self._buffer.append(payload)
            self._exported += 1
            if self._export_path is not None:
                line = json.dumps(payload, separators=(",", ":"))
                with open(
                    self._export_path, "a", encoding="utf-8"
                ) as handle:
                    handle.write(line + "\n")
        if evicted:
            if self._dropped_counter is None:
                # Lazy: the metrics module imports nothing from here,
                # but binding at construction would force every Tracer
                # (including bare test instances) through the registry.
                from .metrics import get_registry

                self._dropped_counter = get_registry().counter(
                    "repro_trace_spans_dropped_total",
                    "Spans evicted from tracer ring buffers before "
                    "being read",
                )
            self._dropped_counter.inc()

    def set_export_path(self, path: Optional[str]) -> None:
        """Start (or stop, with None) appending spans to a JSONL file."""
        with self._lock:
            self._export_path = path

    @property
    def export_path(self) -> Optional[str]:
        with self._lock:
            return self._export_path

    # -- query -------------------------------------------------------------

    def spans(
        self,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Buffered spans, oldest first, optionally filtered/capped.

        ``limit`` keeps the *newest* N after filtering -- the tail is
        what an operator debugging a live server wants.
        """
        with self._lock:
            spans = list(self._buffer)
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == trace_id]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every buffered span of one trace, oldest first."""
        return self.spans(trace_id=trace_id)

    def clear(self) -> None:
        """Drop the buffer (tests; the JSONL file is left alone)."""
        with self._lock:
            self._buffer.clear()

    def stats(self) -> Dict[str, Any]:
        """Buffer occupancy, lifetime export count, eviction tally."""
        with self._lock:
            return {
                "buffered": len(self._buffer),
                "capacity": self._buffer.maxlen,
                "exported": self._exported,
                "dropped": self._dropped,
                "export_path": self._export_path,
            }

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.spans())


#: The process-wide tracer shared by the service/campaign/perf layers.
_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    """The process-wide shared tracer."""
    return _GLOBAL


def configure_tracer(
    trace_file: Optional[str] = None,
    buffer_size: Optional[int] = None,
) -> Tracer:
    """(Re)configure the global tracer; returns it.

    ``buffer_size`` rebuilds the ring buffer (keeping the newest
    spans); ``trace_file`` switches JSONL export on (or off via None
    -- pass the current path to leave it untouched).
    """
    with _GLOBAL._lock:
        if buffer_size is not None:
            _GLOBAL._buffer = deque(
                _GLOBAL._buffer, maxlen=buffer_size
            )
        _GLOBAL._export_path = trace_file
    return _GLOBAL
