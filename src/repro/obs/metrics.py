"""The unified metrics registry: counters, gauges, windowed histograms.

Before this module each layer kept private counters --
``ServiceMetrics`` for requests, ``repro.perf.cache`` for memoization,
the campaign store for hits/misses -- and ``GET /metrics`` glued their
snapshots together by hand.  :class:`MetricsRegistry` inverts that:
every layer registers named instruments into one registry, and the
registry renders them all, in either of two forms:

* :meth:`MetricsRegistry.snapshot` -- the JSON dict behind the
  existing ``GET /metrics`` endpoint and ``repro-hetsim
  metrics-dump``;
* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  exposition format behind ``GET /metrics?format=prom`` (histograms
  export as summaries with interpolated ``quantile`` samples).

Instruments are get-or-create by name, so independent components (two
:class:`~repro.campaign.store.ResultStore` instances, say) share one
counter family and their increments simply add.  Label sets follow the
Prometheus model: one instrument, many ``(label=value, ...)`` series.

Histograms keep a bounded window of recent observations (a
serving-horizon estimate, right for long-lived processes) plus
lifetime count/sum; quantiles interpolate linearly between closest
ranks (:func:`percentile`), which is also the fix for the seed's
nearest-rank p99 bias on small windows.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "render_merged",
    "validate_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default bounded-window width for histograms (samples per series).
DEFAULT_WINDOW = 2048

#: Quantiles exported for every histogram, everywhere.
EXPORT_QUANTILES = (0.5, 0.9, 0.99)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linearly interpolated percentile of ``samples``.

    Matches ``numpy.percentile(..., method="linear")``: the q-th
    quantile sits at fractional rank ``q * (n - 1)`` of the sorted
    samples, interpolating between the two closest ranks.  Unlike the
    nearest-rank rule this does not bias high quantiles low on small
    windows (with 10 samples, nearest-rank p99 returns the *9th* value
    -- the maximum is unreachable).

    An empty sequence returns 0.0 (metrics export must never raise);
    one sample returns that sample for every q.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _render_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Instrument:
    """Shared shape: a name, help text, and per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def _series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], float]]:
        raise NotImplementedError

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        """Every (labels, value) pair, labels as plain dicts."""
        return [(dict(key), value) for key, value in self._series()]

    def snapshot_value(self) -> Any:
        """JSON form: a bare number without labels, else a dict."""
        series = self._series()
        if len(series) == 1 and not series[0][0]:
            return series[0][1]
        return {
            ",".join(f"{k}={v}" for k, v in key) or "": value
            for key, value in series
        }

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help or self.name}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, value in self._series():
            lines.append(
                f"{self.name}{_render_labels(key)} {_fmt(value)}"
            )
        return lines


class Counter(_Instrument):
    """A monotonically increasing sum (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _series(self):
        with self._lock:
            if not self._values:
                return [((), 0.0)]
            return sorted(self._values.items())


class Gauge(_Instrument):
    """A value that can go both ways; optionally callback-backed.

    A callback gauge reads its value lazily at export time --
    :mod:`repro.perf.cache` uses this so the registry always reflects
    the live cache totals without double bookkeeping.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, help)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}
        self.callback = callback

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if self.callback is not None:
            return float(self.callback())
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _series(self):
        if self.callback is not None:
            try:
                return [((), float(self.callback()))]
            except Exception:
                return [((), float("nan"))]
        with self._lock:
            if not self._values:
                return [((), 0.0)]
            return sorted(self._values.items())


class Histogram(_Instrument):
    """Bounded-window observations with lifetime count/sum.

    Quantiles are computed over the most recent ``window`` samples per
    label set; ``count``/``sum`` are lifetime totals, so rates stay
    derivable even after the window wraps.  Exported to Prometheus as
    a summary.
    """

    kind = "summary"

    def __init__(
        self, name: str, help: str = "", window: int = DEFAULT_WINDOW
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        super().__init__(name, help)
        self.window = window
        self._windows: Dict[Tuple[Tuple[str, str], ...], deque] = {}
        self._counts: Dict[Tuple[Tuple[str, str], ...], int] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
        # Parallel per-sample trace ids (mostly None); kept in lockstep
        # with the value window so the slowest sample's trace is always
        # recoverable -- the exemplar a p99 spike links to.
        self._exemplar_ids: Dict[Tuple[Tuple[str, str], ...], deque] = {}

    def observe(
        self,
        value: float,
        trace_id: Optional[str] = None,
        **labels: str,
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = deque(maxlen=self.window)
                self._exemplar_ids[key] = deque(maxlen=self.window)
            window.append(float(value))
            self._exemplar_ids[key].append(trace_id)
            self._counts[key] = self._counts.get(key, 0) + 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def recorder(self, **labels: str) -> Callable[[float], None]:
        """A bound fast-path observer for one label set.

        Resolves the label key and window once; the returned callable
        does only the lock + append + totals work.  The profiling
        hooks use this on paths where ``observe``'s per-call label-key
        construction would be a measurable fraction of the phase
        being timed.
        """
        key = _label_key(labels)
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = deque(maxlen=self.window)
                self._exemplar_ids[key] = deque(maxlen=self.window)
            exemplars = self._exemplar_ids[key]
        lock, counts, sums = self._lock, self._counts, self._sums

        def observe(value: float) -> None:
            with lock:
                window.append(value)
                exemplars.append(None)
                counts[key] = counts.get(key, 0) + 1
                sums[key] = sums.get(key, 0.0) + value

        return observe

    def window_values(self, **labels: str) -> List[float]:
        """The bounded window's samples for one label set, in order."""
        key = _label_key(labels)
        with self._lock:
            return list(self._windows.get(key, ()))

    def exemplar(self, **labels: str) -> Optional[Tuple[float, str]]:
        """``(value, trace_id)`` of the slowest traced window sample.

        The exemplar is the largest sample in the current window that
        carried a trace id; None when nothing in the window did.
        """
        key = _label_key(labels)
        with self._lock:
            samples = list(self._windows.get(key, ()))
            ids = list(self._exemplar_ids.get(key, ()))
        best: Optional[Tuple[float, str]] = None
        for value, trace_id in zip(samples, ids):
            if trace_id is None:
                continue
            if best is None or value > best[0]:
                best = (value, trace_id)
        return best

    def series_summary(
        self, **labels: str
    ) -> Dict[str, float]:
        """count/sum/quantiles for one label set (JSON building block).

        When any window sample carried a trace id, the summary also
        includes an ``exemplar`` block linking the slowest such sample
        to its trace -- a p99 spike resolves straight to
        ``GET /v1/traces?trace_id=...``.
        """
        key = _label_key(labels)
        with self._lock:
            samples = list(self._windows.get(key, ()))
            count = self._counts.get(key, 0)
            total = self._sums.get(key, 0.0)
            ids = list(self._exemplar_ids.get(key, ()))
        summary = {"count": count, "sum": total}
        for q in EXPORT_QUANTILES:
            summary[f"p{int(q * 100)}"] = percentile(samples, q)
        best: Optional[Tuple[float, str]] = None
        for value, trace_id in zip(samples, ids):
            if trace_id is None:
                continue
            if best is None or value > best[0]:
                best = (value, trace_id)
        if best is not None:
            summary["exemplar"] = {
                "value": best[0],
                "trace_id": best[1],
            }
        return summary

    def label_sets(self) -> List[Dict[str, str]]:
        with self._lock:
            return [dict(key) for key in sorted(self._windows)]

    def snapshot_value(self) -> Any:
        sets = self.label_sets()
        if not sets:
            return {"count": 0, "sum": 0.0}
        if sets == [{}]:
            return self.series_summary()
        return {
            ",".join(f"{k}={v}" for k, v in sorted(s.items())): (
                self.series_summary(**s)
            )
            for s in sets
        }

    def _series(self):  # pragma: no cover - render() is overridden
        return []

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help or self.name}",
            f"# TYPE {self.name} summary",
        ]
        label_sets = self.label_sets() or [{}]
        for labels in label_sets:
            key = _label_key(labels)
            with self._lock:
                samples = list(self._windows.get(key, ()))
                count = self._counts.get(key, 0)
                total = self._sums.get(key, 0.0)
            for q in EXPORT_QUANTILES:
                q_key = _label_key({**labels, "quantile": f"{q:g}"})
                lines.append(
                    f"{self.name}{_render_labels(q_key)} "
                    f"{_fmt(percentile(samples, q))}"
                )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_fmt(total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {_fmt(count)}"
            )
        return lines


class MetricsRegistry:
    """Name -> instrument, with get-or-create semantics.

    Asking for an existing name returns the existing instrument
    (asking with a *different* instrument type raises -- that is
    always a bug).  Everything is thread-safe; the registry is shared
    by the event loop, dispatcher threads, job threads and the
    campaign runner.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, *args, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help)
        if callback is not None:
            gauge.callback = callback
        return gauge

    def histogram(
        self, name: str, help: str = "", window: int = DEFAULT_WINDOW
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, window)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's JSON form, keyed by metric name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            name: instrument.snapshot_value()
            for name, instrument in instruments
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for _, instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide registry every layer registers into.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide shared registry."""
    return _GLOBAL


def render_merged(*registries: MetricsRegistry) -> str:
    """One exposition over several registries (first wins per name).

    The serving layer renders its per-instance registry merged with
    the process-wide one (profiling phases, library collectors), and a
    metric family must appear exactly once per exposition.
    """
    seen: Dict[str, _Instrument] = {}
    for registry in registries:
        with registry._lock:
            instruments = list(registry._instruments.items())
        for name, instrument in instruments:
            seen.setdefault(name, instrument)
    lines: List[str] = []
    for _, instrument in sorted(seen.items()):
        lines.extend(instrument.render())
    return "\n".join(lines) + "\n" if lines else ""


# -- exposition-format validation ------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)
_VALID_TYPES = (
    "counter", "gauge", "summary", "histogram", "untyped",
)


def validate_prometheus(
    text: str, required: Optional[Sequence[str]] = None
) -> List[str]:
    """Check ``text`` against the Prometheus text format; returns the
    sample metric names.

    Raises ``ValueError`` naming the first offending line.  Covers the
    rules a scrape would trip over: sample syntax, label-pair syntax,
    parseable values, ``# TYPE`` declarations that precede their
    samples, and no duplicate TYPE lines.  ``required`` additionally
    asserts that each named metric family is present (either as a
    sample name, a declared type, or via its ``_sum``/``_count``/
    ``_bucket`` series) -- the CI smoke job uses this to pin the
    service and SLO families against a live
    ``GET /metrics?format=prom`` scrape.
    """
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    typed: Dict[str, str] = {}
    seen: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name = parts[2]
            if name in typed:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {name!r}"
                )
            typed[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and free comments
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1].strip()
            if body:
                for pair in _split_label_pairs(body, lineno):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise ValueError(
                            f"line {lineno}: malformed label {pair!r}"
                        )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: unparseable value {value!r}"
                ) from None
        base = name
        for suffix in ("_sum", "_count", "_bucket", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if typed and base not in typed and name not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        seen.append(name)
    if required:
        present = set(seen) | set(typed)
        for name in seen:
            for suffix in ("_sum", "_count", "_bucket"):
                if name.endswith(suffix):
                    present.add(name[: -len(suffix)])
        missing = sorted(set(required) - present)
        if missing:
            raise ValueError(
                f"exposition is missing required families: {missing}"
            )
    return seen


def _split_label_pairs(body: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes."""
    pairs: List[str] = []
    depth_quote = False
    current = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and depth_quote and i + 1 < len(body):
            current.append(ch)
            current.append(body[i + 1])
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            pairs.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    if depth_quote:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if current:
        pairs.append("".join(current).strip())
    return [p for p in pairs if p]
