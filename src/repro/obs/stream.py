"""In-process event bus with monotonic per-stream cursors.

The telemetry plane's spine: every subsystem (campaign runner, job
manager, DSE engine, SLO tracker, cluster supervisor) publishes
structured events here, and ``GET /v1/events`` serves them back as a
JSON batch or an SSE tail.  Three properties carry the whole design:

* **Monotonic cursors** -- each stream numbers its events ``0, 1,
  2, ...``; a cursor is "the first sequence number I still want", so
  a dropped client that remembers ``last_seq`` resumes exactly at
  ``cursor=last_seq + 1`` with no gap and no duplicate.
* **Byte-identical replay** -- the canonical compact-JSON line for an
  event is built exactly once at publish time and reused everywhere:
  the in-memory retained log, the durable sink (the campaign
  :class:`~repro.campaign.store.ResultStore` event log), and the SSE
  ``data:`` payload.  Replaying from cursor 0 therefore yields the
  same bytes a from-the-start listener saw, even across a restarted
  reader.
* **Non-blocking publish** -- the retained log is bounded; when it
  overflows, the *oldest* entries are trimmed (and counted), never
  the publisher blocked.  A late consumer whose cursor fell behind
  the retention window either replays the trimmed prefix from the
  durable sink (if one is attached) or receives a synthetic
  ``stream.lagged`` event stating how many events it missed.

Ambient emission (:func:`emit`) lets deeply nested code -- successive
halving rungs, Pareto sweeps, store lease accounting -- publish into
whatever stream the enclosing campaign bound, without threading a
publisher through every signature.  Unbound :func:`emit` is a no-op,
so library code stays usable outside the service.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Event",
    "EventBus",
    "EventPublisher",
    "StreamSlice",
    "bind_publisher",
    "bound_publisher",
    "emit",
    "unbind_publisher",
]

# Default cap on the number of events retained in memory per stream.
# Campaigns emit O(tasks) events, so this comfortably covers the
# service's job size cap; the durable sink covers everything beyond.
DEFAULT_HISTORY_LIMIT = 65_536

# Synthetic event kind injected when a consumer's cursor fell behind
# the retention window and no durable reader can fill the gap.
LAGGED_KIND = "stream.lagged"


@dataclass(frozen=True)
class Event:
    """One published event and its canonical wire form.

    ``line`` is the compact sorted-key JSON built at publish time; it
    is the *only* representation that ever leaves the bus, which is
    what makes replay byte-identical.
    """

    stream: str
    seq: int
    kind: str
    line: str

    @property
    def payload(self) -> Dict[str, Any]:
        """Decode the canonical line back into a dict."""
        return json.loads(self.line)


@dataclass(frozen=True)
class StreamSlice:
    """The result of one :meth:`EventBus.read` call."""

    stream: str
    cursor: int
    events: Tuple[Event, ...]
    next_cursor: int
    closed: bool
    #: Events between ``cursor`` and the first returned event that were
    #: trimmed from retention and not recoverable from a durable
    #: reader.  Non-zero means the consumer lagged.
    dropped: int = 0


def format_event_line(
    stream: str,
    seq: int,
    kind: str,
    unix: float,
    data: Optional[Mapping[str, Any]],
    trace_id: Optional[str],
    span_id: Optional[str],
) -> str:
    """Build the canonical compact-JSON line for an event.

    Key order is fixed by ``sort_keys`` so the same logical event
    always serialises to the same bytes.
    """
    doc: Dict[str, Any] = {
        "stream": stream,
        "seq": seq,
        "kind": kind,
        "unix": round(float(unix), 6),
    }
    if trace_id is not None:
        doc["trace_id"] = trace_id
    if span_id is not None:
        doc["span_id"] = span_id
    if data:
        doc["data"] = dict(data)
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class _StreamState:
    """Per-stream bookkeeping: cursor counter, retained log, sinks."""

    __slots__ = (
        "next_seq",
        "base",
        "log",
        "closed",
        "sink",
        "reader",
        "trimmed",
    )

    def __init__(self) -> None:
        self.next_seq = 0
        # Sequence number of the first event still retained in memory.
        self.base = 0
        self.log: Deque[Tuple[int, str, str]] = deque()  # (seq, kind, line)
        self.closed = False
        self.sink: Optional[Callable[[str], None]] = None
        self.reader: Optional[Callable[[int], Sequence[str]]] = None
        self.trimmed = 0


class EventBus:
    """Thread-safe fan-in event log with per-stream monotonic cursors.

    Publishing never blocks: the retained log is bounded at
    ``history_limit`` entries per stream and trims from the front.
    Attach a durable ``sink``/``reader`` pair (see
    :meth:`attach_store`) to make trimmed prefixes replayable.
    """

    def __init__(
        self,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
        clock: Callable[[], float] = time.time,
        registry: Optional[Any] = None,
    ) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self._history_limit = int(history_limit)
        self._clock = clock
        self._lock = threading.Lock()
        self._streams: Dict[str, _StreamState] = {}
        self._published = 0
        self._trimmed = 0
        self._counter = None
        self._trim_counter = None
        if registry is not None:
            self._counter = registry.counter(
                "repro_stream_events_total",
                "Events published to the in-process event bus",
            )
            self._trim_counter = registry.counter(
                "repro_stream_events_trimmed_total",
                "Events trimmed from bounded stream retention windows",
            )

    # ------------------------------------------------------------------
    # publishing

    def publish(
        self,
        stream: str,
        kind: str,
        data: Optional[Mapping[str, Any]] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> Event:
        """Append one event to ``stream`` and return it.

        The canonical line is built here, once, and mirrored to the
        durable sink (if any) before the in-memory log can trim it.
        """
        with self._lock:
            state = self._streams.setdefault(stream, _StreamState())
            if state.closed:
                raise ValueError(f"stream {stream!r} is closed")
            seq = state.next_seq
            state.next_seq = seq + 1
            line = format_event_line(
                stream, seq, kind, self._clock(), data, trace_id, span_id
            )
            state.log.append((seq, kind, line))
            while len(state.log) > self._history_limit:
                state.log.popleft()
                state.base += 1
                state.trimmed += 1
                self._trimmed += 1
                if self._trim_counter is not None:
                    self._trim_counter.inc()
            self._published += 1
            if state.sink is not None:
                # Inside the lock so the durable log preserves sequence
                # order across publishing threads.
                try:
                    state.sink(line)
                except OSError:
                    # A failing durable sink must never take down the
                    # publisher; the in-memory tail still serves.
                    pass
        if self._counter is not None:
            self._counter.inc(stream_kind=kind)
        return Event(stream=stream, seq=seq, kind=kind, line=line)

    def ensure_stream(self, stream: str) -> None:
        """Create ``stream`` with no events so subscribers can attach."""
        with self._lock:
            self._streams.setdefault(stream, _StreamState())

    def attach_store(
        self,
        stream: str,
        sink: Optional[Callable[[str], None]] = None,
        reader: Optional[Callable[[int], Sequence[str]]] = None,
    ) -> None:
        """Wire a durable sink/reader pair onto ``stream``.

        ``sink(line)`` is called once per published event with the
        canonical line; ``reader(cursor)`` must return the persisted
        lines with ``seq >= cursor`` in order.  Together they make
        replay from cursor 0 byte-identical even after the in-memory
        window trimmed.
        """
        with self._lock:
            state = self._streams.setdefault(stream, _StreamState())
            state.sink = sink
            state.reader = reader

    def close(self, stream: str) -> None:
        """Mark ``stream`` complete; tails drain and then terminate."""
        with self._lock:
            state = self._streams.setdefault(stream, _StreamState())
            state.closed = True

    # ------------------------------------------------------------------
    # reading

    def cursor(self, stream: str) -> int:
        """The next sequence number ``stream`` will assign.

        Subscribing with this cursor yields exactly the events
        published after this call -- the "live tail" position.
        """
        with self._lock:
            state = self._streams.get(stream)
            return state.next_seq if state is not None else 0

    def known(self, stream: str) -> bool:
        with self._lock:
            return stream in self._streams

    def closed(self, stream: str) -> bool:
        with self._lock:
            state = self._streams.get(stream)
            return bool(state is not None and state.closed)

    def streams(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    def read(
        self,
        stream: str,
        cursor: int = 0,
        limit: Optional[int] = None,
    ) -> StreamSlice:
        """Events of ``stream`` with ``seq >= cursor``, oldest first.

        If ``cursor`` predates the in-memory window, the trimmed
        prefix is reconstructed from the durable reader when one is
        attached; otherwise the gap is reported via ``dropped`` (and
        surfaced to SSE consumers as a ``stream.lagged`` event).
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        with self._lock:
            state = self._streams.get(stream)
            if state is None:
                return StreamSlice(
                    stream=stream, cursor=cursor, events=(),
                    next_cursor=cursor, closed=False,
                )
            base = state.base
            closed = state.closed
            reader = state.reader
            tail = [entry for entry in state.log if entry[0] >= cursor]
        events: List[Event] = []
        dropped = 0
        if cursor < base:
            persisted: List[Event] = []
            if reader is not None:
                for line in reader(cursor):
                    doc = json.loads(line)
                    seq = int(doc["seq"])
                    if seq < cursor or seq >= base:
                        continue
                    persisted.append(
                        Event(stream=stream, seq=seq,
                              kind=str(doc.get("kind", "")), line=line)
                    )
            persisted.sort(key=lambda event: event.seq)
            events.extend(persisted)
            covered = {event.seq for event in persisted}
            dropped = sum(
                1 for seq in range(cursor, base) if seq not in covered
            )
        events.extend(
            Event(stream=stream, seq=seq, kind=kind, line=line)
            for seq, kind, line in tail
        )
        if limit is not None and limit >= 0 and len(events) > limit:
            events = events[:limit]
        next_cursor = events[-1].seq + 1 if events else max(cursor, 0)
        if not events and cursor < base:
            next_cursor = base
        return StreamSlice(
            stream=stream,
            cursor=cursor,
            events=tuple(events),
            next_cursor=next_cursor,
            closed=closed,
            dropped=dropped,
        )

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> Dict[str, Any]:
        """Bus-wide accounting for ``/metrics`` snapshots."""
        with self._lock:
            return {
                "streams": len(self._streams),
                "published": self._published,
                "trimmed": self._trimmed,
                "open": sum(
                    1 for state in self._streams.values() if not state.closed
                ),
            }


# ----------------------------------------------------------------------
# Ambient emission: nested library code publishes into whatever stream
# the enclosing campaign bound, without plumbing a publisher through.


@dataclass
class EventPublisher:
    """A bus pre-bound to one stream and its campaign trace."""

    bus: EventBus
    stream: str
    trace_id: Optional[str] = None

    def publish(
        self,
        kind: str,
        data: Optional[Mapping[str, Any]] = None,
        span_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Event:
        return self.bus.publish(
            self.stream,
            kind,
            data=data,
            trace_id=trace_id if trace_id is not None else self.trace_id,
            span_id=span_id,
        )


_BOUND: ContextVar[Optional[EventPublisher]] = ContextVar(
    "repro_event_publisher", default=None
)


def bind_publisher(publisher: Optional[EventPublisher]):
    """Install ``publisher`` as the ambient :func:`emit` target.

    Returns a token for :func:`unbind_publisher`.  Contextvar-based,
    so asyncio tasks inherit it automatically; worker threads must
    re-bind explicitly (the campaign runner does).
    """
    return _BOUND.set(publisher)


def unbind_publisher(token) -> None:
    _BOUND.reset(token)


def bound_publisher() -> Optional[EventPublisher]:
    return _BOUND.get()


def emit(
    kind: str,
    data: Optional[Mapping[str, Any]] = None,
    span_id: Optional[str] = None,
) -> Optional[Event]:
    """Publish into the ambiently bound stream; no-op when unbound."""
    publisher = _BOUND.get()
    if publisher is None:
        return None
    return publisher.publish(kind, data=data, span_id=span_id)
