"""repro.obs.prof -- a zero-dependency continuous sampling profiler.

The paper asks where a chip's area budget should go; the runtime twin
of that question is where wall-time actually goes across
``core.optimize``, the batch dispatcher, the tensor store, and the
cluster fleet.  :mod:`repro.obs.profiling` answers it coarsely (named
phase totals); this module answers it at frame granularity:

* :class:`StackSampler` -- a daemon background thread that walks
  ``sys._current_frames()`` at a configurable rate (default
  :data:`DEFAULT_HZ`) and aggregates each observed thread stack into
  collapsed ``module:func:line`` call chains.
* :class:`FoldedProfile` -- an aggregated profile in the folded-stack
  interchange format (``frame;frame;frame count`` per line) consumed
  by ``flamegraph.pl`` and speedscope, with merge/diff-friendly
  per-frame self-time accounting.
* A process-global, refcounted sampler (:func:`acquire_sampler` /
  :func:`release_sampler`) so that every plane that wants sampling on
  (the service, a campaign, the CLI) shares ONE background thread.
* Phase tagging: while sampling is live, ``profile_block`` pushes its
  phase name for the current thread and sampled stacks gain a leading
  ``phase:<name>`` frame, so folded output decomposes by the same
  phase vocabulary the coarse profiler already uses.

Everything is stdlib-only; the sampler is injectable (clock and frame
provider) so tests drive it deterministically without threads.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .metrics import get_registry

__all__ = [
    "DEFAULT_HZ",
    "FoldedProfile",
    "StackSampler",
    "acquire_sampler",
    "release_sampler",
    "get_sampler",
    "push_phase",
    "pop_phase",
    "tagging_active",
]

#: Default sampling rate.  67 Hz is deliberately not a divisor of
#: common periodic work (10/50/100 Hz timers) so samples do not alias
#: with scheduler ticks, and costs well under 1% of one core.
DEFAULT_HZ = 67.0

#: Frames deeper than this are truncated (root-most frames dropped) so
#: a pathological recursion cannot bloat the profile unboundedly.
DEFAULT_MAX_DEPTH = 64

Stack = Tuple[str, ...]

# ---------------------------------------------------------------------------
# Phase tagging (cooperates with repro.obs.profiling.profile_block)
# ---------------------------------------------------------------------------

#: Per-thread stack of active phase names.  Only the owning thread
#: writes its own list (GIL-atomic append/pop); the sampler thread
#: reads racily and tolerates concurrent mutation.
_PHASES: Dict[int, List[str]] = {}

#: True while at least one sampler is running; lets ``profile_block``
#: skip the tagging dict entirely when nothing is listening.
_TAGGING = False


def tagging_active() -> bool:
    """True when a live sampler wants phase tags pushed."""
    return _TAGGING


def push_phase(name: str) -> None:
    """Mark the current thread as inside phase ``name``."""
    ident = threading.get_ident()
    stack = _PHASES.get(ident)
    if stack is None:
        stack = _PHASES[ident] = []
    stack.append(name)


def pop_phase() -> None:
    """Leave the innermost phase on the current thread."""
    ident = threading.get_ident()
    stack = _PHASES.get(ident)
    if stack:
        stack.pop()
    if not stack:
        _PHASES.pop(ident, None)


def _current_phase(ident: int) -> Optional[str]:
    """Racily read the innermost phase tag for a thread."""
    try:
        stack = _PHASES.get(ident)
        return stack[-1] if stack else None
    except (IndexError, RuntimeError):  # concurrent pop/resize
        return None


# ---------------------------------------------------------------------------
# Folded profiles
# ---------------------------------------------------------------------------


def frame_label(frame: Any) -> str:
    """``module:func:line`` for one frame object (duck-typed)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}:{frame.f_lineno}"


def collect_stack(frame: Any, max_depth: int = DEFAULT_MAX_DEPTH) -> Stack:
    """The call chain of ``frame``, root-first, depth-bounded.

    When the stack is deeper than ``max_depth`` the *root-most* frames
    are dropped (the leaf is where self-time attribution lives).
    """
    labels: List[str] = []
    while frame is not None and len(labels) < max_depth + 1:
        labels.append(frame_label(frame))
        frame = frame.f_back
    del labels[max_depth:]
    labels.reverse()
    return tuple(labels)


def strip_line(label: str) -> str:
    """``module:func`` from a ``module:func:line`` frame label.

    Phase and worker marker frames (``phase:x``, ``worker:w1``) have
    no line component and pass through unchanged.
    """
    parts = label.rsplit(":", 2)
    if len(parts) == 3 and parts[2].isdigit():
        return f"{parts[0]}:{parts[1]}"
    return label


class FoldedProfile:
    """An aggregated stack profile in folded (collapsed) form.

    ``counts`` maps root-first frame tuples to sample counts.  The
    text rendering -- one ``frame;frame;frame count`` line per unique
    stack, sorted -- is the interchange format of ``flamegraph.pl``
    and speedscope ("collapsed stacks").  ``hz`` converts counts to
    seconds; ``worker`` / ``trace_id`` attribute the window to a fleet
    member and a campaign trace.
    """

    __slots__ = ("counts", "samples", "hz", "duration_s", "worker", "trace_id")

    def __init__(
        self,
        counts: Optional[Dict[Stack, int]] = None,
        samples: int = 0,
        hz: float = DEFAULT_HZ,
        duration_s: float = 0.0,
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.counts: Dict[Stack, int] = dict(counts or {})
        self.samples = int(samples)
        self.hz = float(hz)
        self.duration_s = float(duration_s)
        self.worker = worker
        self.trace_id = trace_id

    # -- construction ----------------------------------------------------

    def add_stack(self, stack: Iterable[str], count: int = 1) -> None:
        key = tuple(stack)
        if not key:
            return
        self.counts[key] = self.counts.get(key, 0) + count

    def merge(
        self, other: "FoldedProfile", prefix: Optional[str] = None
    ) -> "FoldedProfile":
        """Fold ``other`` into this profile (in place; returns self).

        ``prefix`` (e.g. ``worker:w1``) is prepended as a synthetic
        root frame so merged fleet profiles keep per-worker
        attribution inside the flamegraph itself.
        """
        for stack, count in other.counts.items():
            key = (prefix,) + stack if prefix else stack
            self.counts[key] = self.counts.get(key, 0) + count
        self.samples += other.samples
        self.duration_s = max(self.duration_s, other.duration_s)
        return self

    # -- rendering -------------------------------------------------------

    def folded_lines(self) -> List[str]:
        """Deterministic folded-stack lines, lexicographically sorted."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.counts.items())
        ]

    def to_text(self) -> str:
        return "\n".join(self.folded_lines()) + ("\n" if self.counts else "")

    # -- analysis --------------------------------------------------------

    def self_seconds(self) -> Dict[str, float]:
        """Per-frame self-time in seconds, keyed ``module:func``.

        Self-time belongs to the leaf frame of each sampled stack; the
        line number is stripped so the key is stable across runs that
        shift code by a few lines.
        """
        per_sample = 1.0 / self.hz if self.hz > 0 else 0.0
        totals: Dict[str, float] = {}
        for stack, count in self.counts.items():
            leaf = strip_line(stack[-1])
            totals[leaf] = totals.get(leaf, 0.0) + count * per_sample
        return totals

    def total_seconds(self) -> float:
        per_sample = 1.0 / self.hz if self.hz > 0 else 0.0
        return sum(self.counts.values()) * per_sample

    def top_self(self, n: int = 10) -> List[Dict[str, Any]]:
        """The ``n`` frames with the most self-time, descending."""
        total = self.total_seconds()
        ranked = sorted(
            self.self_seconds().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            {
                "frame": frame,
                "self_s": round(seconds, 6),
                "self_pct": round(100.0 * seconds / total, 2)
                if total > 0
                else 0.0,
            }
            for frame, seconds in ranked[:n]
        ]

    # -- interchange -----------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The JSON document shipped on the wire and in BENCH rows."""
        doc: Dict[str, Any] = {
            "format": "folded",
            "samples": self.samples,
            "hz": self.hz,
            "duration_s": round(self.duration_s, 6),
            "stacks": len(self.counts),
            "folded": self.folded_lines(),
        }
        if self.worker is not None:
            doc["worker"] = self.worker
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    @classmethod
    def from_payload(cls, doc: Dict[str, Any]) -> "FoldedProfile":
        profile = cls(
            samples=int(doc.get("samples", 0)),
            hz=float(doc.get("hz", DEFAULT_HZ)),
            duration_s=float(doc.get("duration_s", 0.0)),
            worker=doc.get("worker"),
            trace_id=doc.get("trace_id"),
        )
        for line in doc.get("folded", []):
            stack, count = parse_folded_line(line)
            profile.add_stack(stack, count)
        return profile

    @classmethod
    def from_text(cls, text: str, hz: float = DEFAULT_HZ) -> "FoldedProfile":
        profile = cls(hz=hz)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            stack, count = parse_folded_line(line)
            profile.add_stack(stack, count)
            profile.samples += count
        return profile


def parse_folded_line(line: str) -> Tuple[Stack, int]:
    """One ``a;b;c N`` folded line -> (stack tuple, count).

    Raises ``ValueError`` on malformed input -- CI's profiling smoke
    leans on this as the format validator.
    """
    stack_text, sep, count_text = line.rpartition(" ")
    if not sep or not stack_text:
        raise ValueError(f"malformed folded line: {line!r}")
    count = int(count_text)
    if count < 1:
        raise ValueError(f"non-positive sample count in: {line!r}")
    return tuple(stack_text.split(";")), count


# ---------------------------------------------------------------------------
# The sampler
# ---------------------------------------------------------------------------


class StackSampler:
    """A background stack sampler over ``sys._current_frames``.

    One daemon thread wakes ``hz`` times per second, snapshots every
    live thread's stack (except its own), and folds each into a shared
    counts table.  ``clock`` and ``frames_provider`` are injectable so
    tests can drive :meth:`sample_once` deterministically with fake
    frames and a fake clock -- no thread required.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        clock: Callable[[], float] = time.monotonic,
        frames_provider: Callable[[], Dict[int, Any]] = sys._current_frames,
        max_depth: int = DEFAULT_MAX_DEPTH,
        registry: Optional[Any] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive (got {hz})")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self._clock = clock
        self._frames = frames_provider
        self._lock = threading.Lock()
        self._counts: Dict[Stack, int] = {}
        self._samples = 0
        self._started_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        registry = registry if registry is not None else get_registry()
        self._sample_counter = registry.counter(
            "repro_profile_samples_total",
            "Stack samples taken by the continuous profiler",
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> bool:
        """Start the sampling thread; no-op (False) when running."""
        global _TAGGING
        if self.running:
            return False
        self._stop_event.clear()
        self._started_at = self._clock()
        _TAGGING = True
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return True

    def stop(self, timeout: float = 2.0) -> bool:
        """Stop the sampling thread; no-op (False) when not running."""
        global _TAGGING
        thread = self._thread
        if thread is None:
            return False
        self._stop_event.set()
        if thread.is_alive():
            thread.join(timeout)
        self._thread = None
        _TAGGING = False
        return True

    def _run(self) -> None:
        period = 1.0 / self.hz
        next_tick = self._clock() + period
        while not self._stop_event.is_set():
            delay = next_tick - self._clock()
            if delay > 0 and self._stop_event.wait(delay):
                break
            self.sample_once()
            next_tick += period
            now = self._clock()
            if next_tick < now:  # fell behind: skip, never burst
                next_tick = now + period

    # -- sampling --------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every live thread; returns stack count."""
        own = threading.get_ident()
        folded = 0
        try:
            frames = self._frames()
        except RuntimeError:  # interpreter tearing down
            return 0
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack = collect_stack(frame, self.max_depth)
            if not stack:
                continue
            phase = _current_phase(ident)
            if phase is not None:
                stack = (f"phase:{phase}",) + stack
            with self._lock:
                self._counts[stack] = self._counts.get(stack, 0) + 1
            folded += 1
        with self._lock:
            self._samples += 1
        self._sample_counter.inc()
        return folded

    # -- windows ---------------------------------------------------------

    def mark(self) -> Dict[str, Any]:
        """A window marker: the full counts table at this instant.

        Pair with :meth:`window_since` to extract the profile of just
        the interval -- the mechanism behind ``GET /v1/profile``.
        """
        with self._lock:
            return {
                "counts": dict(self._counts),
                "samples": self._samples,
                "at": self._clock(),
            }

    def samples_since(self, marker: int) -> int:
        """Cheap delta of tick counts (per-task campaign accounting)."""
        with self._lock:
            return self._samples - marker

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def window_since(
        self,
        marker: Dict[str, Any],
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> FoldedProfile:
        """The profile accumulated since ``marker`` (see :meth:`mark`)."""
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
        before: Dict[Stack, int] = marker["counts"]
        delta: Dict[Stack, int] = {}
        for stack, count in counts.items():
            gained = count - before.get(stack, 0)
            if gained > 0:
                delta[stack] = gained
        return FoldedProfile(
            counts=delta,
            samples=samples - marker["samples"],
            hz=self.hz,
            duration_s=max(0.0, self._clock() - marker["at"]),
            worker=worker,
            trace_id=trace_id,
        )

    def profile(
        self,
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> FoldedProfile:
        """Everything sampled since :meth:`start` as one profile."""
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
        started = self._started_at
        duration = (
            max(0.0, self._clock() - started) if started is not None else 0.0
        )
        return FoldedProfile(
            counts=counts,
            samples=samples,
            hz=self.hz,
            duration_s=duration,
            worker=worker,
            trace_id=trace_id,
        )

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
        self._started_at = self._clock()


# ---------------------------------------------------------------------------
# The process-global, refcounted sampler
# ---------------------------------------------------------------------------

_GLOBAL_LOCK = threading.Lock()
_GLOBAL_SAMPLER: Optional[StackSampler] = None
_GLOBAL_REFS = 0


def acquire_sampler(hz: float = DEFAULT_HZ) -> StackSampler:
    """Take a reference on the shared process sampler, starting it on
    the first acquisition.  Every plane that wants continuous sampling
    (the service, a campaign run, a CLI capture) acquires here so the
    process runs exactly one sampling thread regardless of how many
    services or runners coexist (tests routinely build several)."""
    global _GLOBAL_SAMPLER, _GLOBAL_REFS
    with _GLOBAL_LOCK:
        if _GLOBAL_SAMPLER is None or not _GLOBAL_SAMPLER.running:
            _GLOBAL_SAMPLER = StackSampler(hz=hz)
            _GLOBAL_SAMPLER.start()
        _GLOBAL_REFS += 1
        return _GLOBAL_SAMPLER


def release_sampler() -> bool:
    """Drop one reference; stops the thread when the last goes away."""
    global _GLOBAL_SAMPLER, _GLOBAL_REFS
    with _GLOBAL_LOCK:
        if _GLOBAL_REFS == 0:
            return False
        _GLOBAL_REFS -= 1
        if _GLOBAL_REFS == 0 and _GLOBAL_SAMPLER is not None:
            _GLOBAL_SAMPLER.stop()
            _GLOBAL_SAMPLER = None
            return True
        return False


def get_sampler() -> Optional[StackSampler]:
    """The shared sampler, or ``None`` when nothing acquired it."""
    with _GLOBAL_LOCK:
        return _GLOBAL_SAMPLER
