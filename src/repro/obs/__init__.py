"""repro.obs -- zero-dependency observability for the whole runtime.

The source paper decomposes where a chip's area and power budgets go;
this subsystem is the same accounting for the reproduction's own
runtime: where does the wall-clock of a speedup evaluation go, which
layer answered a request, and what did one campaign task actually
cost.  Three coordinated pieces:

* **Tracing** (:mod:`repro.obs.trace`, :mod:`repro.obs.context`) --
  spans with parent/child linkage propagated across asyncio tasks
  (contextvars), dispatcher threads and campaign process pools
  (explicit carriers); exported to an in-process ring buffer
  (``GET /v1/traces``) and optionally to a JSONL file.
* **Metrics** (:mod:`repro.obs.metrics`) -- one process-wide
  :class:`MetricsRegistry` of counters, gauges and bounded-window
  histograms that the service, the perf cache and the campaign store
  all register into; rendered as JSON (``GET /metrics``,
  ``repro-hetsim metrics-dump``) and Prometheus text
  (``GET /metrics?format=prom``).
* **Profiling** (:mod:`repro.obs.profiling`) -- ``@timed`` /
  ``profile_block`` hooks on the hot paths, feeding per-phase
  wall-time into spans, the registry, and the ``BENCH_*.json``
  writers.

Structured JSON logging with trace correlation lives in
:mod:`repro.obs.logging`.  Everything is stdlib-only.
"""

from .context import (
    SpanContext,
    attach,
    current_context,
    detach,
    extract,
    inject,
    new_span_id,
    new_trace_id,
)
from .logging import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    log_event,
    resolve_level,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    render_merged,
    validate_prometheus,
)
from .history import (
    HistoryStore,
    envelope,
    extract_metrics,
    host_fingerprint,
    record_benchmark,
)
from .prof import (
    FoldedProfile,
    StackSampler,
    acquire_sampler,
    get_sampler,
    release_sampler,
)
from .profdiff import (
    attribute_regression,
    diff_profiles,
    render_culprit,
)
from .profiling import (
    phase_totals,
    profile_block,
    reset_phase_totals,
    timed,
)
from .regress import (
    MetricVerdict,
    RegressionReport,
    bootstrap_ci,
    check_history,
    select_baseline,
)
from .slo import (
    SLObjective,
    SLOTracker,
    get_slo_tracker,
)
from .stream import (
    Event,
    EventBus,
    EventPublisher,
    StreamSlice,
    bind_publisher,
    bound_publisher,
    emit,
    unbind_publisher,
)
from .trace import Span, Tracer, configure_tracer, get_tracer

__all__ = [
    # context
    "SpanContext",
    "attach",
    "current_context",
    "detach",
    "extract",
    "inject",
    "new_span_id",
    "new_trace_id",
    # trace
    "Span",
    "Tracer",
    "configure_tracer",
    "get_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "render_merged",
    "validate_prometheus",
    # profiling
    "phase_totals",
    "profile_block",
    "reset_phase_totals",
    "timed",
    # continuous sampling profiler + differential attribution
    "FoldedProfile",
    "StackSampler",
    "acquire_sampler",
    "get_sampler",
    "release_sampler",
    "attribute_regression",
    "diff_profiles",
    "render_culprit",
    # history + regression sentinel
    "HistoryStore",
    "envelope",
    "extract_metrics",
    "host_fingerprint",
    "record_benchmark",
    "MetricVerdict",
    "RegressionReport",
    "bootstrap_ci",
    "check_history",
    "select_baseline",
    # SLOs
    "SLObjective",
    "SLOTracker",
    "get_slo_tracker",
    # event streaming
    "Event",
    "EventBus",
    "EventPublisher",
    "StreamSlice",
    "bind_publisher",
    "bound_publisher",
    "emit",
    "unbind_publisher",
    # logging
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
    "resolve_level",
]
