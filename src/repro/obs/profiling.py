"""Lightweight profiling hooks for the model's hot paths.

:func:`profile_block` (a context manager) and :func:`timed` (its
decorator form) time a named phase with two ``perf_counter`` calls and
record the result in three sinks, each serving a different consumer:

1. a process-wide **phase table** (name -> calls/total seconds),
   cheap enough to leave on in benchmarks -- the ``BENCH_*.json``
   writers embed :func:`phase_totals` as their per-phase wall-time
   breakdown;
2. the shared :class:`~repro.obs.metrics.MetricsRegistry` histogram
   ``repro_phase_seconds{phase=...}``, so ``GET /metrics`` and the
   Prometheus exposition see live quantiles per phase;
3. when a trace is active (and only then), a child :class:`Span` of
   the enclosing span -- a request's trace shows exactly where its
   evaluation time went, while untraced bulk work (a benchmark's ten
   thousand grid calls) never churns the span buffer.

Overhead is a handful of microseconds per block -- measured well under
the 5% budget on ``bench_perf_grid`` where an instrumented
``optimize_batch`` call costs hundreds of microseconds.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Optional, TypeVar

from . import prof as _prof
from .context import current_context
from .metrics import get_registry
from .trace import get_tracer

__all__ = [
    "profile_block",
    "timed",
    "phase_totals",
    "reset_phase_totals",
]

_F = TypeVar("_F", bound=Callable)

_lock = threading.Lock()
_totals: Dict[str, Dict[str, float]] = {}

_HISTOGRAM_NAME = "repro_phase_seconds"

#: Per-phase bound observers into the ``repro_phase_seconds``
#: histogram.  Built once per phase name: the registry lookup and the
#: label-key construction are too expensive to repeat on paths that
#: cost tens of microseconds (a scalar ``optimize`` call, say).
_observers: Dict[str, Callable[[float], None]] = {}


def _observer(name: str) -> Callable[[float], None]:
    with _lock:
        observe = _observers.get(name)
        if observe is None:
            observe = _observers[name] = get_registry().histogram(
                _HISTOGRAM_NAME,
                "Wall-clock seconds per instrumented phase",
            ).recorder(phase=name)
    return observe


def _record(name: str, elapsed_s: float) -> None:
    observe = _observers.get(name)
    if observe is None:
        observe = _observer(name)
    with _lock:
        entry = _totals.get(name)
        if entry is None:
            entry = _totals[name] = {"calls": 0, "total_s": 0.0}
        entry["calls"] += 1
        entry["total_s"] += elapsed_s
    observe(elapsed_s)


class profile_block:
    """Time one phase; span it only when a trace is active.

    Usage::

        with profile_block("perf.optimize_batch", items=len(budgets)):
            ...

    Attributes are attached to the child span (when one is created);
    the phase table and histogram always record.
    """

    __slots__ = ("name", "attributes", "_start", "_span", "_tagged")

    def __init__(self, name: str, **attributes: Any):
        self.name = name
        self.attributes = attributes
        self._start = 0.0
        self._span = None
        self._tagged = False

    def __enter__(self) -> "profile_block":
        if current_context() is not None:
            self._span = get_tracer().span(
                self.name, attributes=self.attributes or None
            )
            self._span.__enter__()
        # While the continuous sampler is live, tag this thread's
        # samples with the phase name (a leading ``phase:`` frame in
        # the folded output); a dict lookup and append when on, one
        # bool check when off.
        if _prof.tagging_active():
            _prof.push_phase(self.name)
            self._tagged = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        if self._tagged:
            _prof.pop_phase()
            self._tagged = False
        _record(self.name, elapsed)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None

    @property
    def traced(self) -> bool:
        """True when this block opened a span (a trace was active).

        Hot paths use this to skip building span attributes entirely
        on untraced (benchmark) calls.
        """
        return self._span is not None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach ``key`` to the span, if this block opened one."""
        if self._span is not None:
            self._span.set_attribute(key, value)


def timed(name: Optional[str] = None) -> Callable[[_F], _F]:
    """Decorator form of :func:`profile_block`.

    The phase name defaults to the function's qualified name::

        @timed("campaign.store.serialize")
        def _serialize(...): ...
    """

    def decorate(func: _F) -> _F:
        phase = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with profile_block(phase):
                return func(*args, **kwargs)

        wrapper.phase_name = phase
        return wrapper

    return decorate


def phase_totals(reset: bool = False) -> Dict[str, Dict[str, float]]:
    """A snapshot of the phase table: name -> {calls, total_s}.

    ``reset=True`` atomically snapshots *and* clears -- benchmark
    repetitions use it to attribute phases to one timed run.
    """
    with _lock:
        snapshot = {
            name: dict(entry) for name, entry in sorted(_totals.items())
        }
        if reset:
            _totals.clear()
    return snapshot


def reset_phase_totals() -> None:
    """Clear the phase table (benchmarks, between modes)."""
    with _lock:
        _totals.clear()
