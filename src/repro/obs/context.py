"""Trace-context propagation across the three execution substrates.

A trace context is the pair ``(trace_id, span_id)`` naming the span
that is "current" at a point of execution.  The repo runs model code
on three different substrates, and each needs its own propagation
mechanism:

* **asyncio tasks** -- a :class:`contextvars.ContextVar` follows the
  task automatically (each task snapshots the context at creation),
  so concurrent requests never observe each other's span.
* **dispatcher worker threads** -- ``loop.run_in_executor`` does *not*
  copy contextvars into the pool thread, so the caller serialises the
  context into a plain-dict *carrier* (:func:`inject`) and the worker
  re-installs it (:func:`attach` on the :func:`extract` result).
* **campaign process pools** -- a child process shares nothing; the
  carrier dict pickles through the pool submission and the worker
  builds spans against the extracted ids, shipping the finished span
  payloads back in its return value.

Ids follow the W3C trace-context shape (128-bit trace id, 64-bit span
id, lowercase hex) so exported spans line up with external tooling,
without depending on any.
"""

from __future__ import annotations

import os
from contextvars import ContextVar, Token
from typing import Any, Dict, NamedTuple, Optional

__all__ = [
    "SpanContext",
    "new_trace_id",
    "new_span_id",
    "current_context",
    "attach",
    "detach",
    "inject",
    "extract",
]


class SpanContext(NamedTuple):
    """The identity of one span: which trace, which node in it."""

    trace_id: str
    span_id: str


#: The span currently enclosing this logical flow of execution.
_CURRENT: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_obs_span", default=None
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


def current_context() -> Optional[SpanContext]:
    """The enclosing span's context, or None outside any span."""
    return _CURRENT.get()


def attach(context: Optional[SpanContext]) -> Token:
    """Make ``context`` current; returns the token for :func:`detach`."""
    return _CURRENT.set(context)


def detach(token: Token) -> None:
    """Restore the context that was current before :func:`attach`."""
    _CURRENT.reset(token)


def inject(
    context: Optional[SpanContext] = None,
) -> Optional[Dict[str, str]]:
    """Serialise a context into a picklable carrier dict.

    Defaults to the current context; returns None when there is
    nothing to propagate (callers pass the None straight through).
    """
    context = context if context is not None else current_context()
    if context is None:
        return None
    return {"trace_id": context.trace_id, "span_id": context.span_id}


def extract(carrier: Optional[Dict[str, Any]]) -> Optional[SpanContext]:
    """Rebuild a :class:`SpanContext` from a carrier dict (or None).

    Malformed carriers (missing/empty ids) yield None rather than a
    broken parent link -- a lost trace beats a corrupt one.
    """
    if not carrier:
        return None
    trace_id = carrier.get("trace_id")
    span_id = carrier.get("span_id")
    if not trace_id or not span_id:
        return None
    return SpanContext(trace_id=str(trace_id), span_id=str(span_id))
