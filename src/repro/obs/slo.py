"""Service-level objectives, multi-window burn rates, error budgets.

PR 4 gave the serving layer latency quantiles and error counters; this
module puts *objectives* over them so the numbers become a go/no-go
signal, the same shape an inference stack uses to gate deploys:

* :class:`SLObjective` -- a declarative target per endpoint: "99% of
  ``/v1/speedup`` requests answer under 250 ms", "99.9% of all
  requests succeed".  An event is *bad* when it errors (HTTP 5xx) or,
  for latency objectives, exceeds the threshold.
* :class:`SLOTracker` -- records one event per finished request and
  derives, per objective:

  - **burn rates** over two windows (fast ~5 min, slow ~1 h): the
    bad-event fraction divided by the error budget ``1 - target``.
    Burn 1.0 spends the budget exactly at the sustainable pace; the
    classic multi-window rule alerts only when *both* windows burn
    hot, so a single slow request cannot page anyone but a sustained
    incident fires within minutes.
  - **error budget remaining** -- lifetime: the fraction of the
    allowed bad events not yet consumed by the traffic seen so far.

  Status is ``ok`` / ``burning`` (both windows above their alert
  thresholds) / ``exhausted`` (budget spent).  On the transition out
  of ``ok`` the tracker fires its alert hooks exactly once per
  episode, emits a structured log line, and records an ``slo.alert``
  span event into the tracer.

Instruments land in a :class:`~repro.obs.metrics.MetricsRegistry`
(``repro_slo_*`` families), so both ``GET /metrics`` forms and
``repro-hetsim metrics-dump`` expose them.  The clock is injectable
for deterministic window tests.  Everything is stdlib-only.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .logging import get_logger, log_event
from .metrics import MetricsRegistry, get_registry
from .trace import get_tracer

__all__ = [
    "SLObjective",
    "SLOTracker",
    "DEFAULT_OBJECTIVES",
    "STATUS_OK",
    "STATUS_BURNING",
    "STATUS_EXHAUSTED",
    "get_slo_tracker",
]

_log = get_logger("obs.slo")

STATUS_OK = "ok"
STATUS_BURNING = "burning"
STATUS_EXHAUSTED = "exhausted"

#: Severity order for aggregating per-objective statuses.
_STATUS_RANK = {STATUS_OK: 0, STATUS_BURNING: 1, STATUS_EXHAUSTED: 2}

#: Multi-window defaults: the fast window catches an incident within
#: minutes, the slow window stops a brief blip from paging.
DEFAULT_FAST_WINDOW_S = 300.0
DEFAULT_SLOW_WINDOW_S = 3600.0
#: Burn-rate alert thresholds (Google SRE workbook's 5m/1h page pair).
DEFAULT_FAST_BURN = 14.4
DEFAULT_SLOW_BURN = 6.0
#: Events a window must hold before its burn rate counts: one slow
#: request after an idle stretch is 100% of an empty window, and that
#: must not page anyone.
DEFAULT_MIN_WINDOW_EVENTS = 10


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over an endpoint's request stream.

    ``latency_threshold_ms`` of ``None`` makes this an availability
    objective (bad = HTTP 5xx); a number makes it a latency objective
    (bad = 5xx *or* slower than the threshold).  ``endpoint`` is an
    exact path, or ``"*"`` to cover every endpoint.
    """

    name: str
    endpoint: str
    target: float
    latency_threshold_ms: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.target <= 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1], got {self.target}"
            )

    @property
    def budget(self) -> float:
        """The allowed bad-event fraction, ``1 - target``."""
        return 1.0 - self.target

    def matches(self, endpoint: str) -> bool:
        return self.endpoint == "*" or self.endpoint == endpoint

    def is_bad(self, latency_s: float, error: bool) -> bool:
        if error:
            return True
        if self.latency_threshold_ms is None:
            return False
        return latency_s * 1e3 > self.latency_threshold_ms

    def payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "endpoint": self.endpoint,
            "target": self.target,
            "latency_threshold_ms": self.latency_threshold_ms,
        }


#: The serving layer's out-of-the-box objectives: availability across
#: the board plus a latency ceiling per model endpoint (the sweep and
#: optimize endpoints evaluate whole grids, so they get more headroom).
DEFAULT_OBJECTIVES: Tuple[SLObjective, ...] = (
    SLObjective(name="availability", endpoint="*", target=0.999),
    SLObjective(
        name="speedup-latency", endpoint="/v1/speedup",
        target=0.99, latency_threshold_ms=250.0,
    ),
    SLObjective(
        name="sweep-latency", endpoint="/v1/sweep",
        target=0.99, latency_threshold_ms=500.0,
    ),
    SLObjective(
        name="optimize-latency", endpoint="/v1/optimize",
        target=0.99, latency_threshold_ms=500.0,
    ),
)


class _ObjectiveState:
    """Mutable accounting for one objective (guarded by the tracker).

    Window membership is maintained *incrementally*: each event enters
    both window deques with its running total/bad counters bumped, and
    pruning decrements them as events age out.  ``record`` used to
    rescan every event inside the slow window per request -- O(events)
    per record, quadratic over a burst -- which showed up as the single
    largest term on the serving hot path under load.  The counters make
    both burn-rate reads O(1) with amortized-O(1) maintenance, with
    bit-identical results for the monotone timestamps the tracker sees.
    """

    __slots__ = (
        "fast_events", "slow_events",
        "fast_total", "fast_bad",
        "slow_total", "slow_bad",
        "good_total", "bad_total", "alerting",
    )

    def __init__(self):
        #: (timestamp, bad) pairs inside each window, oldest first.
        #: The tuples are shared between the deques, so the second
        #: window costs pointers, not copies.
        self.fast_events: Deque[Tuple[float, bool]] = deque()
        self.slow_events: Deque[Tuple[float, bool]] = deque()
        self.fast_total = 0
        self.fast_bad = 0
        self.slow_total = 0
        self.slow_bad = 0
        self.good_total = 0
        self.bad_total = 0
        self.alerting = False


class SLOTracker:
    """Tracks every objective's burn rate, budget, and status.

    Thread-safe; the serving layer records from the event loop while
    scrapes read from transport tasks.  ``clock`` defaults to
    ``time.monotonic`` and is injectable so tests can march time
    across window boundaries deterministically.
    """

    def __init__(
        self,
        objectives: Optional[Tuple[SLObjective, ...]] = None,
        registry: Optional[MetricsRegistry] = None,
        fast_window_s: float = DEFAULT_FAST_WINDOW_S,
        slow_window_s: float = DEFAULT_SLOW_WINDOW_S,
        fast_burn_threshold: float = DEFAULT_FAST_BURN,
        slow_burn_threshold: float = DEFAULT_SLOW_BURN,
        min_window_events: int = DEFAULT_MIN_WINDOW_EVENTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if fast_window_s <= 0 or slow_window_s < fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s"
            )
        self.objectives = tuple(
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.fast_burn_threshold = fast_burn_threshold
        self.slow_burn_threshold = slow_burn_threshold
        self.min_window_events = max(1, min_window_events)
        self._clock = clock
        self._lock = threading.Lock()
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState() for o in self.objectives
        }
        self._alert_hooks: List[Callable[[Dict[str, Any]], None]] = []
        registry = registry if registry is not None else get_registry()
        self._events = registry.counter(
            "repro_slo_events_total",
            "SLO events by objective and result (good/bad)",
        )
        self._budget_gauge = registry.gauge(
            "repro_slo_error_budget_remaining",
            "Fraction of the error budget left (lifetime), per objective",
        )
        self._burn_gauge = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per objective and window (fast/slow)",
        )
        self._status_gauge = registry.gauge(
            "repro_slo_status",
            "Objective status: 0 ok, 1 burning, 2 exhausted",
        )
        self.refresh_gauges()

    # -- hooks -------------------------------------------------------------

    def add_alert_hook(
        self, hook: Callable[[Dict[str, Any]], None]
    ) -> None:
        """Register a callable fired once per burn episode."""
        self._alert_hooks.append(hook)

    # -- recording ---------------------------------------------------------

    def record(
        self,
        endpoint: str,
        latency_s: float,
        error: bool,
        now: Optional[float] = None,
    ) -> None:
        """Account one finished request against every matching objective.

        ``now`` lets a deferred caller (the serving layer's fast-path
        accounting queue) stamp the event with its *capture* time
        rather than the drain time, so burn windows see the traffic
        where it actually happened.  Timestamps must be non-decreasing
        across calls, which both ``time.monotonic`` capture points and
        in-order drains guarantee.
        """
        now = self._clock() if now is None else now
        fired: List[Dict[str, Any]] = []
        with self._lock:
            for objective in self.objectives:
                if not objective.matches(endpoint):
                    continue
                state = self._states[objective.name]
                bad = objective.is_bad(latency_s, error)
                event = (now, bad)
                state.fast_events.append(event)
                state.slow_events.append(event)
                state.fast_total += 1
                state.slow_total += 1
                if bad:
                    state.fast_bad += 1
                    state.slow_bad += 1
                    state.bad_total += 1
                else:
                    state.good_total += 1
                self._prune(state, now)
                self._events.inc(
                    slo=objective.name, result="bad" if bad else "good"
                )
                alert = self._update_locked(objective, state, now)
                if alert is not None:
                    fired.append(alert)
        for alert in fired:
            self._emit_alert(alert)

    def _prune(self, state: _ObjectiveState, now: float) -> None:
        fast_horizon = now - self.fast_window_s
        events = state.fast_events
        while events and events[0][0] < fast_horizon:
            _, was_bad = events.popleft()
            state.fast_total -= 1
            if was_bad:
                state.fast_bad -= 1
        slow_horizon = now - self.slow_window_s
        events = state.slow_events
        while events and events[0][0] < slow_horizon:
            _, was_bad = events.popleft()
            state.slow_total -= 1
            if was_bad:
                state.slow_bad -= 1

    # -- math --------------------------------------------------------------

    def _window_burn(
        self, state: _ObjectiveState, objective: SLObjective,
        fast: bool,
    ) -> float:
        """Bad fraction over the window divided by the error budget.

        Reads the window's running counters (the caller prunes to
        ``now`` first, so membership is exact).  An empty window (no
        traffic) burns nothing, and a window holding fewer than
        ``min_window_events`` is treated the same way -- too little
        evidence to page on.  A zero budget (target 1.0) burns
        infinitely on any bad event -- there is no allowance to spend
        -- and nothing otherwise.
        """
        if fast:
            total, bad = state.fast_total, state.fast_bad
        else:
            total, bad = state.slow_total, state.slow_bad
        if total < self.min_window_events or bad == 0:
            return 0.0
        fraction = bad / total
        if objective.budget <= 0.0:
            return float("inf")
        return fraction / objective.budget

    def _budget_remaining(
        self, state: _ObjectiveState, objective: SLObjective
    ) -> float:
        """Lifetime budget left, clamped to [0, 1]; 1.0 at zero traffic."""
        total = state.good_total + state.bad_total
        if total == 0:
            return 1.0
        allowed = objective.budget * total
        if allowed <= 0.0:
            return 0.0 if state.bad_total else 1.0
        return max(0.0, 1.0 - state.bad_total / allowed)

    def _status_locked(
        self, objective: SLObjective, state: _ObjectiveState, now: float
    ) -> Tuple[str, float, float, float]:
        fast = self._window_burn(state, objective, fast=True)
        slow = self._window_burn(state, objective, fast=False)
        remaining = self._budget_remaining(state, objective)
        if remaining <= 0.0:
            status = STATUS_EXHAUSTED
        elif (
            fast >= self.fast_burn_threshold
            and slow >= self.slow_burn_threshold
        ):
            status = STATUS_BURNING
        else:
            status = STATUS_OK
        return status, fast, slow, remaining

    # -- status + alerting -------------------------------------------------

    def _update_locked(
        self, objective: SLObjective, state: _ObjectiveState, now: float
    ) -> Optional[Dict[str, Any]]:
        """Detect status edges; return an alert payload on ok->hot.

        Gauges are *not* refreshed here: every export path
        (:meth:`refresh_gauges` before a Prometheus render,
        :meth:`snapshot` for the JSON forms) recomputes them from the
        running counters, so per-record gauge writes would only buy
        staleness-freedom nobody reads -- and they dominated the cost
        of this hot-path method.
        """
        status, fast, slow, remaining = self._status_locked(
            objective, state, now
        )
        if status == STATUS_OK:
            state.alerting = False
            return None
        if state.alerting:
            return None  # already inside this burn episode
        state.alerting = True
        return {
            "slo": objective.name,
            "endpoint": objective.endpoint,
            "status": status,
            "burn_rate_fast": fast,
            "burn_rate_slow": slow,
            "error_budget_remaining": remaining,
        }

    def _set_gauges(
        self, name: str, status: str, fast: float, slow: float,
        remaining: float,
    ) -> None:
        self._budget_gauge.set(remaining, slo=name)
        self._burn_gauge.set(fast, slo=name, window="fast")
        self._burn_gauge.set(slow, slo=name, window="slow")
        self._status_gauge.set(float(_STATUS_RANK[status]), slo=name)

    def _emit_alert(self, alert: Dict[str, Any]) -> None:
        log_event(_log, "slo.alert", level=logging.WARNING, **alert)
        span = get_tracer().span("slo.alert", attributes=dict(alert))
        span.finish("error")
        for hook in list(self._alert_hooks):
            try:
                hook(dict(alert))
            except Exception:  # pragma: no cover - hooks must not kill us
                log_event(
                    _log, "slo.alert_hook_failed", level=logging.ERROR,
                    slo=alert.get("slo"),
                )

    # -- queries -----------------------------------------------------------

    def status(self, name: str) -> str:
        """One objective's current status."""
        objective = self._objective(name)
        now = self._clock()
        with self._lock:
            state = self._states[name]
            self._prune(state, now)
            return self._status_locked(objective, state, now)[0]

    def overall_status(self) -> str:
        """The worst status across every objective."""
        worst = STATUS_OK
        for objective in self.objectives:
            status = self.status(objective.name)
            if _STATUS_RANK[status] > _STATUS_RANK[worst]:
                worst = status
        return worst

    def burn_rates(self, name: str) -> Dict[str, float]:
        objective = self._objective(name)
        now = self._clock()
        with self._lock:
            state = self._states[name]
            self._prune(state, now)
            return {
                "fast": self._window_burn(state, objective, fast=True),
                "slow": self._window_burn(state, objective, fast=False),
            }

    def error_budget_remaining(self, name: str) -> float:
        objective = self._objective(name)
        with self._lock:
            return self._budget_remaining(self._states[name], objective)

    def refresh_gauges(self) -> None:
        """Recompute every gauge (called before each metrics render,
        so windows that drained between requests read correctly)."""
        now = self._clock()
        with self._lock:
            for objective in self.objectives:
                state = self._states[objective.name]
                self._prune(state, now)
                status, fast, slow, remaining = self._status_locked(
                    objective, state, now
                )
                self._set_gauges(
                    objective.name, status, fast, slow, remaining
                )

    def snapshot(self) -> Dict[str, Any]:
        """The JSON form behind ``GET /v1/slo`` and the ``slo``
        section of ``GET /metrics``."""
        now = self._clock()
        objectives = []
        worst = STATUS_OK
        with self._lock:
            for objective in self.objectives:
                state = self._states[objective.name]
                self._prune(state, now)
                status, fast, slow, remaining = self._status_locked(
                    objective, state, now
                )
                self._set_gauges(
                    objective.name, status, fast, slow, remaining
                )
                if _STATUS_RANK[status] > _STATUS_RANK[worst]:
                    worst = status
                objectives.append(
                    {
                        **objective.payload(),
                        "status": status,
                        "burn_rate_fast": fast,
                        "burn_rate_slow": slow,
                        "error_budget_remaining": remaining,
                        "events_good": state.good_total,
                        "events_bad": state.bad_total,
                    }
                )
        return {
            "status": worst,
            "objectives": objectives,
            "windows": {
                "fast_s": self.fast_window_s,
                "slow_s": self.slow_window_s,
            },
            "burn_thresholds": {
                "fast": self.fast_burn_threshold,
                "slow": self.slow_burn_threshold,
            },
        }

    def _objective(self, name: str) -> SLObjective:
        for objective in self.objectives:
            if objective.name == name:
                return objective
        raise KeyError(f"no SLO objective named {name!r}")


#: Lazily built process-wide tracker (``repro-hetsim metrics-dump``
#: renders its families without a server; the serving layer builds a
#: per-instance tracker against its own registry instead).
_GLOBAL: Optional[SLOTracker] = None
_GLOBAL_LOCK = threading.Lock()


def get_slo_tracker() -> SLOTracker:
    """The process-wide tracker, registered on the global registry."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = SLOTracker(registry=get_registry())
        return _GLOBAL
