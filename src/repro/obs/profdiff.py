"""repro.obs.profdiff -- differential profiling for bench-check.

The regression sentinel (:mod:`repro.obs.regress`) can say *that* a
benchmark drifted; this module says *which frames* did it.  Given the
candidate run's folded profile and the baseline runs' profiles (both
stamped into ``BENCH_history.jsonl`` rows by ``record_benchmark``),
it joins per-frame self-time on ``module:func`` -- line numbers are
stripped so the join survives code moving by a few lines -- and ranks
frames by absolute self-time increase.  The top entries become the
"culprit frames" named in the exit-5 report::

    repro.core.optimizer:optimize +38.2% self-time (0.41s -> 0.57s)

Baseline self-times are averaged across the baseline window, mirroring
how the sentinel's bootstrap CI treats scalar metrics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .prof import FoldedProfile

__all__ = [
    "diff_profiles",
    "attribute_regression",
    "render_culprit",
]

#: Frames whose self-time moved by less than this many seconds are
#: noise at sampling resolution and never reported.
MIN_DELTA_S = 0.002


def _mean_self_seconds(
    profiles: Iterable[FoldedProfile],
) -> Dict[str, float]:
    """Per-frame self-seconds averaged across ``profiles``."""
    totals: Dict[str, float] = {}
    count = 0
    for profile in profiles:
        count += 1
        for frame, seconds in profile.self_seconds().items():
            totals[frame] = totals.get(frame, 0.0) + seconds
    if count == 0:
        return {}
    return {frame: seconds / count for frame, seconds in totals.items()}


def diff_profiles(
    candidate: FoldedProfile,
    baselines: List[FoldedProfile],
    top: int = 5,
    min_delta_s: float = MIN_DELTA_S,
) -> List[Dict[str, Any]]:
    """The top frames by self-time *increase*, candidate vs baseline.

    Returns culprit documents sorted by absolute self-seconds gained,
    descending.  Frames absent from every baseline profile are tagged
    ``"new"``; everything else ``"regressed"``.  Frames that got
    *faster* are not culprits and are omitted.
    """
    if not baselines:
        return []
    candidate_self = candidate.self_seconds()
    baseline_self = _mean_self_seconds(baselines)
    culprits: List[Dict[str, Any]] = []
    for frame, cand_s in candidate_self.items():
        base_s = baseline_self.get(frame, 0.0)
        delta_s = cand_s - base_s
        if delta_s < min_delta_s:
            continue
        doc: Dict[str, Any] = {
            "frame": frame,
            "candidate_s": round(cand_s, 6),
            "baseline_s": round(base_s, 6),
            "delta_s": round(delta_s, 6),
            "status": "new" if base_s == 0.0 else "regressed",
        }
        if base_s > 0.0:
            doc["delta_pct"] = round(100.0 * delta_s / base_s, 1)
        culprits.append(doc)
    culprits.sort(key=lambda doc: (-doc["delta_s"], doc["frame"]))
    return culprits[:top]


def render_culprit(culprit: Dict[str, Any]) -> str:
    """One human line for one culprit document."""
    frame = culprit["frame"]
    if culprit.get("status") == "new":
        return (
            f"{frame} +{culprit['delta_s']:.3f}s self-time "
            f"(new frame, absent from baseline)"
        )
    return (
        f"{frame} +{culprit.get('delta_pct', 0.0):.1f}% self-time "
        f"({culprit['baseline_s']:.3f}s -> {culprit['candidate_s']:.3f}s)"
    )


def _profile_of(row: Dict[str, Any]) -> Optional[FoldedProfile]:
    doc = row.get("profile")
    if not isinstance(doc, dict) or not doc.get("folded"):
        return None
    try:
        return FoldedProfile.from_payload(doc)
    except (TypeError, ValueError):
        return None


def attribute_regression(
    candidate_row: Dict[str, Any],
    baseline_rows: List[Dict[str, Any]],
    top: int = 5,
) -> List[Dict[str, Any]]:
    """Culprit frames for one history benchmark's gating verdict.

    ``candidate_row`` / ``baseline_rows`` are ``BENCH_history.jsonl``
    rows; rows without a ``profile`` artifact are skipped, and an
    empty list means attribution was not possible (the sentinel's
    verdicts stand on their own either way).
    """
    candidate = _profile_of(candidate_row)
    if candidate is None:
        return []
    baselines = [
        profile
        for profile in (_profile_of(row) for row in baseline_rows)
        if profile is not None
    ]
    if not baselines:
        return []
    return diff_profiles(candidate, baselines, top=top)
