"""Unit tests for repro.core.amdahl."""

import math

import pytest

from repro.core.amdahl import (
    MultiPhaseWorkload,
    Phase,
    amdahl_limit,
    amdahl_speedup,
    check_fraction,
    gustafson_speedup,
    serial_fraction_for_target,
)
from repro.errors import ModelError


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0) == 0.0
        assert check_fraction(1.0) == 1.0
        assert check_fraction(0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0, -1e9])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ModelError):
            check_fraction(bad)

    def test_error_mentions_name(self):
        with pytest.raises(ModelError, match="phase fraction"):
            check_fraction(-1.0, "phase fraction")


class TestAmdahlSpeedup:
    def test_no_parallel_fraction_gives_unity(self):
        assert amdahl_speedup(0.0, 100.0) == pytest.approx(1.0)

    def test_all_parallel_equals_factor(self):
        assert amdahl_speedup(1.0, 7.0) == pytest.approx(7.0)

    def test_textbook_example(self):
        # Half the program sped up 2x -> 1 / (0.25 + 0.5) = 4/3.
        assert amdahl_speedup(0.5, 2.0) == pytest.approx(4.0 / 3.0)

    def test_speedup_factor_below_one_slows_down(self):
        assert amdahl_speedup(1.0, 0.5) == pytest.approx(0.5)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ModelError):
            amdahl_speedup(0.5, 0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelError):
            amdahl_speedup(1.5, 2.0)


class TestAmdahlLimit:
    def test_limit_is_inverse_serial_fraction(self):
        assert amdahl_limit(0.9) == pytest.approx(10.0)
        assert amdahl_limit(0.99) == pytest.approx(100.0)

    def test_fully_parallel_is_unbounded(self):
        assert math.isinf(amdahl_limit(1.0))

    def test_limit_dominates_any_finite_factor(self):
        f = 0.95
        assert amdahl_speedup(f, 1e12) <= amdahl_limit(f) + 1e-9


class TestGustafson:
    def test_serial_only(self):
        assert gustafson_speedup(0.0, 64) == pytest.approx(1.0)

    def test_linear_in_processors_when_fully_parallel(self):
        assert gustafson_speedup(1.0, 64) == pytest.approx(64.0)

    def test_exceeds_amdahl_for_same_inputs(self):
        # Scaled speedup is far more optimistic than fixed-work speedup.
        f, n = 0.9, 128
        assert gustafson_speedup(f, n) > amdahl_speedup(f, n)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ModelError):
            gustafson_speedup(0.5, 0)


class TestSerialFractionForTarget:
    def test_round_trip(self):
        f = serial_fraction_for_target(10.0, 50.0)
        assert amdahl_speedup(f, 50.0) == pytest.approx(10.0)

    def test_target_of_one_needs_no_parallelism(self):
        assert serial_fraction_for_target(1.0, 10.0) == pytest.approx(0.0)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ModelError):
            serial_fraction_for_target(20.0, 10.0)

    def test_rejects_sub_unity_target(self):
        with pytest.raises(ModelError):
            serial_fraction_for_target(0.5, 10.0)

    def test_rejects_useless_accelerator(self):
        with pytest.raises(ModelError):
            serial_fraction_for_target(2.0, 1.0)


class TestPhase:
    def test_valid_phase(self):
        p = Phase(0.25, 8.0)
        assert p.fraction == 0.25
        assert p.speedup == 8.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelError):
            Phase(1.5, 2.0)

    def test_rejects_nonpositive_speedup(self):
        with pytest.raises(ModelError):
            Phase(0.5, 0.0)


class TestMultiPhaseWorkload:
    def test_matches_two_phase_amdahl(self):
        w = MultiPhaseWorkload.two_phase(0.9, 10.0)
        assert w.speedup() == pytest.approx(amdahl_speedup(0.9, 10.0))

    def test_three_phase_example(self):
        w = MultiPhaseWorkload.from_pairs(
            [(0.1, 1.0), (0.6, 8.0), (0.3, 100.0)]
        )
        expected = 1.0 / (0.1 + 0.6 / 8.0 + 0.3 / 100.0)
        assert w.speedup() == pytest.approx(expected)

    def test_time_is_reciprocal_of_speedup(self):
        w = MultiPhaseWorkload.from_pairs([(0.5, 2.0), (0.5, 4.0)])
        assert w.time() * w.speedup() == pytest.approx(1.0)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ModelError):
            MultiPhaseWorkload.from_pairs([(0.5, 2.0), (0.3, 4.0)])

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ModelError):
            MultiPhaseWorkload([])

    def test_rescale_scales_named_phase(self):
        w = MultiPhaseWorkload.from_pairs([(0.5, 1.0), (0.5, 10.0)])
        w2 = w.rescale([1.0, 2.0])
        assert w2.phases[1].speedup == pytest.approx(20.0)
        assert w2.speedup() > w.speedup()

    def test_rescale_length_mismatch(self):
        w = MultiPhaseWorkload.two_phase(0.5, 2.0)
        with pytest.raises(ModelError):
            w.rescale([1.0])

    def test_serial_speedup_parameter(self):
        w = MultiPhaseWorkload.two_phase(0.5, 4.0, serial_speedup=2.0)
        expected = 1.0 / (0.5 / 2.0 + 0.5 / 4.0)
        assert w.speedup() == pytest.approx(expected)
