"""Request lifecycle through ModelService: route -> parse -> cache ->
admit -> batch -> respond.

Covers the acceptance matrix: schema-invalid body -> 400, infeasible
budgets -> 422 with the binding-bound message, timeout -> 503, queue
overflow -> 429, cache-hit short-circuit (the second identical request
never reaches the dispatcher), and the bit-identical guarantee of
``/v1/optimize`` against a direct ``optimize_batch`` call.
"""

import asyncio
import json

import pytest

from repro.core.constraints import Budget
from repro.itrs.scenarios import get_scenario
from repro.perf.batch import optimize_batch
from repro.projection.designs import standard_designs
from repro.projection.engine import node_budget
from repro.service.app import ModelService, ServiceConfig


def _run(coro):
    return asyncio.run(coro)


def _service(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ModelService(ServiceConfig(**defaults))


async def _post(service, path, body):
    return await service.handle(
        "POST", path, json.dumps(body).encode()
    )


class TestPlumbing:
    def test_healthz_reports_version(self):
        import repro

        async def main():
            service = _service()
            try:
                return await service.handle("GET", "/healthz")
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert payload["uptime_s"] >= 0

    def test_unknown_route_404(self):
        async def main():
            service = _service()
            try:
                return await service.handle("GET", "/v2/nothing")
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 404
        assert payload["error"] == "NotFoundError"

    def test_wrong_method_405(self):
        async def main():
            service = _service()
            try:
                return await service.handle("POST", "/healthz", b"{}")
            finally:
                service.close()

        status, _ = _run(main())
        assert status == 405

    def test_query_string_stripped(self):
        async def main():
            service = _service()
            try:
                return await service.handle("GET", "/healthz?probe=1")
            finally:
                service.close()

        assert _run(main())[0] == 200


class TestValidationErrors:
    def test_malformed_json_400(self):
        async def main():
            service = _service()
            try:
                return await service.handle(
                    "POST", "/v1/speedup", b"{not json"
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 400
        assert "JSON" in payload["message"]

    def test_schema_invalid_400(self):
        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "mmm", "f": 2.0, "design": "ASIC"},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 400
        assert payload["error"] == "BadRequestError"
        assert "'f'" in payload["message"]

    def test_unknown_design_400_names_available(self):
        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "mmm", "f": 0.9, "design": "TPU"},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 400
        assert "TPU" in payload["message"]
        assert "ASIC" in payload["message"]

    def test_unknown_node_400(self):
        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "mmm", "f": 0.9, "design": "ASIC",
                     "node_nm": 7},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 400
        assert "7nm" in payload["message"]


class TestInfeasible422:
    def test_infeasible_budget_carries_binding_bound(self, monkeypatch):
        """A budget too tight for any serial core -> 422, message
        naming the binding serial bound (from InfeasibleDesignError)."""
        import repro.service.app as app_module

        tight = Budget(area=0.5, power=0.25, bandwidth=0.5)
        monkeypatch.setattr(
            app_module, "node_budget", lambda *a, **k: tight
        )

        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "mmm", "f": 0.99, "design": "ASIC"},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 422
        assert payload["error"] == "InfeasibleDesignError"
        assert "bound by" in payload["message"]

    def test_optimize_all_infeasible_422(self, monkeypatch):
        import repro.service.app as app_module

        tight = Budget(area=0.5, power=0.25, bandwidth=0.5)
        monkeypatch.setattr(
            app_module, "node_budget", lambda *a, **k: tight
        )

        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/optimize",
                    {"workload": "mmm", "f": 0.99},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 422
        assert "no design is feasible" in payload["message"]


class TestOverloadAndTimeout:
    def test_timeout_503(self):
        async def main():
            service = _service(request_timeout_s=0.02)

            async def stall(*args, **kwargs):
                await asyncio.sleep(1.0)

            service.batcher.evaluate = stall
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "mmm", "f": 0.99, "design": "ASIC"},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 503
        assert payload["error"] == "ServiceTimeoutError"
        assert "deadline" in payload["message"]

    def test_queue_full_429(self):
        async def main():
            service = _service(
                max_inflight=1, queue_depth=0, request_timeout_s=5.0
            )

            async def slow(chip, f, budget, r_max=16):
                await asyncio.sleep(0.2)
                return optimize_batch(chip, f, [budget], r_max)[0]

            service.batcher.evaluate = slow
            body = {"workload": "mmm", "f": 0.99, "design": "ASIC"}
            first = asyncio.create_task(
                _post(service, "/v1/speedup", body)
            )
            await asyncio.sleep(0.05)  # first holds the only slot
            # A *different* request (no cache hit) while saturated:
            second = await _post(
                service, "/v1/speedup", {**body, "node_nm": 22}
            )
            result_first = await first
            service.close()
            return result_first, second

        (status1, _), (status2, payload2) = _run(main())
        assert status1 == 200
        assert status2 == 429
        assert payload2["error"] == "TooManyRequestsError"
        assert "capacity" in payload2["message"]

    def test_shed_and_timeout_counted_in_metrics(self):
        async def main():
            service = _service(request_timeout_s=0.01)

            async def stall(*args, **kwargs):
                await asyncio.sleep(1.0)

            service.batcher.evaluate = stall
            await _post(
                service, "/v1/speedup",
                {"workload": "mmm", "f": 0.99, "design": "ASIC"},
            )
            _, metrics = await service.handle("GET", "/metrics")
            service.close()
            return metrics

        metrics = _run(main())
        assert metrics["timeouts"] == 1
        assert metrics["requests"]["/v1/speedup"]["503"] == 1


class TestResponseCache:
    def test_cache_hit_short_circuits_dispatcher(self):
        body = {"workload": "fft", "f": 0.99, "design": "ASIC"}

        async def main():
            service = _service()
            first = await _post(service, "/v1/speedup", body)
            dispatches = service.batcher.dispatch_count
            second = await _post(service, "/v1/speedup", body)
            _, metrics = await service.handle("GET", "/metrics")
            service.close()
            return (
                first, second, dispatches,
                service.batcher.dispatch_count, metrics,
            )

        first, second, before, after, metrics = _run(main())
        assert first == second == (200, first[1])
        assert after == before  # second request never reached it
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1

    def test_different_requests_do_not_share_entries(self):
        async def main():
            service = _service()
            a = await _post(
                service, "/v1/speedup",
                {"workload": "fft", "f": 0.99, "design": "ASIC"},
            )
            b = await _post(
                service, "/v1/speedup",
                {"workload": "fft", "f": 0.9, "design": "ASIC"},
            )
            service.close()
            return a, b

        (_, pa), (_, pb) = _run(main())
        assert pa["point"]["speedup"] != pb["point"]["speedup"]

    def test_errors_are_not_cached(self):
        async def main():
            service = _service()
            await _post(
                service, "/v1/speedup",
                {"workload": "mmm", "f": 0.9, "design": "TPU"},
            )
            service.close()
            return len(service.cache)

        assert _run(main()) == 0


class TestBitIdentical:
    """The acceptance criterion: served results == optimize_batch."""

    def test_optimize_matches_direct_batch_call(self):
        f, workload = 0.999, "mmm"
        scenario = get_scenario("baseline")
        node = scenario.roadmap.nodes[-1]

        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/optimize",
                    {"workload": workload, "f": f},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200

        by_design = {
            c["design"]: c for c in payload["candidates"]
        }
        best_label, best_speedup = None, float("-inf")
        for design in standard_designs(workload):
            budget = node_budget(
                node, workload, None, scenario,
                bandwidth_exempt=design.bandwidth_exempt,
            )
            direct = optimize_batch(design.chip, f, [budget])[0]
            served = by_design[design.label]
            if direct is None:
                assert served["feasible"] is False
                continue
            # bit-identical floats, straight through JSON
            roundtrip = json.loads(json.dumps(served["point"]))
            assert roundtrip["speedup"] == direct.speedup
            assert roundtrip["r"] == direct.r
            assert roundtrip["n"] == direct.n
            if direct.speedup > best_speedup:
                best_label, best_speedup = design.label, direct.speedup
        assert payload["winner"]["design"] == best_label
        assert payload["winner"]["point"]["speedup"] == best_speedup

    def test_sweep_matches_projection_engine(self):
        from repro.projection.engine import project

        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/sweep",
                    {"workload": "fft", "f": 0.99, "design": "GTX480"},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200
        series = project("fft", 0.99).by_label()["GTX480"]
        assert len(payload["cells"]) == len(series.cells)
        for cell, engine_cell in zip(payload["cells"], series.cells):
            assert cell["node"] == engine_cell.node.label
            if engine_cell.point is None:
                assert cell["point"] is None
            else:
                assert cell["point"]["speedup"] == engine_cell.point.speedup

    def test_speedup_matches_scalar_optimize(self):
        from repro.core.optimizer import optimize

        async def main():
            service = _service()
            try:
                return await _post(
                    service, "/v1/speedup",
                    {"workload": "bs", "f": 0.9, "design": "GTX285",
                     "node_nm": 22},
                )
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200
        design = {
            d.short_label: d for d in standard_designs("bs")
        }["GTX285"]
        scenario = get_scenario("baseline")
        budget = node_budget(
            scenario.roadmap.node(22), "bs", None, scenario,
            bandwidth_exempt=design.bandwidth_exempt,
        )
        direct = optimize(design.chip, 0.9, budget)
        assert payload["point"]["speedup"] == direct.speedup
        assert payload["point"]["r"] == direct.r


class TestBatchingAcrossRequests:
    def test_concurrent_same_design_requests_coalesce(self):
        """Five users asking about the same design at different nodes
        ride one optimize_batch dispatch."""
        nodes = [40, 32, 22, 16, 11]

        async def main():
            service = _service(batch_window_ms=5.0)
            results = await asyncio.gather(
                *(
                    _post(
                        service, "/v1/speedup",
                        {"workload": "mmm", "f": 0.99,
                         "design": "ASIC", "node_nm": nm},
                    )
                    for nm in nodes
                )
            )
            dispatches = service.batcher.dispatch_count
            items = service.batcher.item_count
            service.close()
            return results, dispatches, items

        results, dispatches, items = _run(main())
        assert all(status == 200 for status, _ in results)
        assert dispatches == 1
        assert items == len(nodes)
        # Every caller still got its own node's answer.
        answered = {p["node"] for _, p in results}
        assert answered == {f"{nm}nm" for nm in nodes}
