"""Tests for the extension workloads: SpMV and the Jacobi stencil."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.workloads.spmv import (
    CSRMatrix,
    SpMVWorkload,
    csr_from_dense,
    csr_matvec,
)
from repro.workloads.stencil import (
    StencilWorkload,
    jacobi_step,
    jacobi_sweeps,
)


class TestCSR:
    def test_round_trip_matches_dense(self, rng):
        dense = np.where(
            rng.random((20, 20)) < 0.3,
            rng.standard_normal((20, 20)),
            0.0,
        ).astype(np.float32)
        x = rng.standard_normal(20).astype(np.float32)
        np.testing.assert_allclose(
            csr_matvec(csr_from_dense(dense), x),
            dense @ x,
            rtol=1e-4,
            atol=1e-4,
        )

    def test_identity_matrix(self):
        eye = np.eye(8, dtype=np.float32)
        x = np.arange(8, dtype=np.float32)
        np.testing.assert_allclose(
            csr_matvec(csr_from_dense(eye), x), x
        )

    def test_zero_matrix(self):
        zero = np.zeros((5, 5), dtype=np.float32)
        csr = csr_from_dense(zero)
        assert csr.nnz == 0
        np.testing.assert_allclose(
            csr_matvec(csr, np.ones(5)), np.zeros(5)
        )

    def test_rectangular(self, rng):
        dense = rng.standard_normal((4, 7)).astype(np.float32)
        x = rng.standard_normal(7).astype(np.float32)
        np.testing.assert_allclose(
            csr_matvec(csr_from_dense(dense), x), dense @ x, rtol=1e-4
        )

    def test_dimension_mismatch(self):
        csr = csr_from_dense(np.eye(4))
        with pytest.raises(ModelError):
            csr_matvec(csr, np.ones(5))

    def test_csr_validation(self):
        with pytest.raises(ModelError):
            CSRMatrix(
                shape=(2, 2),
                values=np.ones(1, dtype=np.float32),
                col_indices=np.zeros(1, dtype=np.int64),
                row_pointers=np.array([0, 1]),  # wrong length
            )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 25),
        density=st.floats(0.05, 0.9),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_matches_dense_property(self, n, density, seed):
        rng = np.random.default_rng(seed)
        dense = np.where(
            rng.random((n, n)) < density,
            rng.standard_normal((n, n)),
            0.0,
        ).astype(np.float32)
        x = rng.standard_normal(n).astype(np.float32)
        np.testing.assert_allclose(
            csr_matvec(csr_from_dense(dense), x),
            dense @ x,
            rtol=1e-3,
            atol=1e-3,
        )


class TestSpMVModel:
    def test_low_fixed_intensity(self):
        spmv = SpMVWorkload()
        ai_small = spmv.arithmetic_intensity(512)
        ai_large = spmv.arithmetic_intensity(65536)
        # Low (~1/6 flop/byte) and nearly size-independent.
        assert 0.1 < ai_small < 0.3
        assert ai_large == pytest.approx(ai_small, rel=0.1)

    def test_far_leaner_than_paper_kernels(self):
        from repro.workloads.registry import get_workload

        spmv = SpMVWorkload()
        assert get_workload("fft").arithmetic_intensity(
            1024
        ) > 10 * spmv.arithmetic_intensity(1024)

    def test_run_produces_correct_product(self, rng):
        result = SpMVWorkload().run(32, rng)
        matrix, x, y = result.output
        dense = np.zeros(matrix.shape, dtype=np.float64)
        for i in range(matrix.shape[0]):
            start, end = (
                matrix.row_pointers[i], matrix.row_pointers[i + 1],
            )
            dense[i, matrix.col_indices[start:end]] = matrix.values[
                start:end
            ]
        np.testing.assert_allclose(y, dense @ x, rtol=1e-4, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ModelError):
            SpMVWorkload(nnz_per_row=0)
        with pytest.raises(ModelError):
            SpMVWorkload().ops(1)


class TestJacobi:
    def test_interior_update(self):
        grid = np.zeros((3, 3), dtype=np.float32)
        grid[0, 1] = grid[2, 1] = grid[1, 0] = grid[1, 2] = 1.0
        out = jacobi_step(grid)
        assert out[1, 1] == pytest.approx(1.0)

    def test_boundary_fixed(self, rng):
        grid = rng.standard_normal((8, 8)).astype(np.float32)
        out = jacobi_step(grid)
        np.testing.assert_array_equal(out[0, :], grid[0, :])
        np.testing.assert_array_equal(out[:, -1], grid[:, -1])

    def test_constant_grid_is_fixed_point(self):
        grid = np.full((10, 10), 3.5, dtype=np.float32)
        np.testing.assert_allclose(jacobi_sweeps(grid, 5), grid)

    def test_matches_loop_reference(self, rng):
        grid = rng.standard_normal((6, 6)).astype(np.float32)
        fast = jacobi_step(grid)
        slow = grid.copy()
        for i in range(1, 5):
            for j in range(1, 5):
                slow[i, j] = 0.25 * (
                    grid[i - 1, j] + grid[i + 1, j]
                    + grid[i, j - 1] + grid[i, j + 1]
                )
        np.testing.assert_allclose(fast, slow, rtol=1e-6)

    def test_converges_toward_interior_smoothing(self, rng):
        # Repeated sweeps shrink the interior residual.
        grid = rng.standard_normal((16, 16)).astype(np.float32)
        def residual(g):
            return float(np.abs(g[1:-1, 1:-1] - jacobi_step(g)[1:-1, 1:-1]).max())
        assert residual(jacobi_sweeps(grid, 50)) < residual(grid)

    def test_validation(self):
        with pytest.raises(ModelError):
            jacobi_step(np.zeros((2, 5)))
        with pytest.raises(ModelError):
            jacobi_sweeps(np.zeros((5, 5)), 0)


class TestStencilModel:
    def test_intensity_scales_with_temporal_block(self):
        assert StencilWorkload(temporal_block=1).arithmetic_intensity(
            64
        ) == pytest.approx(5.0 / 8.0)
        assert StencilWorkload(temporal_block=16).arithmetic_intensity(
            64
        ) == pytest.approx(10.0)

    def test_intensity_consistent_with_counts(self):
        wl = StencilWorkload(temporal_block=4)
        assert wl.arithmetic_intensity(32) == pytest.approx(
            wl.ops(32) / wl.compulsory_bytes(32)
        )

    def test_sits_between_spmv_and_mmm(self):
        from repro.workloads.registry import get_workload

        stencil = StencilWorkload(temporal_block=8)
        assert (
            SpMVWorkload().arithmetic_intensity(1024)
            < stencil.arithmetic_intensity(1024)
            < get_workload("mmm").arithmetic_intensity(1024)
        )

    def test_run(self, rng):
        result = StencilWorkload(temporal_block=3).run(16, rng)
        assert result.output.shape == (16, 16)
        assert result.ops == pytest.approx(5 * 16 * 16 * 3)

    def test_validation(self):
        with pytest.raises(ModelError):
            StencilWorkload(temporal_block=0)
        with pytest.raises(ModelError):
            StencilWorkload().ops(2)
