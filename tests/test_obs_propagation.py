"""Trace propagation across the three execution substrates.

One trace id must survive every hand-off the stack performs: the
asyncio handler (contextvars), the dispatcher's worker thread
(explicit carrier through ``run_in_executor``), and the campaign
runner's process pool (parent-side spans backdated to the submit
instant, workers shipping only wall-clock starts home).  These tests
pin the parent/child linkage at each seam and that concurrent
requests never bleed into each other's traces.

They share the process-global tracer (the service and runner do), so
each test clears it first; pytest runs the module serially.
"""

import asyncio
import json

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, ParetoTask
from repro.campaign.store import ResultStore
from repro.obs.context import new_trace_id
from repro.obs.trace import get_tracer
from repro.service.app import ModelService, ServiceConfig


def _run(coro):
    return asyncio.run(coro)


def _service(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ModelService(ServiceConfig(**defaults))


def _speedup_body(node_nm=22, design="GTX285"):
    return json.dumps(
        {"workload": "bs", "f": 0.9, "design": design,
         "node_nm": node_nm}
    ).encode()


def _by_name(spans, name):
    return [s for s in spans if s["name"] == name]


def _lookup(spans):
    return {s["span_id"]: s for s in spans}


class TestAsyncioHandler:
    def test_single_request_is_one_rooted_trace(self):
        get_tracer().clear()

        async def main():
            service = _service()
            try:
                return await service.handle_request(
                    "POST", "/v1/speedup", _speedup_body()
                )
            finally:
                service.close()

        status, _payload, headers = _run(main())
        assert status == 200
        trace = get_tracer().trace(headers["X-Trace-Id"])
        roots = [s for s in trace if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["http.request"]
        assert roots[0]["attributes"]["status"] == 200

    def test_concurrent_requests_do_not_share_traces(self):
        get_tracer().clear()
        nodes = [45, 32, 22, 16, 11]

        async def main():
            service = _service(batch_window_ms=5.0)
            try:
                return await asyncio.gather(
                    *(
                        service.handle_request(
                            "POST", "/v1/speedup", _speedup_body(nm)
                        )
                        for nm in nodes
                    )
                )
            finally:
                service.close()

        responses = _run(main())
        trace_ids = [h["X-Trace-Id"] for _, _, h in responses]
        assert len(set(trace_ids)) == len(nodes)
        for trace_id in trace_ids:
            trace = get_tracer().trace(trace_id)
            # Exactly one handler root per trace; every span in the
            # trace carries that trace id (no cross-request bleed).
            assert len(_by_name(trace, "http.request")) == 1
            assert {s["trace_id"] for s in trace} == {trace_id}

    def test_client_trace_id_is_adopted(self):
        get_tracer().clear()
        supplied = new_trace_id()

        async def main():
            service = _service()
            try:
                return await service.handle_request(
                    "GET", "/healthz", b"",
                    {"x-request-id": supplied},
                )
            finally:
                service.close()

        _status, _payload, headers = _run(main())
        assert headers["X-Trace-Id"] == supplied
        assert headers["X-Request-Id"] == supplied
        assert len(get_tracer().trace(supplied)) == 1


class TestDispatcherThread:
    def test_grid_eval_nests_under_batch_dispatch(self):
        """handler -> coalesce -> thread-pool grid eval is one trace.

        The dispatch runs on an executor thread, which does not
        inherit contextvars -- the linkage below only holds because
        the batcher carries the context across explicitly.
        """
        get_tracer().clear()

        async def main():
            service = _service()
            try:
                return await service.handle_request(
                    "POST", "/v1/speedup", _speedup_body()
                )
            finally:
                service.close()

        _status, _payload, headers = _run(main())
        trace = get_tracer().trace(headers["X-Trace-Id"])
        spans = _lookup(trace)

        root = _by_name(trace, "http.request")[0]
        wait = _by_name(trace, "batch.wait")[0]
        dispatch = _by_name(trace, "batch.dispatch")[0]
        grid = _by_name(trace, "perf.optimize_batch")[0]

        assert wait["parent_id"] == root["span_id"]
        assert dispatch["parent_id"] == root["span_id"]
        assert grid["parent_id"] == dispatch["span_id"]
        assert grid["attributes"]["batch_size"] == 1
        assert spans[grid["parent_id"]]["name"] == "batch.dispatch"

    def test_coalesced_requests_link_to_the_shared_dispatch(self):
        get_tracer().clear()
        nodes = [32, 22, 16]

        async def main():
            service = _service(batch_window_ms=10.0)
            try:
                responses = await asyncio.gather(
                    *(
                        service.handle_request(
                            "POST", "/v1/speedup", _speedup_body(nm)
                        )
                        for nm in nodes
                    )
                )
                dispatches = service.batcher.dispatch_count
                return responses, dispatches
            finally:
                service.close()

        responses, dispatches = _run(main())
        assert dispatches == 1
        trace_ids = {h["X-Trace-Id"] for _, _, h in responses}

        all_spans = get_tracer().spans()
        dispatch = _by_name(all_spans, "batch.dispatch")[0]
        assert dispatch["attributes"]["batch_size"] == len(nodes)
        # The dispatch lives in the opener's trace; the other
        # coalesced traces are recorded as links on it.
        linked = set(dispatch["attributes"].get("links", []))
        linked.add(dispatch["trace_id"])
        assert linked == trace_ids
        # Every caller timed its own wait inside its own trace.
        for trace_id in trace_ids:
            waits = _by_name(get_tracer().trace(trace_id), "batch.wait")
            assert len(waits) == 1


class TestCampaignPool:
    SPEC = CampaignSpec(
        name="trace-test",
        figures=("F8",),
        pareto=(ParetoTask(workload="mmm", f=0.99, node_nm=22),),
    )

    def _run_campaign(self, tmp_path, executor, workers=2):
        get_tracer().clear()
        runner = CampaignRunner(
            store=ResultStore(tmp_path),
            executor=executor,
            workers=workers,
            backoff_base_s=0.0,
        )
        report = runner.run(self.SPEC)
        assert report.ok
        return get_tracer().spans()

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_one_trace_covers_run_and_every_task(
        self, tmp_path, executor
    ):
        spans = self._run_campaign(tmp_path, executor)
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["campaign.run"]
        root = roots[0]
        assert root["attributes"]["executed"] == 3

        tasks = _by_name(spans, "campaign.task")
        assert len(tasks) == 3
        for task in tasks:
            assert task["trace_id"] == root["trace_id"]
            assert task["parent_id"] == root["span_id"]
            assert task["attributes"]["status"] == "executed"
            assert task["attributes"]["attempts"] == 1

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_tasks_expose_queue_wait(self, tmp_path, executor):
        spans = self._run_campaign(tmp_path, executor)
        for task in _by_name(spans, "campaign.task"):
            wait_ms = task["attributes"]["queue_wait_ms"]
            assert wait_ms >= 0
            # Backdating rebased the span to its submit instant, so
            # its duration covers at least the measured queue wait.
            assert task["duration_ms"] >= wait_ms

    def test_store_writes_nest_under_their_task(self, tmp_path):
        spans = self._run_campaign(tmp_path, "serial")
        lookup = _lookup(spans)
        writes = _by_name(spans, "campaign.store.serialize")
        assert len(writes) == 3
        for write in writes:
            assert lookup[write["parent_id"]]["name"] == "campaign.task"

    def test_cached_rerun_settles_without_reexecution(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CampaignRunner(
            store=store, executor="serial", backoff_base_s=0.0
        )
        runner.run(self.SPEC)
        get_tracer().clear()
        report = runner.run(self.SPEC)
        assert (report.executed, report.cached) == (0, 3)
        spans = get_tracer().spans()
        tasks = _by_name(spans, "campaign.task")
        assert {t["attributes"]["status"] for t in tasks} == {"cached"}
        assert not _by_name(spans, "campaign.store.serialize")


class TestJobsAdoptRequestTraces:
    def test_job_campaign_spans_join_the_submitting_trace(
        self, tmp_path
    ):
        get_tracer().clear()
        supplied = new_trace_id()
        body = json.dumps({"figures": ["F8"]}).encode()

        async def main():
            service = ModelService(
                ServiceConfig(
                    store_dir=str(tmp_path), drain_timeout_s=5.0
                )
            )
            try:
                status, payload, headers = (
                    await service.handle_request(
                        "POST", "/v1/jobs", body,
                        {"x-request-id": supplied},
                    )
                )
                assert status == 202
                job_id = payload["job_id"]
                for _ in range(1500):
                    _s, payload = await service.handle(
                        "GET", f"/v1/jobs/{job_id}"
                    )
                    if payload["state"] in ("succeeded", "failed"):
                        return payload, headers
                    await asyncio.sleep(0.02)
                raise AssertionError(f"job never settled: {payload}")
            finally:
                service.close()

        payload, headers = _run(main())
        assert payload["state"] == "succeeded"
        assert payload["trace_id"] == supplied
        assert headers["X-Trace-Id"] == supplied

        trace = get_tracer().trace(supplied)
        names = {s["name"] for s in trace}
        # The submitting HTTP request, the job's campaign run, and
        # its tasks all share the client's trace id.
        assert {"http.request", "campaign.run", "campaign.task"} <= names
        run = _by_name(trace, "campaign.run")[0]
        lookup = _lookup(trace)
        # campaign.run is parented inside the job span chain, which
        # itself descends from the submitting request's root span.
        node = run
        hops = 0
        while node["parent_id"] is not None:
            node = lookup[node["parent_id"]]
            hops += 1
            assert hops < 10, "parent chain does not terminate"
        assert node["name"] == "http.request"
