"""Successive halving: exact front at a fraction of the evaluations.

The ISSUE acceptance criterion is asserted here verbatim: on a
config space of >= 1000 points, halving reaches the *same* Pareto
front as the exhaustive sweep while fully evaluating <= 25% of the
configs.
"""

import pytest

from repro.dse.dsl import ChipSpec, DSEScenario, SegmentSpec
from repro.dse.engine import exhaustive_sweep, expand_configs
from repro.dse.front import pareto_front
from repro.dse.halving import successive_halving
from repro.errors import ModelError

#: >= 1000 configs: 5 chips x 4 f x 5 nodes x 5 area x 2 power.
AREA_GRID = (0.25, 0.5, 1.0, 2.0, 4.0)
POWER_GRID = (0.5, 1.0)


class TestAcceptance:
    def test_halving_front_equals_exhaustive_on_1000_configs(self):
        scenario = DSEScenario(name="accept")
        configs = expand_configs(scenario, AREA_GRID, POWER_GRID)
        assert len(configs) >= 1000

        points, infeasible = exhaustive_sweep(configs)
        exhaustive_front = pareto_front(points)

        result = successive_halving(
            scenario,
            area_scale_grid=AREA_GRID,
            power_scale_grid=POWER_GRID,
        )
        assert result.n_configs == len(configs)
        assert result.n_infeasible == infeasible
        # exactly the exhaustive front, point for point (same floats,
        # same canonical order)
        assert list(result.front) == exhaustive_front
        # ... at <= 25% of the full-fidelity evaluations
        assert result.full_evaluations <= 0.25 * len(configs)
        assert result.full_eval_fraction <= 0.25

    @pytest.mark.parametrize(
        "provider", ["ginosar-sqrtm", "yavits"]
    )
    def test_exactness_holds_under_alternative_providers(
        self, provider
    ):
        scenario = DSEScenario(
            name=f"alt-{provider}",
            provider=provider,
            f_values=(0.9, 0.999),
        )
        grids = ((0.5, 1.0, 2.0), (1.0,))
        points, _ = exhaustive_sweep(
            expand_configs(scenario, *grids)
        )
        result = successive_halving(
            scenario,
            area_scale_grid=grids[0],
            power_scale_grid=grids[1],
        )
        assert list(result.front) == pareto_front(points)

    def test_exactness_holds_for_multi_ucore_chips(self):
        scenario = DSEScenario(
            name="multi",
            f_values=(0.99,),
            chips=(
                ChipSpec(kind="single", device="ASIC"),
                ChipSpec(
                    kind="multi",
                    segments=(
                        SegmentSpec(name="hot", weight=3.0,
                                    device="ASIC"),
                        SegmentSpec(name="simd", weight=1.0,
                                    device="GTX480"),
                    ),
                ),
            ),
        )
        grids = ((0.5, 1.0, 2.0), (0.5, 1.0))
        points, _ = exhaustive_sweep(
            expand_configs(scenario, *grids)
        )
        result = successive_halving(
            scenario,
            area_scale_grid=grids[0],
            power_scale_grid=grids[1],
        )
        assert list(result.front) == pareto_front(points)

    def test_all_points_match_exhaustive_not_just_the_front(self):
        """Class sharing reproduces every survivor bit-identically."""
        scenario = DSEScenario(name="pts", f_values=(0.99,))
        exhaustive = {
            p.config_id: p
            for p in exhaustive_sweep(expand_configs(scenario))[0]
        }
        result = successive_halving(scenario)
        for point in result.points:
            assert exhaustive[point.config_id] == point


class TestValidation:
    def test_rungs_must_increase(self):
        with pytest.raises(ModelError, match="strictly increasing"):
            successive_halving(
                DSEScenario(name="x"), rungs=(4, 2)
            )

    def test_rungs_bounded_by_r_max(self):
        with pytest.raises(ModelError, match="r_max"):
            successive_halving(
                DSEScenario(name="x"), rungs=(2, 32), r_max=16
            )

    def test_stats_are_consistent(self):
        result = successive_halving(
            DSEScenario(name="stats", f_values=(0.99,))
        )
        assert result.n_configs == 25
        assert result.full_evaluations <= result.n_classes
        assert 0.0 < result.full_eval_fraction <= 1.0
        assert len(result.points) + result.n_infeasible <= (
            result.n_configs
        )
