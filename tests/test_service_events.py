"""GET /v1/events end to end: lifecycle, replay, SSE, watch client.

Covers the streaming contract at every layer boundary: the in-process
endpoint (``ModelService.handle_request``), the chunked SSE transport
(a real asyncio server driven through the stdlib ``http.client``
consumer in :mod:`repro.service.watch`), and the renderer/exit-code
behaviour of ``repro-hetsim watch``.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.campaign.store import ResultStore
from repro.errors import ReproError
from repro.obs.stream import EventBus
from repro.service.app import ModelService, ServiceConfig
from repro.service.events import EventStreamResponse
from repro.service.http import start_server
from repro.service.watch import (
    SSEFrame,
    WatchState,
    _apply,
    _open_tail,
    iter_sse_frames,
    render_event,
    watch,
)

JOB_BODY = json.dumps({"figures": ["F8"]}).encode()


def run(coro):
    return asyncio.run(coro)


async def _submit(service, body=JOB_BODY):
    status, payload, _ = await service.handle_request(
        "POST", "/v1/jobs", body
    )
    assert status == 202, payload
    return payload


async def _wait_done(service, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, payload, _ = await service.handle_request(
            "GET", f"/v1/jobs/{job_id}", b""
        )
        assert status == 200
        if payload["state"] in ("succeeded", "failed"):
            return payload
        await asyncio.sleep(0.02)
    pytest.fail(f"job {job_id} did not settle")


async def _events(service, query):
    status, payload, _ = await service.handle_request(
        "GET", f"/v1/events?{query}", b""
    )
    return status, payload


class TestEventEndpoint:
    def test_campaign_lifecycle_is_one_stream_one_trace(self, tmp_path):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                accepted = await _submit(service)
                job_id = accepted["job_id"]
                # The live-tail position; racing the queued/started
                # events is fine, replay from 0 recovers everything.
                assert accepted["events_cursor"] >= 0
                await _wait_done(service, job_id)
                status, payload = await _events(
                    service, f"job_id={job_id}&cursor=0"
                )
                assert status == 200
                return payload
            finally:
                service.close()

        payload = run(scenario())
        kinds = [event["kind"] for event in payload["events"]]
        assert kinds[0] == "job.queued"
        assert kinds[1] == "job.started"
        assert kinds[-1] == "job.finished"
        assert kinds.count("task.settled") == 2
        assert payload["closed"] and payload["dropped"] == 0
        # One trace spans the whole streamed campaign; task events
        # carry their own span ids under it.
        trace_ids = {e["trace_id"] for e in payload["events"]}
        assert len(trace_ids) == 1
        settled = [
            e for e in payload["events"] if e["kind"] == "task.settled"
        ]
        assert all(e["span_id"] for e in settled)
        assert all(
            e["data"]["duration_ms"] > 0 for e in settled
        )

    def test_replay_from_cursor_zero_is_byte_identical(self, tmp_path):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                job_id = (await _submit(service))["job_id"]
                await _wait_done(service, job_id)
                _, first = await _events(
                    service, f"job_id={job_id}&cursor=0"
                )
                _, again = await _events(
                    service, f"job_id={job_id}&cursor=0"
                )
                _, suffix = await _events(
                    service, f"job_id={job_id}&cursor=3"
                )
                return first, again, suffix
            finally:
                service.close()

        first, again, suffix = run(scenario())
        assert first["lines"] == again["lines"]
        assert suffix["lines"] == first["lines"][3:]

    def test_job_payload_gains_cursor_and_task_percentiles(
        self, tmp_path
    ):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                job_id = (await _submit(service))["job_id"]
                return await _wait_done(service, job_id)
            finally:
                service.close()

        payload = run(scenario())
        assert payload["events_cursor"] == 5  # queued+started+2 tasks+done
        timing = payload["task_ms"]
        assert timing["count"] == 2
        assert (
            0 < timing["p50"] <= timing["p90"]
            <= timing["p99"] <= timing["max"]
        )

    def test_bad_requests_and_unknown_streams(self, tmp_path):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                results = [
                    await _events(service, "cursor=0"),
                    await _events(service, "stream=slo&cursor=x"),
                    await _events(service, "stream=slo&cursor=-4"),
                    await _events(service, "stream=nope"),
                    await _events(service, "stream=slo&limit=x"),
                ]
                return results
            finally:
                service.close()

        statuses = [status for status, _ in run(scenario())]
        assert statuses == [400, 400, 400, 404, 400]

    def test_slo_alerts_land_on_the_always_open_slo_stream(
        self, tmp_path
    ):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                # The tracker fires its hooks once per burn episode;
                # the service wires episodes onto the bus at startup.
                assert (
                    service._publish_slo_alert
                    in service.slo._alert_hooks
                )
                alert = {
                    "slo": "availability",
                    "status": "burning",
                    "burn_rate_fast": 20.0,
                }
                service._publish_slo_alert(alert)
                return await _events(service, "stream=slo&cursor=0")
            finally:
                service.close()

        status, payload = run(scenario())
        assert status == 200
        assert payload["events"][0]["kind"] == "slo.alert"
        assert payload["events"][0]["data"]["slo"] == "availability"

    def test_metrics_snapshot_counts_the_bus(self, tmp_path):
        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                job_id = (await _submit(service))["job_id"]
                await _wait_done(service, job_id)
                status, payload, _ = await service.handle_request(
                    "GET", "/metrics", b""
                )
                assert status == 200
                return payload
            finally:
                service.close()

        snapshot = run(scenario())
        events = snapshot["events"]
        assert events["published"] >= 5
        assert events["streams"] >= 2  # the job stream + "slo"


class TestDurableReplay:
    def test_store_backed_replay_survives_retention_trim(
        self, tmp_path
    ):
        """Cursor-0 replay is byte-identical even after the in-memory
        window trimmed: the ResultStore event log fills the prefix."""
        store = ResultStore(tmp_path)
        bus = EventBus(history_limit=2)
        bus.attach_store(
            "job-x",
            sink=lambda line: store.append_event_line("job-x", line),
            reader=lambda cursor: store.read_event_lines("job-x", cursor),
        )
        lines = [
            bus.publish("job-x", "k", data={"i": i}).line
            for i in range(8)
        ]
        replay = bus.read("job-x", 0)
        assert replay.dropped == 0
        assert [e.line for e in replay.events] == lines

    def test_replay_equals_live_tail(self, tmp_path):
        """A from-the-start listener and a post-hoc replayer see the
        same bytes -- the property the SSE contract advertises."""

        async def scenario():
            service = ModelService(ServiceConfig(store_dir=str(tmp_path)))
            try:
                accepted = await _submit(service)
                job_id = accepted["job_id"]
                live = EventStreamResponse(
                    service.events, job_id, cursor=0
                )
                live_lines = []
                async for frame in live.frames():
                    text = frame.decode()
                    if not text.startswith("id: "):
                        continue  # synthetic lagged/end frames
                    live_lines.append(
                        text.split("data: ", 1)[1].strip()
                    )
                await _wait_done(service, job_id)
                _, replay = await _events(
                    service, f"job_id={job_id}&cursor=0"
                )
                return live_lines, replay["lines"]
            finally:
                service.close()

        live_lines, replayed = run(scenario())
        live_payloads = [json.loads(line) for line in live_lines]
        assert all(
            "seq" in doc for doc in live_payloads
        )  # only sequenced frames collected
        assert live_lines == replayed


class TestBackpressure:
    def test_lagged_consumer_gets_one_lagged_frame_then_the_tail(self):
        """A bounded stream drops its oldest events rather than block
        the publisher; the consumer is told exactly what it missed."""
        bus = EventBus(history_limit=4)
        for i in range(20):
            bus.publish("s", "k", data={"i": i})
        bus.close("s")

        async def consume():
            response = EventStreamResponse(bus, "s", cursor=0)
            return [frame async for frame in response.frames()]

        frames = [f.decode() for f in run(consume())]
        assert frames[0].startswith("event: stream.lagged\n")
        lagged = json.loads(frames[0].split("data: ", 1)[1].strip())
        assert lagged["dropped"] == 16
        assert lagged["resume_cursor"] == 16
        assert [
            json.loads(f.split("data: ", 1)[1].strip())["seq"]
            for f in frames[1:-1]
        ] == [16, 17, 18, 19]
        assert frames[-1].startswith("event: stream.end\n")

    def test_publisher_never_blocks_on_a_stalled_consumer(self):
        bus = EventBus(history_limit=8)
        start = time.monotonic()
        for i in range(50_000):
            bus.publish("s", "k", data={"i": i})
        assert time.monotonic() - start < 30
        assert bus.read("s", 0, limit=1).events[0].seq == 50_000 - 8


class _LiveServer:
    """A real asyncio server in a thread; the watch client dials it."""

    def __init__(self, tmp_path):
        self.service = ModelService(
            ServiceConfig(store_dir=str(tmp_path))
        )
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.port = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )

    def start(self):
        self._thread.start()
        assert self._ready.wait(30), "server did not start"
        return self

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await start_server(self.service, port=0)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop.wait()
        server.close()
        await server.wait_closed()

    def request(self, method, path, body=b""):
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(method, path, body), self._loop
        )
        return future.result(60)

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)
        self.service.close()


@pytest.fixture()
def live_server(tmp_path):
    server = _LiveServer(tmp_path).start()
    yield server
    server.stop()


class TestSSETransport:
    def test_watch_tails_a_job_to_completion(self, live_server):
        status, accepted, _ = live_server.request(
            "POST", "/v1/jobs", JOB_BODY
        )
        assert status == 202
        job_id = accepted["job_id"]
        lines = []
        code = watch(
            f"http://127.0.0.1:{live_server.port}", job_id,
            emit=lines.append, timeout_s=60,
        )
        assert code == 0
        assert "queued" in lines[0]
        assert "finished succeeded" in lines[-1]

    def test_json_tail_is_byte_identical_to_batch_replay(
        self, live_server
    ):
        status, accepted, _ = live_server.request(
            "POST", "/v1/jobs", JOB_BODY
        )
        job_id = accepted["job_id"]
        tailed = []
        assert watch(
            f"http://127.0.0.1:{live_server.port}", job_id,
            as_json=True, emit=tailed.append, timeout_s=60,
        ) == 0
        status, replay, _ = live_server.request(
            "GET", f"/v1/events?job_id={job_id}&cursor=0"
        )
        assert status == 200
        assert tailed == replay["lines"]

    def test_disconnect_and_cursor_resume_is_a_byte_suffix(
        self, live_server
    ):
        status, accepted, _ = live_server.request(
            "POST", "/v1/jobs", JOB_BODY
        )
        job_id = accepted["job_id"]
        url = f"http://127.0.0.1:{live_server.port}"

        # First connection: take two frames, then hang up mid-stream.
        conn, response = _open_tail(url, job_id, 0, timeout_s=30)
        first, cursor = [], 0
        for frame in iter_sse_frames(response):
            first.append(frame)
            cursor = frame.seq + 1
            if len(first) == 2:
                break
        conn.close()

        # Resume from the cursor: the remainder, no gap, no duplicate.
        resumed = []
        conn, response = _open_tail(url, job_id, cursor, timeout_s=30)
        for frame in iter_sse_frames(response):
            if frame.kind == "stream.end":
                break
            resumed.append(frame)
        conn.close()

        status, replay, _ = live_server.request(
            "GET", f"/v1/events?job_id={job_id}&cursor=0"
        )
        stitched = [f.data for f in first] + [f.data for f in resumed]
        assert stitched == replay["lines"]
        assert [f.seq for f in first + resumed] == list(
            range(len(stitched))
        )

    def test_watch_unknown_stream_is_a_clean_error(self, live_server):
        with pytest.raises(ReproError, match="no-such-stream"):
            watch(
                f"http://127.0.0.1:{live_server.port}",
                "no-such-stream", timeout_s=10,
            )

    def test_watch_unreachable_server_is_a_clean_error(self):
        with pytest.raises(ReproError, match="cannot reach"):
            watch("http://127.0.0.1:1", "whatever", timeout_s=5)


class TestWatchRendering:
    def _frame(self, seq, event_kind, **data):
        doc = {"stream": "j", "seq": seq, "kind": event_kind, "unix": 0.0}
        if data:
            doc["data"] = data
        return SSEFrame(
            seq=seq, kind=event_kind,
            data=json.dumps(doc, sort_keys=True, separators=(",", ":")),
        )

    def test_failed_job_maps_to_exit_one(self):
        state = WatchState(stream="j")
        _apply(state, self._frame(0, "job.finished", state="failed"))
        assert state.finished and state.final_state == "failed"

    def test_progress_accumulates_across_kinds(self):
        state = WatchState(stream="j")
        frames = [
            self._frame(0, "job.queued", total=4),
            self._frame(1, "task.settled", status="executed", done=1,
                        total=4, kind="figure", duration_ms=1.5),
            self._frame(2, "dse.front", front_size=7, points=30),
            self._frame(3, "worker.respawn", worker="w2"),
            self._frame(
                4, "slo.alert", slo="availability", status="burning"
            ),
        ]
        rendered = []
        for frame in frames:
            _apply(state, frame)
            rendered.append(render_event(state, frame))
        assert state.total == 4 and state.done == 1
        assert state.front_size == 7
        assert state.respawns == 1
        assert state.burning == ["availability"]
        assert state.cursor == 5
        assert "queued 4 task(s)" in rendered[0]
        assert "1/4" in rendered[1]
        assert "front: 7" in rendered[2]
        assert "respawned" in rendered[3]
        assert "burning" in rendered[4]

    def test_lagged_frame_advances_the_resume_cursor(self):
        state = WatchState(stream="j")
        doc = {
            "stream": "j", "kind": "stream.lagged",
            "dropped": 9, "resume_cursor": 9,
        }
        frame = SSEFrame(
            seq=None, kind="stream.lagged",
            data=json.dumps(doc, sort_keys=True, separators=(",", ":")),
        )
        _apply(state, frame)
        assert state.dropped == 9
        assert state.cursor == 9
        assert "9 event(s)" in render_event(state, frame)
