"""Tests for the simulated device executor."""

import numpy as np
import pytest

from repro.errors import CalibrationError, ModelError
from repro.measure.devsim import SimulatedDevice, simulated_device


class TestConstruction:
    def test_factory(self):
        dev = simulated_device("GTX285")
        assert isinstance(dev, SimulatedDevice)
        assert dev.name == "GTX285"

    def test_unknown_device(self):
        from repro.errors import UnknownDeviceError

        with pytest.raises(UnknownDeviceError):
            simulated_device("GTX999")


class TestThroughputCurve:
    def test_mmm_matches_table4(self):
        curve = simulated_device("R5870").throughput_curve("mmm")
        assert curve["throughput"] == pytest.approx(1491.0)
        assert curve["unit"] == "GFLOP/s"

    def test_bs_matches_table4(self):
        curve = simulated_device("ASIC").throughput_curve("bs")
        assert curve["throughput"] == pytest.approx(25532.0)
        assert curve["unit"] == "Mopts/s"

    def test_fft_needs_size(self):
        with pytest.raises(ModelError):
            simulated_device("GTX285").throughput_curve("fft")

    def test_fft_out_of_measured_range(self):
        # The ASIC was only measured to 2^13.
        with pytest.raises(CalibrationError):
            simulated_device("ASIC").throughput_curve("fft", 2**16)

    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ModelError):
            simulated_device("GTX285").throughput_curve("fft", 1000)

    def test_unsupported_pair(self):
        with pytest.raises(CalibrationError):
            simulated_device("R5870").throughput_curve("bs")


class TestRun:
    def test_timing_follows_throughput(self):
        dev = simulated_device("GTX285")
        run = dev.run("fft", 1024, execute_kernel=False)
        expected_seconds = (5 * 1024 * 10) / (run.throughput * 1e9)
        assert run.seconds == pytest.approx(expected_seconds)

    def test_batch_scales_time_linearly(self):
        dev = simulated_device("GTX285")
        one = dev.run("fft", 1024, batch=1, execute_kernel=False)
        many = dev.run("fft", 1024, batch=64, execute_kernel=False)
        assert many.seconds == pytest.approx(64 * one.seconds)
        assert many.throughput == pytest.approx(one.throughput)

    def test_energy_is_power_times_time(self):
        run = simulated_device("ASIC").run("bs", 4096,
                                           execute_kernel=False)
        assert run.joules == pytest.approx(run.watts * run.seconds)

    def test_offchip_traffic_rate(self):
        # Compulsory bytes at the sustained rate: FFT-1024 = 0.32 B/flop.
        run = simulated_device("GTX480").run("fft", 1024,
                                             execute_kernel=False)
        assert run.offchip_gbps == pytest.approx(0.32 * run.throughput)

    def test_kernel_execution_produces_output(self, rng):
        run = simulated_device("Core i7-960").run("fft", 64, rng=rng)
        assert run.kernel.output is not None
        assert len(run.kernel.output) == 64

    def test_raw_watts_exceed_normalised_for_old_nodes(self):
        run = simulated_device("GTX285").run("fft", 1024,
                                             execute_kernel=False)
        assert run.raw_watts > run.watts  # 55nm device

    def test_raw_watts_equal_normalised_at_40nm(self):
        run = simulated_device("GTX480").run("fft", 1024,
                                             execute_kernel=False)
        assert run.raw_watts == pytest.approx(run.watts)

    def test_rejects_bad_batch(self):
        with pytest.raises(ModelError):
            simulated_device("ASIC").run("bs", 16, batch=0)


class TestAsMeasurement:
    def test_roundtrip_fields(self):
        run = simulated_device("LX760").run("mmm", 256,
                                            execute_kernel=False)
        m = run.as_measurement()
        assert m.device == "LX760"
        assert m.workload == "mmm"
        assert m.size is None  # MMM records carry no size
        assert m.throughput == pytest.approx(204.0)
        assert m.perf_per_mm2 == pytest.approx(0.53)

    def test_fft_measurement_keeps_size(self):
        run = simulated_device("GTX285").run("fft", 1024,
                                             execute_kernel=False)
        assert run.as_measurement().size == 1024
