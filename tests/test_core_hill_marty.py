"""Unit tests for repro.core.hill_marty speedup formulas."""

import math

import pytest

from repro.core.hill_marty import (
    check_resources,
    speedup_asymmetric,
    speedup_asymmetric_offload,
    speedup_dynamic,
    speedup_symmetric,
)
from repro.errors import ModelError


class TestCheckResources:
    def test_accepts_equal(self):
        check_resources(4.0, 4.0)

    def test_rejects_small_r(self):
        with pytest.raises(ModelError):
            check_resources(4.0, 0.5)

    def test_rejects_n_below_r(self):
        with pytest.raises(ModelError):
            check_resources(2.0, 4.0)


class TestSymmetric:
    def test_single_bce_chip_is_baseline(self):
        assert speedup_symmetric(0.5, 1, 1) == pytest.approx(1.0)

    def test_fully_serial_equals_perf_seq(self):
        assert speedup_symmetric(0.0, 16, 4) == pytest.approx(2.0)

    def test_fully_parallel_uses_all_cores(self):
        # n=16, r=4: 4 cores of perf 2 -> aggregate 8.
        assert speedup_symmetric(1.0, 16, 4) == pytest.approx(8.0)

    def test_hill_marty_formula_exact(self):
        f, n, r = 0.9, 64, 4
        expected = 1.0 / (
            (1 - f) / math.sqrt(r) + f / ((n / r) * math.sqrt(r))
        )
        assert speedup_symmetric(f, n, r) == pytest.approx(expected)

    def test_bce_sea_matches_classic_amdahl(self):
        # r=1: n BCE cores, classic Amdahl with s=n.
        f, n = 0.95, 256
        assert speedup_symmetric(f, n, 1) == pytest.approx(
            1.0 / ((1 - f) + f / n)
        )

    def test_custom_perf_law(self):
        # Linear perf law turns symmetric into perfect scaling.
        assert speedup_symmetric(
            1.0, 16, 4, perf_seq=lambda r: r
        ) == pytest.approx(16.0)


class TestAsymmetric:
    def test_fast_core_helps_in_parallel(self):
        f, n, r = 0.9, 64, 4
        expected = 1.0 / (
            (1 - f) / 2.0 + f / (2.0 + 60.0)
        )
        assert speedup_asymmetric(f, n, r) == pytest.approx(expected)

    def test_beats_offload_variant(self):
        # Keeping the fast core on during parallel sections is a strict
        # performance win (it is a power loss, handled elsewhere).
        f, n, r = 0.9, 64, 4
        assert speedup_asymmetric(f, n, r) > speedup_asymmetric_offload(
            f, n, r
        )

    def test_all_serial(self):
        assert speedup_asymmetric(0.0, 64, 9) == pytest.approx(3.0)


class TestAsymmetricOffload:
    def test_paper_formula_exact(self):
        f, n, r = 0.99, 32, 4
        expected = 1.0 / ((1 - f) / 2.0 + f / 28.0)
        assert speedup_asymmetric_offload(f, n, r) == pytest.approx(
            expected
        )

    def test_serial_only_returns_perf_seq(self):
        assert speedup_asymmetric_offload(0.0, 4, 4) == pytest.approx(2.0)

    def test_needs_parallel_resources(self):
        with pytest.raises(ModelError):
            speedup_asymmetric_offload(0.5, 4, 4)

    def test_more_bces_always_help(self):
        s1 = speedup_asymmetric_offload(0.9, 32, 4)
        s2 = speedup_asymmetric_offload(0.9, 64, 4)
        assert s2 > s1


class TestDynamic:
    def test_serial_uses_all_resources(self):
        assert speedup_dynamic(0.0, 64, 1) == pytest.approx(8.0)

    def test_parallel_uses_all_bces(self):
        assert speedup_dynamic(1.0, 64, 1) == pytest.approx(64.0)

    def test_dominates_other_models(self):
        # The dynamic machine is an upper bound on the others for any
        # shared (f, n, r).
        f, n, r = 0.9, 64, 4
        dyn = speedup_dynamic(f, n, r)
        assert dyn >= speedup_symmetric(f, n, r)
        assert dyn >= speedup_asymmetric(f, n, r)
        assert dyn >= speedup_asymmetric_offload(f, n, r)


class TestValidation:
    @pytest.mark.parametrize("func", [
        speedup_symmetric,
        speedup_asymmetric,
        speedup_asymmetric_offload,
        speedup_dynamic,
    ])
    def test_rejects_bad_fraction(self, func):
        with pytest.raises(ModelError):
            func(1.5, 16, 2)

    @pytest.mark.parametrize("func", [
        speedup_symmetric,
        speedup_asymmetric,
        speedup_asymmetric_offload,
        speedup_dynamic,
    ])
    def test_rejects_n_below_r(self, func):
        with pytest.raises(ModelError):
            func(0.5, 2, 4)
