"""ResultStore: atomicity, content addressing, corruption handling."""

import json

import pytest

from repro._version import __version__
from repro.campaign.store import ResultStore

HASH_A = "a" * 64
HASH_B = "b" * 64

PAYLOAD = {"kind": "figure", "winner": {"design": "ASIC"},
           "values": [1.5, 2.25, None]}


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path)


class TestRoundTrip:
    def test_put_then_get(self, store):
        store.put(HASH_A, PAYLOAD)
        assert store.get(HASH_A) == PAYLOAD

    def test_missing_key_is_a_miss(self, store):
        assert store.get(HASH_A) is None
        assert store.stats().misses == 1

    def test_keys_are_sorted_hashes(self, store):
        store.put(HASH_B, PAYLOAD)
        store.put(HASH_A, PAYLOAD)
        assert store.keys() == [HASH_A, HASH_B]
        assert len(store) == 2

    def test_layout_shards_by_hash_prefix(self, store, tmp_path):
        path = store.put(HASH_A, PAYLOAD)
        assert path == (
            tmp_path / __version__ / HASH_A[:2] / f"{HASH_A}.json"
        )
        assert path.exists()

    def test_no_leftover_temp_files(self, store):
        store.put(HASH_A, PAYLOAD)
        leftovers = [
            p for p in store.directory.rglob("*.tmp")
        ]
        assert leftovers == []

    def test_contains_does_not_touch_counters(self, store):
        assert not store.contains(HASH_A)
        store.put(HASH_A, PAYLOAD)
        assert store.contains(HASH_A)
        assert store.stats().hits == 0
        assert store.stats().misses == 0


class TestVersionKeying:
    def test_results_are_keyed_on_model_version(self, tmp_path):
        old = ResultStore(tmp_path, model_version="0.9.0")
        new = ResultStore(tmp_path, model_version="1.0.0")
        old.put(HASH_A, PAYLOAD)
        # The same task hash under a newer model version is a miss:
        # an upgraded model never serves results computed by an old one.
        assert new.get(HASH_A) is None
        assert old.get(HASH_A) == PAYLOAD

    def test_default_version_is_the_package_version(self, store):
        assert store.model_version == __version__


class TestCorruption:
    def _entry_path(self, store):
        store.put(HASH_A, PAYLOAD)
        return store.path_for(HASH_A)

    @pytest.mark.parametrize("damage", [
        lambda raw: raw[: len(raw) // 2],          # truncated write
        lambda raw: raw.replace("ASIC", "ASID"),   # bit flip in result
        lambda raw: "not json at all",             # total garbage
        lambda raw: "[]",                          # wrong shape
    ])
    def test_damaged_entry_is_quarantined_miss(self, store, damage):
        path = self._entry_path(store)
        path.write_text(damage(path.read_text()))
        assert store.get(HASH_A) is None
        stats = store.stats()
        assert stats.corrupt == 1
        assert stats.misses == 1
        # The bad file is gone, so a re-run re-executes and re-stores.
        assert not path.exists()
        store.put(HASH_A, PAYLOAD)
        assert store.get(HASH_A) == PAYLOAD

    def test_checksum_binds_result_to_hash(self, store):
        # An entry copied under a different hash is rejected: the
        # envelope names its own task hash.
        path = self._entry_path(store)
        other = store.path_for(HASH_B)
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_text(path.read_text())
        assert store.get(HASH_B) is None
        assert store.stats().corrupt == 1

    def test_wrong_embedded_version_is_rejected(self, store):
        path = self._entry_path(store)
        envelope = json.loads(path.read_text())
        envelope["model_version"] = "0.0.1"
        path.write_text(json.dumps(envelope))
        assert store.get(HASH_A) is None


class TestStats:
    def test_counters_track_every_operation(self, store):
        store.get(HASH_A)            # miss
        store.put(HASH_A, PAYLOAD)   # write
        store.get(HASH_A)            # hit
        store.get(HASH_A)            # hit
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes,
                stats.corrupt) == (2, 1, 1, 0)

    def test_stats_payload_is_json_ready(self, store):
        payload = store.stats_payload()
        assert sorted(payload) == ["corrupt", "hits", "misses", "writes"]
        json.dumps(payload)


class TestEphemeral:
    def test_ephemeral_store_creates_its_own_directory(self):
        store = ResultStore()
        assert store.is_ephemeral
        store.put(HASH_A, PAYLOAD)
        assert store.get(HASH_A) == PAYLOAD
        assert store.directory.is_dir()

    def test_flush_is_safe_before_and_after_writes(self, store):
        store.flush()
        store.put(HASH_A, PAYLOAD)
        store.flush()
