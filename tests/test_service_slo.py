"""The serving layer's SLO surface: ``GET /v1/slo``, the ``slo``
sections of both ``/metrics`` forms, and the ``/healthz`` payload
carrying SLO status without changing its readiness contract.
"""

import asyncio

from repro.obs.metrics import validate_prometheus
from repro.obs.slo import SLObjective, SLOTracker
from repro.service.app import ModelService, ServiceConfig


def _run(coro):
    return asyncio.run(coro)


def _service(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ModelService(ServiceConfig(**defaults))


def _request(method, path, body=b"", headers=None, **overrides):
    async def main():
        service = _service(**overrides)
        try:
            return await service.handle_request(method, path, body, headers)
        finally:
            service.close()

    return _run(main())


class TestSLOEndpoint:
    def test_slo_snapshot_shape(self):
        status, payload, _h = _request("GET", "/v1/slo")
        assert status == 200
        assert payload["status"] == "ok"
        names = {o["name"] for o in payload["objectives"]}
        assert {
            "availability",
            "speedup-latency",
            "sweep-latency",
            "optimize-latency",
        } <= names
        assert all("status" in o for o in payload["objectives"])
        assert payload["windows"]["fast_s"] > 0

    def test_slo_rejects_post(self):
        status, payload, _h = _request("POST", "/v1/slo")
        assert status == 405

    def test_requests_are_accounted(self):
        async def main():
            service = _service()
            try:
                await service.handle_request(
                    "POST", "/v1/speedup",
                    b'{"workload": "mmm", "f": 0.99, '
                    b'"design": "ASIC", "node_nm": 22}',
                )
                _s, payload, _h = await service.handle_request(
                    "GET", "/v1/slo"
                )
            finally:
                service.close()
            return payload

        payload = _run(main())
        by_name = {o["name"]: o for o in payload["objectives"]}
        accounted = by_name["availability"]
        assert accounted["events_good"] + accounted["events_bad"] >= 1

    def test_custom_objectives(self):
        status, payload, _h = _request(
            "GET", "/v1/slo",
            slo_objectives=(
                SLObjective(name="only", endpoint="*", target=0.9),
            ),
        )
        assert status == 200
        assert [o["name"] for o in payload["objectives"]] == ["only"]


class TestMetricsCarrySLO:
    def test_json_metrics_has_slo_section(self):
        status, payload, _h = _request("GET", "/metrics")
        assert status == 200
        assert payload["slo"]["status"] == "ok"
        assert payload["slo"]["objectives"]

    def test_prometheus_exposition_has_slo_families(self):
        async def main():
            service = _service()
            try:
                await service.handle_request("GET", "/healthz")
                _s, text, _h = await service.handle_request(
                    "GET", "/metrics?format=prom"
                )
            finally:
                service.close()
            return text

        text = _run(main())
        names = validate_prometheus(text, required=[
            "repro_slo_events_total",
            "repro_slo_error_budget_remaining",
            "repro_slo_burn_rate",
            "repro_slo_status",
        ])
        assert names


class TestHealthzContract:
    def test_payload_keeps_old_keys_and_adds_slo(self):
        # The pre-SLO healthz contract is pinned: consumers key on
        # these fields, so the new "slo" entry only ever adds.
        status, payload, _h = _request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        for key in ("status", "version", "uptime_s", "checks"):
            assert key in payload
        assert payload["slo"] == "ok"

    def test_burning_slo_does_not_degrade_readiness(self):
        async def main():
            service = _service()
            clock = {"now": 0.0}
            tracker = SLOTracker(
                objectives=(
                    SLObjective(
                        name="lat", endpoint="/v1/x", target=0.99,
                        latency_threshold_ms=100.0,
                    ),
                ),
                registry=service.registry,
                clock=lambda: clock["now"],
            )
            alerts = []
            tracker.add_alert_hook(alerts.append)
            service.slo = tracker
            try:
                for _ in range(10_000):
                    tracker.record("/v1/x", 0.01, error=False)
                clock["now"] = 3700.0
                for _ in range(50):
                    tracker.record("/v1/x", 5.0, error=False)
                health = await service.handle_request("GET", "/healthz")
                slo = await service.handle_request("GET", "/v1/slo")
            finally:
                service.close()
            return health, slo, alerts

        (h_status, h_payload, _), (s_status, s_payload, _), alerts = (
            _run(main())
        )
        # Burning means "stop deploying", not "stop routing": healthz
        # stays 200/ok while reporting the hot SLO.
        assert (h_status, h_payload["status"]) == (200, "ok")
        assert h_payload["slo"] == "burning"
        assert (s_status, s_payload["status"]) == (200, "burning")
        assert len(alerts) == 1
