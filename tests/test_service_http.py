"""Socket-level tests: real bytes through the asyncio HTTP transport.

Each test binds an ephemeral port, speaks raw HTTP/1.1 over an asyncio
stream client, and checks the wire behaviour (status lines, headers,
keep-alive, protocol errors) plus exact float round-tripping of served
results through the JSON body.
"""

import asyncio
import json

import pytest

from repro.service.app import ModelService, ServiceConfig
from repro.service.http import start_server


async def _serve():
    """An ephemeral-port server; returns (service, server, port)."""
    service = ModelService(ServiceConfig(batch_window_ms=0.5))
    server = await start_server(service, port=0)
    port = server.sockets[0].getsockname()[1]
    return service, server, port


async def _shutdown(service, server):
    server.close()
    await server.wait_closed()
    service.close()


def _request_bytes(method, path, body=None, close=False):
    payload = b"" if body is None else json.dumps(body).encode()
    head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
    if close:
        head += "Connection: close\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    return head.encode() + payload


async def _read_response(reader):
    """Parse one response: (status, headers, decoded-JSON body)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body)


async def _roundtrip(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    response = await _read_response(reader)
    writer.close()
    await writer.wait_closed()
    return response


class TestWire:
    def test_healthz_over_socket(self):
        async def main():
            service, server, port = await _serve()
            try:
                return await _roundtrip(
                    port, _request_bytes("GET", "/healthz", close=True)
                )
            finally:
                await _shutdown(service, server)

        status, headers, payload = asyncio.run(main())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert headers["connection"] == "close"
        assert payload["status"] == "ok"

    def test_speedup_floats_survive_the_wire(self):
        """JSON repr round-trips doubles exactly: the served speedup is
        bit-identical to the in-process engine result."""
        from repro.core.optimizer import optimize
        from repro.projection.designs import standard_designs
        from repro.projection.engine import node_budget
        from repro.itrs.scenarios import BASELINE

        body = {"workload": "fft", "f": 0.99, "design": "ASIC",
                "node_nm": 22}

        async def main():
            service, server, port = await _serve()
            try:
                return await _roundtrip(
                    port,
                    _request_bytes("POST", "/v1/speedup", body,
                                   close=True),
                )
            finally:
                await _shutdown(service, server)

        status, _, payload = asyncio.run(main())
        assert status == 200
        design = {
            d.short_label: d for d in standard_designs("fft", 1024)
        }["ASIC"]
        budget = node_budget(
            BASELINE.roadmap.node(22), "fft", 1024, BASELINE,
            bandwidth_exempt=design.bandwidth_exempt,
        )
        direct = optimize(design.chip, 0.99, budget)
        assert payload["point"]["speedup"] == direct.speedup

    def test_keep_alive_serves_two_requests(self):
        async def main():
            service, server, port = await _serve()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(_request_bytes("GET", "/healthz"))
                await writer.drain()
                first = await _read_response(reader)
                writer.write(_request_bytes("GET", "/metrics"))
                await writer.drain()
                second = await _read_response(reader)
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await _shutdown(service, server)

        first, second = asyncio.run(main())
        assert first[0] == 200
        assert first[1]["connection"] == "keep-alive"
        assert second[0] == 200
        # The second response is /metrics and saw the first request.
        assert second[2]["requests"]["/healthz"]["200"] == 1

    def test_malformed_request_line_400(self):
        async def main():
            service, server, port = await _serve()
            try:
                return await _roundtrip(port, b"NONSENSE\r\n\r\n")
            finally:
                await _shutdown(service, server)

        status, headers, payload = asyncio.run(main())
        assert status == 400
        assert payload["error"] == "ProtocolError"
        assert headers["connection"] == "close"

    def test_oversized_body_413(self):
        async def main():
            service, server, port = await _serve()
            try:
                raw = (
                    b"POST /v1/speedup HTTP/1.1\r\n"
                    b"Content-Length: 9999999\r\n\r\n"
                )
                return await _roundtrip(port, raw)
            finally:
                await _shutdown(service, server)

        status, _, payload = asyncio.run(main())
        assert status == 413
        assert "exceeds" in payload["message"]

    def test_unknown_route_404_over_socket(self):
        async def main():
            service, server, port = await _serve()
            try:
                return await _roundtrip(
                    port,
                    _request_bytes("GET", "/nope", close=True),
                )
            finally:
                await _shutdown(service, server)

        status, _, payload = asyncio.run(main())
        assert status == 404
        assert payload["error"] == "NotFoundError"

    def test_bad_json_body_400_over_socket(self):
        async def main():
            service, server, port = await _serve()
            try:
                raw = (
                    b"POST /v1/speedup HTTP/1.1\r\n"
                    b"Content-Length: 9\r\n"
                    b"Connection: close\r\n\r\n"
                    b"{not json"
                )
                return await _roundtrip(port, raw)
            finally:
                await _shutdown(service, server)

        status, _, payload = asyncio.run(main())
        assert status == 400
        assert payload["error"] == "BadRequestError"
