"""Unit tests for repro.core.constraints (Budget, BoundSet)."""

import math

import pytest

from repro.core.constraints import BoundSet, Budget, LimitingFactor
from repro.errors import ModelError


class TestBudget:
    def test_defaults(self):
        b = Budget(area=10.0, power=5.0)
        assert math.isinf(b.bandwidth)
        assert b.alpha == 1.75

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(area=0.0, power=1.0),
            dict(area=1.0, power=0.0),
            dict(area=1.0, power=1.0, bandwidth=0.0),
            dict(area=1.0, power=1.0, alpha=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            Budget(**kwargs)

    def test_without_bandwidth(self):
        b = Budget(area=10.0, power=5.0, bandwidth=3.0)
        lifted = b.without_bandwidth()
        assert math.isinf(lifted.bandwidth)
        assert lifted.area == b.area
        assert lifted.power == b.power
        assert b.bandwidth == 3.0  # original unchanged

    def test_scaled(self):
        b = Budget(area=10.0, power=5.0, bandwidth=4.0)
        s = b.scaled(area=2.0, power=0.5, bandwidth=3.0)
        assert s.area == pytest.approx(20.0)
        assert s.power == pytest.approx(2.5)
        assert s.bandwidth == pytest.approx(12.0)

    def test_scaled_keeps_infinite_bandwidth(self):
        b = Budget(area=10.0, power=5.0)
        assert math.isinf(b.scaled(bandwidth=2.0).bandwidth)

    def test_frozen(self):
        b = Budget(area=1.0, power=1.0)
        with pytest.raises(AttributeError):
            b.area = 5.0

    @pytest.mark.parametrize(
        "field", ["area", "power", "bandwidth", "alpha"]
    )
    def test_nan_rejected(self, field):
        # NaN slips through `<= 0` validation and, worse, breaks hash
        # reflexivity for the budget caches -- refuse it outright.
        kwargs = dict(area=10.0, power=5.0, bandwidth=3.0, alpha=1.75)
        kwargs[field] = math.nan
        with pytest.raises(ModelError, match="NaN"):
            Budget(**kwargs)

    def test_hashable_cache_key(self):
        a = Budget(area=10.0, power=5.0, bandwidth=3.0)
        b = Budget(area=10.0, power=5.0, bandwidth=3.0)
        c = Budget(area=10.0, power=5.0, bandwidth=4.0)
        assert hash(a) == hash(b)
        assert a == b
        assert len({a, b, c}) == 2


class TestBoundSet:
    def test_effective_is_minimum(self):
        bs = BoundSet(n_area=19.0, n_power=12.0, n_bandwidth=30.0)
        assert bs.n_effective == pytest.approx(12.0)

    def test_limiter_power(self):
        bs = BoundSet(n_area=19.0, n_power=12.0, n_bandwidth=30.0)
        assert bs.limiter is LimitingFactor.POWER

    def test_limiter_area(self):
        bs = BoundSet(n_area=10.0, n_power=12.0, n_bandwidth=30.0)
        assert bs.limiter is LimitingFactor.AREA

    def test_limiter_bandwidth(self):
        bs = BoundSet(n_area=19.0, n_power=12.0, n_bandwidth=8.0)
        assert bs.limiter is LimitingFactor.BANDWIDTH

    def test_tie_prefers_bandwidth(self):
        # A point on two ceilings reports the harder constraint.
        bs = BoundSet(n_area=10.0, n_power=10.0, n_bandwidth=10.0)
        assert bs.limiter is LimitingFactor.BANDWIDTH

    def test_tie_power_vs_area(self):
        bs = BoundSet(n_area=10.0, n_power=10.0, n_bandwidth=math.inf)
        assert bs.limiter is LimitingFactor.POWER

    def test_infinite_bandwidth_never_limits(self):
        bs = BoundSet(n_area=5.0, n_power=9.0, n_bandwidth=math.inf)
        assert bs.limiter is LimitingFactor.AREA

    @pytest.mark.parametrize(
        "field", ["n_area", "n_power", "n_bandwidth"]
    )
    def test_nan_rejected(self, field):
        kwargs = dict(n_area=1.0, n_power=2.0, n_bandwidth=3.0)
        kwargs[field] = math.nan
        with pytest.raises(ModelError, match="NaN"):
            BoundSet(**kwargs)

    def test_frozen_and_hashable(self):
        bs = BoundSet(n_area=1.0, n_power=2.0, n_bandwidth=3.0)
        with pytest.raises(AttributeError):
            bs.n_area = 9.0
        assert bs == BoundSet(n_area=1.0, n_power=2.0, n_bandwidth=3.0)
        assert hash(bs) == hash(
            BoundSet(n_area=1.0, n_power=2.0, n_bandwidth=3.0)
        )


class TestLimitingFactor:
    def test_figure_styles(self):
        assert "dashed" in LimitingFactor.POWER.figure_style
        assert "solid" in LimitingFactor.BANDWIDTH.figure_style
        assert "points" in LimitingFactor.AREA.figure_style

    def test_values_are_stable(self):
        # Figure annotations and CSV exports depend on these strings.
        assert LimitingFactor.AREA.value == "area"
        assert LimitingFactor.POWER.value == "power"
        assert LimitingFactor.BANDWIDTH.value == "bandwidth"
