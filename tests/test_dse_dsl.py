"""The DSE scenario DSL: validation, round-trips, bit-identity.

The tentpole differential test lives here: every builtin DSL scenario
must reproduce the registered :mod:`repro.itrs.scenarios` scenario
*bit-for-bit*, both structurally (equal roadmaps) and through the
projection engine (identical floats in every figure series).
"""

import json

import pytest

from repro.dse.dsl import (
    BUILTIN_SCENARIOS,
    ChipSpec,
    DSEScenario,
    SegmentSpec,
    builtin_scenario,
    builtin_scenario_names,
    list_scenario_files,
    load_scenario_file,
    scenario_summary,
)
from repro.errors import ModelError
from repro.itrs.scenarios import SCENARIO_OVERRIDES, SCENARIOS
from repro.projection.engine import project


class TestBuiltinBitIdentity:
    def test_builtins_cover_every_registered_scenario(self):
        assert set(BUILTIN_SCENARIOS) == set(SCENARIOS)
        assert set(BUILTIN_SCENARIOS) == set(SCENARIO_OVERRIDES)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_to_scenario_equals_registry(self, name):
        """Structural equality: same roadmap rows, same alpha."""
        rebuilt = builtin_scenario(name).to_scenario()
        registered = SCENARIOS[name]
        assert rebuilt.alpha == registered.alpha
        assert rebuilt.roadmap == registered.roadmap
        assert rebuilt == registered

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_projection_bit_for_bit(self, name):
        """The DSL scenario drives project() to identical floats."""
        via_dsl = project(
            "mmm", 0.99, builtin_scenario(name).to_scenario()
        )
        via_registry = project("mmm", 0.99, SCENARIOS[name])
        for s_dsl, s_reg in zip(via_dsl.series, via_registry.series):
            assert s_dsl.label == s_reg.label
            assert s_dsl.speedups() == s_reg.speedups()


class TestScenarioValidation:
    def test_unknown_field_is_named(self):
        with pytest.raises(ModelError, match="bandwidthh"):
            DSEScenario.from_payload(
                {"name": "x", "bandwidthh": 90.0}
            )

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({"name": ""}, "'name'"),
            ({"name": "x", "workload": "sort"}, "'workload'"),
            ({"name": "x", "fft_size": 64}, "'fft_size'"),
            (
                {"name": "x", "power_budget_w": -5},
                "'power_budget_w'",
            ),
            ({"name": "x", "area_factor": 0}, "'area_factor'"),
            ({"name": "x", "alpha": 0.5}, "'alpha'"),
            ({"name": "x", "provider": "magic"}, "'provider'"),
            ({"name": "x", "f_values": []}, "'f_values'"),
            ({"name": "x", "f_values": [1.5]}, "'f_values'"),
        ],
    )
    def test_errors_name_the_offending_field(self, payload, field):
        with pytest.raises(ModelError, match=field):
            DSEScenario.from_payload(payload)

    def test_chip_errors_name_the_offending_field(self):
        with pytest.raises(ModelError, match="'device'"):
            ChipSpec(kind="single", device="TPU")
        with pytest.raises(ModelError, match="'kind'"):
            ChipSpec(kind="hybrid")
        with pytest.raises(ModelError, match="'segments'"):
            ChipSpec(kind="multi")
        with pytest.raises(ModelError, match="'weight'"):
            SegmentSpec(name="k", weight=0.0)

    def test_segment_unknown_field(self):
        with pytest.raises(ModelError, match="speed"):
            DSEScenario.from_payload(
                {
                    "name": "x",
                    "chips": [
                        {
                            "kind": "multi",
                            "segments": [{"name": "k", "speed": 2}],
                        }
                    ],
                }
            )


class TestSerialisation:
    def test_payload_roundtrip(self):
        scenario = DSEScenario(
            name="rt",
            workload="fft",
            fft_size=1024,
            power_budget_w=60.0,
            provider="yavits",
            f_values=(0.9, 0.99),
            chips=(
                ChipSpec(kind="single", device="ASIC"),
                ChipSpec(
                    kind="multi",
                    segments=(
                        SegmentSpec(name="a", weight=2.0),
                        SegmentSpec(
                            name="b", weight=1.0, device="GTX480"
                        ),
                    ),
                ),
            ),
        )
        rebuilt = DSEScenario.from_payload(scenario.payload())
        assert rebuilt == scenario
        assert rebuilt.canonical() == scenario.canonical()

    def test_canonical_is_stable_json(self):
        a = builtin_scenario("baseline").canonical()
        b = DSEScenario.from_payload(
            json.loads(a)
        ).canonical()
        assert a == b


class TestScenarioFiles:
    def test_load_and_list(self, tmp_path):
        path = tmp_path / "mine.json"
        path.write_text(
            json.dumps(
                builtin_scenario("low-power").payload()
            )
        )
        (tmp_path / "notes.txt").write_text("ignored")
        loaded = load_scenario_file(str(path))
        assert loaded == builtin_scenario("low-power")
        assert list_scenario_files(str(tmp_path)) == [str(path)]

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(ModelError, match="nope.json"):
            load_scenario_file(str(tmp_path / "nope.json"))

    def test_bad_json_names_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError, match="broken.json"):
            load_scenario_file(str(path))

    def test_invalid_scenario_names_path_and_field(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "alpha": -1}))
        with pytest.raises(ModelError, match="bad.json.*alpha"):
            load_scenario_file(str(path))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ModelError, match="does not exist"):
            list_scenario_files(str(tmp_path / "void"))


class TestSummaries:
    def test_builtin_names_start_with_baseline(self):
        assert builtin_scenario_names()[0] == "baseline"

    def test_summary_shape(self):
        summary = scenario_summary(builtin_scenario("high-alpha"))
        assert summary["name"] == "high-alpha"
        assert summary["source"] == "builtin"
        assert summary["provider"] == "table1"
        assert summary["chips"]  # defaults to the five substrates
