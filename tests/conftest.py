"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core import (
    AsymmetricOffloadCMP,
    Budget,
    HeterogeneousChip,
    SymmetricCMP,
    UCore,
)


@pytest.fixture
def rng():
    """Deterministic random generator for kernel tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def basic_budget():
    """A small, all-constraints-finite budget."""
    return Budget(area=19.0, power=10.0, bandwidth=42.0)


@pytest.fixture
def roomy_budget():
    """A budget where nothing binds except area."""
    return Budget(area=64.0, power=1e9, bandwidth=1e9)


@pytest.fixture
def asic_like():
    """A custom-logic-flavoured U-core (fast, power-hungry per slice)."""
    return UCore(name="asic-like", mu=500.0, phi=5.0, kind="asic")


@pytest.fixture
def gpu_like():
    """A GPU-flavoured U-core (moderate speed, cheap power)."""
    return UCore(name="gpu-like", mu=3.0, phi=0.6, kind="gpu")


@pytest.fixture
def sym_chip():
    return SymmetricCMP()


@pytest.fixture
def asym_chip():
    return AsymmetricOffloadCMP()


@pytest.fixture
def het_chip(gpu_like):
    return HeterogeneousChip(gpu_like)
