"""Graceful shutdown: drain in-flight requests, flush the store.

``serve_until`` is exercised in-process (stop event, connection
draining); the SIGTERM path is exercised end-to-end against a real
``repro-hetsim serve`` subprocess.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

from repro.service.app import ModelService, ServiceConfig
from repro.service.http import serve_until


def _request_bytes(method, path, body=b""):
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    return head.encode() + body


async def _read_response(reader):
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    payload = json.loads(await reader.readexactly(length))
    return status, payload


async def _free_port() -> int:
    probe = await asyncio.start_server(
        lambda r, w: None, "127.0.0.1", 0
    )
    port = probe.sockets[0].getsockname()[1]
    probe.close()
    await probe.wait_closed()
    return port


class TestServeUntil:
    def test_stop_event_closes_service_and_flushes_store(self, tmp_path):
        service = ModelService(
            ServiceConfig(store_dir=str(tmp_path), drain_timeout_s=1.0)
        )

        async def main():
            stop = asyncio.Event()
            ready = asyncio.Event()
            task = asyncio.create_task(
                serve_until(service, stop, port=0, ready=ready)
            )
            await ready.wait()
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())
        # The shutdown path ran service.close(): the job manager is
        # closed, so new submissions are refused.
        from repro.campaign.spec import CampaignSpec
        import pytest

        with pytest.raises(RuntimeError, match="closed"):
            service.jobs.submit(CampaignSpec(figures=("F8",)))

    def test_inflight_request_drains_before_exit(self, tmp_path):
        service = ModelService(
            ServiceConfig(store_dir=str(tmp_path), drain_timeout_s=5.0)
        )
        results = {}

        async def main():
            stop = asyncio.Event()
            ready = asyncio.Event()
            port = await _free_port()
            task = asyncio.create_task(
                serve_until(service, stop, port=port, ready=ready)
            )
            await ready.wait()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            body = json.dumps(
                {"workload": "mmm", "f": 0.99, "design": "ASIC"}
            ).encode()
            writer.write(_request_bytes("POST", "/v1/speedup", body))
            await writer.drain()
            # Trigger shutdown while the response is (potentially)
            # still in flight; the drain phase must still answer it.
            stop.set()
            status, payload = await _read_response(reader)
            results["status"] = status
            results["payload"] = payload
            writer.close()
            await asyncio.wait_for(task, timeout=10)
            # After shutdown the port no longer accepts connections.
            try:
                _, w2 = await asyncio.open_connection("127.0.0.1", port)
            except OSError:
                results["port_closed"] = True
            else:
                w2.close()
                results["port_closed"] = False

        asyncio.run(main())
        assert results["status"] == 200
        assert results["payload"]["point"]["speedup"] > 1
        assert results["port_closed"]


class TestSignalPath:
    def test_sigterm_exits_cleanly_end_to_end(self, tmp_path):
        """A real `repro-hetsim serve` process drains on SIGTERM."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--store-dir", str(tmp_path / "store"),
                "--drain-timeout-s", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # Wait for the structured "listening" line, then SIGTERM.
            deadline = time.monotonic() + 30
            first = proc.stdout.readline()
            assert time.monotonic() < deadline
            assert json.loads(first)["event"] == "listening"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        events = [
            json.loads(line)["event"]
            for line in out.splitlines()
            if line.strip().startswith("{")
        ]
        assert "draining" in events
        assert "shutdown" in events
        assert proc.returncode == 0
