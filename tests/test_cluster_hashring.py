"""Shard-key and rendezvous-hashing properties (repro.cluster.hashring)."""

import json

from repro.cluster.hashring import (
    rendezvous_owner,
    rendezvous_rank,
    shard_key,
    spread,
)

WORKERS = ["w1", "w2", "w3", "w4"]


class TestShardKey:
    def test_model_endpoint_keys_on_locality_fields(self):
        body = json.dumps(
            {"workload": "mmm", "f": 0.99, "design": "GTX480"}
        ).encode()
        key = shard_key("/v1/speedup", body)
        assert key is not None
        assert "mmm" in key and "GTX480" in key and "/v1/speedup" in key

    def test_key_is_order_insensitive(self):
        a = json.dumps({"workload": "mmm", "f": 0.5, "design": "ASIC"})
        b = json.dumps({"design": "ASIC", "f": 0.5, "workload": "mmm"})
        assert shard_key("/v1/speedup", a.encode()) == shard_key(
            "/v1/speedup", b.encode()
        )

    def test_node_nm_never_splits_a_sweep(self):
        """A node sweep for one design must stay on one worker so the
        micro-batcher can still coalesce it into one grid call."""
        keys = {
            shard_key(
                "/v1/speedup",
                json.dumps(
                    {
                        "workload": "mmm",
                        "f": 0.99,
                        "design": "GTX480",
                        "node_nm": node,
                    }
                ).encode(),
            )
            for node in (90, 65, 45, 40, 32, 22)
        }
        assert len(keys) == 1

    def test_different_designs_get_different_keys(self):
        def key(design):
            return shard_key(
                "/v1/speedup",
                json.dumps(
                    {"workload": "mmm", "f": 0.99, "design": design}
                ).encode(),
            )

        assert key("GTX480") != key("ASIC")

    def test_unparseable_body_routes_anywhere(self):
        assert shard_key("/v1/speedup", b"{not json") is None
        assert shard_key("/v1/speedup", b"\xff\xfe") is None

    def test_non_object_body_routes_anywhere(self):
        assert shard_key("/v1/speedup", b"[1, 2]") is None

    def test_job_submission_keys_on_whole_body(self):
        spec_a = json.dumps({"name": "a", "figures": ["F6"]}).encode()
        spec_b = json.dumps({"name": "b", "figures": ["F6"]}).encode()
        assert shard_key("/v1/jobs", spec_a) == shard_key(
            "/v1/jobs", spec_a
        )
        assert shard_key("/v1/jobs", spec_a) != shard_key(
            "/v1/jobs", spec_b
        )

    def test_unkeyed_path_returns_none(self):
        assert shard_key("/healthz", b"") is None
        assert shard_key("/v1/slo", b"") is None


class TestRendezvous:
    def test_owner_is_rank_head(self):
        for key in ("a", "b", "c", "zebra"):
            assert (
                rendezvous_owner(key, WORKERS)
                == rendezvous_rank(key, WORKERS)[0]
            )

    def test_rank_is_a_permutation(self):
        assert sorted(rendezvous_rank("key", WORKERS)) == sorted(WORKERS)

    def test_deterministic_across_input_order(self):
        assert rendezvous_rank("key", WORKERS) == rendezvous_rank(
            "key", list(reversed(WORKERS))
        )

    def test_owner_of_empty_fleet_is_none(self):
        assert rendezvous_owner("key", []) is None

    def test_removing_a_worker_only_remaps_its_keys(self):
        """The defining rendezvous property: keys owned by surviving
        workers keep their owner when one worker disappears."""
        keys = [f"key-{i}" for i in range(200)]
        before = {k: rendezvous_owner(k, WORKERS) for k in keys}
        survivors = [w for w in WORKERS if w != "w3"]
        for k in keys:
            if before[k] != "w3":
                assert rendezvous_owner(k, survivors) == before[k]

    def test_respawned_worker_reclaims_its_keys(self):
        keys = [f"key-{i}" for i in range(100)]
        before = {k: rendezvous_owner(k, WORKERS) for k in keys}
        after = {k: rendezvous_owner(k, list(WORKERS)) for k in keys}
        assert before == after

    def test_spread_is_roughly_balanced(self):
        counts = spread([f"key-{i}" for i in range(400)], WORKERS)
        assert sum(counts.values()) == 400
        for worker, count in counts.items():
            # 400 keys over 4 workers: each should get a real share.
            assert 40 <= count <= 180, (worker, counts)
