"""HTTP-facing observability: request-id echo, ``/v1/traces``,
readiness-aware ``/healthz``, the Prometheus exposition, and the
transport's handling of text payloads and response headers.
"""

import asyncio
import json

from repro.obs.context import new_trace_id
from repro.obs.metrics import validate_prometheus
from repro.obs.trace import get_tracer
from repro.service.app import ModelService, ServiceConfig
from repro.service.http import PROM_CONTENT_TYPE, _encode_response


def _run(coro):
    return asyncio.run(coro)


def _service(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ModelService(ServiceConfig(**defaults))


def _request(method, path, body=b"", headers=None, **overrides):
    async def main():
        service = _service(**overrides)
        try:
            return await service.handle_request(
                method, path, body, headers
            )
        finally:
            service.close()

    return _run(main())


class TestRequestIdEcho:
    def test_safe_id_is_echoed_verbatim(self):
        _s, _p, headers = _request(
            "GET", "/healthz", headers={"x-request-id": "req-42.A_b"}
        )
        assert headers["X-Request-Id"] == "req-42.A_b"
        # A plain request id is not a trace id; a fresh trace starts.
        assert headers["X-Trace-Id"] != "req-42.A_b"
        assert len(headers["X-Trace-Id"]) == 32

    def test_unsafe_id_is_replaced(self):
        for hostile in ("bad\r\nInjected: 1", "spaced out", "x" * 200):
            _s, _p, headers = _request(
                "GET", "/healthz", headers={"x-request-id": hostile}
            )
            assert headers["X-Request-Id"] != hostile
            assert len(headers["X-Request-Id"]) == 16

    def test_missing_id_gets_generated(self):
        _s, _p, headers = _request("GET", "/healthz")
        assert len(headers["X-Request-Id"]) == 16
        int(headers["X-Request-Id"], 16)

    def test_trace_shaped_id_becomes_the_trace(self):
        supplied = new_trace_id()
        _s, _p, headers = _request(
            "GET", "/healthz", headers={"x-request-id": supplied}
        )
        assert headers["X-Request-Id"] == supplied
        assert headers["X-Trace-Id"] == supplied

    def test_every_response_carries_both_headers(self):
        for method, path in (
            ("GET", "/healthz"),
            ("GET", "/metrics"),
            ("GET", "/nope"),
            ("POST", "/v1/speedup"),  # malformed body -> 400
        ):
            _s, _p, headers = _request(method, path)
            assert "X-Request-Id" in headers
            assert "X-Trace-Id" in headers


class TestTracesEndpoint:
    def test_filter_by_trace_id(self):
        get_tracer().clear()

        async def main():
            service = _service()
            try:
                _s, _p, first = await service.handle_request(
                    "GET", "/healthz"
                )
                await service.handle_request("GET", "/healthz")
                return await service.handle_request(
                    "GET",
                    f"/v1/traces?trace_id={first['X-Trace-Id']}",
                ), first
            finally:
                service.close()

        (status, payload, _h), first = _run(main())
        assert status == 200
        assert payload["count"] == 1
        span = payload["spans"][0]
        assert span["trace_id"] == first["X-Trace-Id"]
        assert span["name"] == "http.request"
        assert payload["buffer"]["capacity"] > 0

    def test_limit_keeps_newest(self):
        get_tracer().clear()

        async def main():
            service = _service()
            try:
                for _ in range(3):
                    await service.handle_request("GET", "/healthz")
                return await service.handle_request(
                    "GET", "/v1/traces?limit=2"
                )
            finally:
                service.close()

        status, payload, _h = _run(main())
        assert status == 200
        assert payload["count"] == 2

    def test_bad_limit_is_400(self):
        status, payload, _h = _request("GET", "/v1/traces?limit=soon")
        assert status == 400
        assert "limit" in payload["message"]

    def test_post_is_405(self):
        status, _p, _h = _request("POST", "/v1/traces")
        assert status == 405


class TestHealthzReadiness:
    def test_open_service_is_ready(self):
        status, payload, _h = _request("GET", "/healthz")
        assert status == 200
        assert payload["checks"] == {
            "store": True, "dispatcher": True,
        }

    def test_closed_service_degrades_to_503(self):
        async def main():
            service = _service()
            service.close()
            return await service.handle_request("GET", "/healthz")

        status, payload, _h = _run(main())
        assert status == 503
        assert payload["status"] == "degraded"
        assert payload["checks"]["store"] is False


class TestPrometheusEndpoint:
    def test_exposition_is_text_and_valid(self):
        async def main():
            service = _service()
            try:
                await service.handle_request(
                    "POST", "/v1/speedup",
                    json.dumps(
                        {"workload": "bs", "f": 0.9,
                         "design": "GTX285", "node_nm": 22}
                    ).encode(),
                )
                return await service.handle_request(
                    "GET", "/metrics?format=prom"
                )
            finally:
                service.close()

        status, payload, _h = _run(main())
        assert status == 200
        assert isinstance(payload, str)
        names = validate_prometheus(payload)
        assert "repro_service_requests_total" in names
        assert "repro_service_request_seconds_count" in names
        assert "repro_phase_seconds_count" in names
        assert 'endpoint="/v1/speedup"' in payload

    def test_default_format_stays_json(self):
        status, payload, _h = _request("GET", "/metrics")
        assert status == 200
        assert isinstance(payload, dict)
        assert "latency" in payload


class TestTransportEncoding:
    def test_str_payload_ships_as_prometheus_text(self):
        raw = _encode_response(200, "metric_total 1\n", True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"metric_total 1\n"
        assert (
            f"Content-Type: {PROM_CONTENT_TYPE}".encode() in head
        )

    def test_dict_payload_ships_as_json(self):
        raw = _encode_response(404, {"error": "x"}, False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"error": "x"}
        assert b"Content-Type: application/json" in head
        assert b"Connection: close" in head

    def test_extra_headers_are_emitted(self):
        raw = _encode_response(
            200, {}, True,
            {"X-Request-Id": "abc", "X-Trace-Id": "f" * 32},
        )
        head, _, _body = raw.partition(b"\r\n\r\n")
        assert b"X-Request-Id: abc" in head
        assert b"X-Trace-Id: " + b"f" * 32 in head
        assert b"Connection: keep-alive" in head
