"""Tests for the execution-timeline simulator (model cross-validation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget
from repro.core.energy import design_energy
from repro.core.optimizer import evaluate_design, optimize
from repro.core.ucore import UCore
from repro.errors import ModelError
from repro.sim.engine import ChipSimulator, WorkPhase


@pytest.fixture
def het_setup():
    chip = HeterogeneousChip(UCore(name="asic", mu=27.4, phi=0.79))
    budget = Budget(area=19.0, power=10.0, bandwidth=42.0)
    point = optimize(chip, 0.99, budget)
    return chip, point, budget


class TestCrossValidation:
    """Simulated wall-clock results equal the closed-form model."""

    @pytest.mark.parametrize("f", [0.0, 0.5, 0.9, 0.99, 0.999, 1.0])
    def test_speedup_matches_analytical(self, het_setup, f):
        chip, _, budget = het_setup
        point = optimize(chip, f, budget)
        sim = ChipSimulator(chip, point, budget)
        assert sim.run_fraction(f).speedup == pytest.approx(
            point.speedup, rel=1e-12
        )

    @pytest.mark.parametrize("f", [0.1, 0.5, 0.9, 0.99])
    def test_energy_matches_figure10_model(self, het_setup, f):
        chip, _, budget = het_setup
        point = optimize(chip, f, budget)
        for rel_power in (1.0, 0.25):
            sim = ChipSimulator(chip, point, budget, rel_power)
            trace = sim.run_fraction(f)
            expected = design_energy(
                chip, f, point.n, point.r,
                alpha=budget.alpha, rel_power=rel_power,
            )
            assert trace.total_energy == pytest.approx(
                expected, rel=1e-12
            )

    @pytest.mark.parametrize("chip_cls", [
        SymmetricCMP, AsymmetricOffloadCMP,
    ])
    def test_cmp_models_cross_validate(self, chip_cls):
        chip = chip_cls()
        budget = Budget(area=64.0, power=20.0, bandwidth=100.0)
        point = optimize(chip, 0.9, budget)
        sim = ChipSimulator(chip, point, budget)
        trace = sim.run_fraction(0.9)
        assert trace.speedup == pytest.approx(point.speedup, rel=1e-12)
        assert trace.total_energy == pytest.approx(
            design_energy(chip, 0.9, point.n, point.r), rel=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(
        f=st.floats(0.0, 1.0),
        mu=st.floats(0.5, 200.0),
        phi=st.floats(0.1, 5.0),
    )
    def test_cross_validation_property(self, f, mu, phi):
        chip = HeterogeneousChip(UCore(name="u", mu=mu, phi=phi))
        budget = Budget(area=37.0, power=13.3, bandwidth=60.0)
        point = optimize(chip, f, budget)
        trace = ChipSimulator(chip, point, budget).run_fraction(f)
        assert trace.speedup == pytest.approx(point.speedup, rel=1e-9)


class TestBandwidthStalls:
    def test_optimizer_points_never_stall(self, het_setup):
        # The bandwidth bound already clamps n, so resolved points run
        # at full duty cycle.
        chip, point, budget = het_setup
        trace = ChipSimulator(chip, point, budget).run_fraction(0.99)
        assert trace.stalled_time() == 0.0

    def test_overbuilt_fabric_stalls(self):
        # Hand-build a point with fabric beyond the bandwidth ceiling.
        chip = HeterogeneousChip(UCore(name="asic", mu=500.0, phi=1.0))
        generous = Budget(area=64.0, power=1e6, bandwidth=1e9)
        point = evaluate_design(chip, 0.99, generous, 2)
        tight = Budget(area=64.0, power=1e6, bandwidth=50.0)
        trace = ChipSimulator(chip, point, tight).run_fraction(0.99)
        assert trace.stalled_time() > 0
        parallel_event = [
            e for e in trace.events if not e.phase.serial
        ][0]
        assert parallel_event.throughput == pytest.approx(50.0)
        assert parallel_event.bandwidth_stalled

    def test_stall_reduces_power_via_duty_cycle(self):
        chip = HeterogeneousChip(UCore(name="asic", mu=500.0, phi=1.0))
        generous = Budget(area=64.0, power=1e6, bandwidth=1e9)
        point = evaluate_design(chip, 1.0, generous, 2)
        tight = Budget(area=64.0, power=1e6, bandwidth=50.0)
        trace = ChipSimulator(chip, point, tight).run_fraction(1.0)
        raw_power = chip.parallel_power(point.n, point.r, 1.75)
        assert trace.events[0].power < raw_power


class TestTraceStructure:
    def test_events_are_contiguous(self, het_setup):
        chip, point, budget = het_setup
        trace = ChipSimulator(chip, point, budget).run_fraction(0.9)
        assert trace.events[0].start == 0.0
        assert trace.events[1].start == pytest.approx(
            trace.events[0].end
        )
        assert trace.total_time == pytest.approx(trace.events[-1].end)

    def test_custom_phase_program(self, het_setup):
        chip, point, budget = het_setup
        sim = ChipSimulator(chip, point, budget)
        trace = sim.run(
            [
                WorkPhase(0.2, serial=True),
                WorkPhase(0.5, serial=False),
                WorkPhase(0.1, serial=True),
                WorkPhase(0.2, serial=False),
            ]
        )
        assert len(trace.events) == 4
        assert trace.baseline_time == pytest.approx(1.0)

    def test_average_and_peak_power(self, het_setup):
        chip, point, budget = het_setup
        trace = ChipSimulator(chip, point, budget).run_fraction(0.9)
        assert trace.average_power <= trace.peak_power
        assert trace.average_power > 0

    def test_zero_work_phases_skipped(self, het_setup):
        chip, point, budget = het_setup
        sim = ChipSimulator(chip, point, budget)
        trace = sim.run(
            [WorkPhase(0.0, serial=True), WorkPhase(1.0, serial=False)]
        )
        assert len(trace.events) == 1

    def test_validation(self, het_setup):
        chip, point, budget = het_setup
        sim = ChipSimulator(chip, point, budget)
        with pytest.raises(ModelError):
            sim.run([])
        with pytest.raises(ModelError):
            sim.run_fraction(1.5)
        with pytest.raises(ModelError):
            WorkPhase(-0.1, serial=True)
        with pytest.raises(ModelError):
            ChipSimulator(chip, point, budget, rel_power=0.0)

    def test_no_fabric_parallel_phase_rejected(self):
        chip = HeterogeneousChip(UCore(name="u", mu=3.0, phi=0.6))
        budget = Budget(area=8.0, power=1e9)
        point = evaluate_design(chip, 0.0, budget, 8)
        sim = ChipSimulator(chip, point, budget)
        with pytest.raises(ModelError):
            sim.run([WorkPhase(1.0, serial=False)])
