"""Tests for the projection engine and design lists."""

import math

import pytest

from repro.core.constraints import LimitingFactor
from repro.errors import ModelError
from repro.itrs.roadmap import ITRS_2009
from repro.itrs.scenarios import BASELINE, get_scenario
from repro.projection.designs import design_labels, standard_designs
from repro.projection.engine import (
    PAPER_F_VALUES,
    bandwidth_bce_units,
    node_budget,
    project,
)


class TestStandardDesigns:
    def test_mmm_has_all_seven(self):
        labels = design_labels("mmm")
        assert labels == [
            "(0) SymCMP", "(1) AsymCMP", "(2) LX760", "(3) GTX285",
            "(4) GTX480", "(5) R5870", "(6) ASIC",
        ]

    def test_fft_skips_r5870(self):
        labels = design_labels("fft", 1024)
        assert "(5) R5870" not in labels
        assert len(labels) == 6

    def test_bs_design_set(self):
        labels = design_labels("bs")
        assert labels == [
            "(0) SymCMP", "(1) AsymCMP", "(2) LX760", "(3) GTX285",
            "(6) ASIC",
        ]

    def test_asic_mmm_bandwidth_exempt(self):
        designs = {d.short_label: d for d in standard_designs("mmm")}
        assert designs["ASIC"].bandwidth_exempt
        assert not designs["R5870"].bandwidth_exempt

    def test_asic_fft_not_exempt(self):
        designs = {
            d.short_label: d for d in standard_designs("fft", 1024)
        }
        assert not designs["ASIC"].bandwidth_exempt

    def test_fft_needs_size(self):
        with pytest.raises(ModelError):
            standard_designs("fft")

    def test_unknown_workload(self):
        with pytest.raises(ModelError):
            standard_designs("spmv")

    def test_short_label(self):
        d = standard_designs("mmm")[6]
        assert d.label == "(6) ASIC"
        assert d.short_label == "ASIC"


class TestNodeBudget:
    def test_40nm_baseline_budget(self):
        node = ITRS_2009.node(40)
        budget = node_budget(node, "fft", 1024)
        assert budget.area == pytest.approx(19.0)
        assert budget.power == pytest.approx(10.0)
        assert budget.bandwidth == pytest.approx(41.86, rel=0.01)
        assert budget.alpha == 1.75

    def test_11nm_power_grows_4x(self):
        node = ITRS_2009.node(11)
        budget = node_budget(node, "fft", 1024)
        assert budget.power == pytest.approx(40.0)

    def test_bandwidth_exempt(self):
        node = ITRS_2009.node(40)
        budget = node_budget(node, "mmm", None, bandwidth_exempt=True)
        assert math.isinf(budget.bandwidth)

    def test_alpha_from_scenario(self):
        node = ITRS_2009.node(40)
        budget = node_budget(
            node, "fft", 1024, scenario=get_scenario("high-alpha")
        )
        assert budget.alpha == 2.25

    def test_bandwidth_units_scale_with_gbps(self):
        b1 = bandwidth_bce_units("fft", 1024, 180.0)
        b2 = bandwidth_bce_units("fft", 1024, 360.0)
        assert b2 == pytest.approx(2 * b1)

    def test_mmm_bandwidth_unit_value(self):
        assert bandwidth_bce_units("mmm", None, 180.0) == pytest.approx(
            84.85, rel=0.01
        )

    def test_bs_bandwidth_unit_value(self):
        assert bandwidth_bce_units("bs", None, 180.0) == pytest.approx(
            52.27, rel=0.01
        )


class TestProject:
    def test_result_structure(self):
        result = project("fft", 0.9)
        assert result.workload == "fft"
        assert result.fft_size == 1024  # defaulted
        assert result.f == 0.9
        assert result.scenario is BASELINE
        assert result.node_labels() == ITRS_2009.node_labels()
        assert len(result.series) == 6

    def test_speedups_grow_across_nodes(self):
        result = project("mmm", 0.99)
        for series in result.series:
            speedups = series.speedups()
            assert speedups == sorted(speedups), series.label

    def test_winner_is_asic(self):
        for workload in ("mmm", "bs"):
            result = project(workload, 0.99)
            assert result.winner().design.short_label == "ASIC"

    def test_by_label(self):
        result = project("bs", 0.5)
        assert set(result.by_label()) == {
            "SymCMP", "AsymCMP", "LX760", "GTX285", "ASIC",
        }

    def test_infeasible_cells_are_none(self):
        # Under the 10W scenario some designs cannot even power r=1
        # fabric... all designs should still produce a result object.
        result = project("fft", 0.99, get_scenario("low-power"))
        assert len(result.series) == 6

    def test_paper_f_values(self):
        assert PAPER_F_VALUES == (0.5, 0.9, 0.99, 0.999)

    def test_limiters_recorded(self):
        result = project("fft", 0.999)
        asic = result.by_label()["ASIC"]
        assert all(
            lim is LimitingFactor.BANDWIDTH for lim in asic.limiters()
        )
