"""Tests for the MMM workload: blocked kernel + traffic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.workloads.mmm import MMMWorkload, blocked_matmul


@pytest.fixture
def mmm():
    return MMMWorkload()


class TestBlockedMatmul:
    @pytest.mark.parametrize("n,block", [(4, 2), (16, 4), (100, 32),
                                         (129, 128), (64, 64)])
    def test_matches_numpy(self, n, block, rng):
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        ours = blocked_matmul(a, b, block)
        np.testing.assert_allclose(ours, a @ b, rtol=1e-3, atol=1e-3)

    def test_identity(self, rng):
        a = rng.standard_normal((32, 32)).astype(np.float32)
        np.testing.assert_allclose(
            blocked_matmul(a, np.eye(32, dtype=np.float32), 8),
            a,
            rtol=1e-6,
        )

    def test_non_square_shapes(self, rng):
        a = rng.standard_normal((10, 20)).astype(np.float32)
        b = rng.standard_normal((20, 6)).astype(np.float32)
        np.testing.assert_allclose(
            blocked_matmul(a, b, 7), a @ b, rtol=1e-4, atol=1e-4
        )

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ModelError):
            blocked_matmul(np.zeros((3, 4)), np.zeros((5, 3)))

    def test_rejects_vectors(self):
        with pytest.raises(ModelError):
            blocked_matmul(np.zeros(4), np.zeros((4, 4)))

    def test_rejects_bad_block(self):
        with pytest.raises(ModelError):
            blocked_matmul(np.zeros((4, 4)), np.zeros((4, 4)), block=0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 40),
        block=st.integers(1, 48),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_block_size_never_changes_result(self, n, block, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        np.testing.assert_allclose(
            blocked_matmul(a, b, block),
            blocked_matmul(a, b, max(n, 1)),
            rtol=1e-3,
            atol=1e-3,
        )


class TestTrafficModel:
    def test_flop_count(self, mmm):
        assert mmm.ops(128) == pytest.approx(2 * 128**3)

    def test_paper_footnote3_intensity(self, mmm):
        # Block 128 -> AI = 32 flops/byte = 0.03125 bytes/flop.
        assert mmm.arithmetic_intensity(2048) == pytest.approx(32.0)
        assert mmm.bytes_per_work_unit(2048) == pytest.approx(0.03125)

    def test_intensity_capped_by_problem_size(self, mmm):
        # Problems smaller than a tile get AI = N/4.
        assert mmm.arithmetic_intensity(64) == pytest.approx(16.0)

    def test_intensity_consistent_with_bytes(self, mmm):
        for n in (32, 128, 512, 2048):
            assert mmm.arithmetic_intensity(n) == pytest.approx(
                mmm.ops(n) / mmm.compulsory_bytes(n)
            )

    def test_bigger_block_cuts_traffic(self):
        small = MMMWorkload(block=32)
        large = MMMWorkload(block=256)
        assert large.compulsory_bytes(1024) < small.compulsory_bytes(1024)

    def test_single_tile_degenerates_to_one_read(self, mmm):
        # N <= block: read A and B once = 8 N^2 bytes.
        assert mmm.compulsory_bytes(64) == pytest.approx(8 * 64**2)

    def test_rejects_bad_block(self):
        with pytest.raises(ModelError):
            MMMWorkload(block=0)

    def test_rejects_bad_size(self, mmm):
        with pytest.raises(ModelError):
            mmm.ops(0)


class TestRun:
    def test_run_output_matches_reference(self, mmm):
        result = mmm.run(48)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((48, 48)).astype(np.float32)
        b = rng.standard_normal((48, 48)).astype(np.float32)
        np.testing.assert_allclose(
            result.output, a @ b, rtol=1e-3, atol=1e-3
        )

    def test_run_metadata(self, mmm, rng):
        result = mmm.run(16, rng)
        assert result.workload == "mmm"
        assert result.ops == mmm.ops(16)
        assert result.compulsory_bytes == mmm.compulsory_bytes(16)
