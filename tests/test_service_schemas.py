"""Request schema validation: strict parsing into frozen dataclasses."""

import json

import pytest

from repro.errors import BadRequestError
from repro.service.schemas import (
    OptimizeRequest,
    SpeedupRequest,
    SweepRequest,
    design_point_payload,
    parse_optimize,
    parse_speedup,
    parse_sweep,
)


class TestParseSpeedup:
    def test_defaults_applied(self):
        req = parse_speedup(
            {"workload": "fft", "f": 0.99, "design": "ASIC"}
        )
        assert req == SpeedupRequest(
            workload="fft", f=0.99, design="ASIC", node_nm=40,
            scenario="baseline", fft_size=1024, r_max=16,
        )

    def test_explicit_fields(self):
        req = parse_speedup(
            {
                "workload": "mmm", "f": 0.5, "design": "SymCMP",
                "node_nm": 22, "scenario": "low-power", "r_max": 8,
            }
        )
        assert req.node_nm == 22
        assert req.scenario == "low-power"
        assert req.r_max == 8
        assert req.fft_size is None

    def test_missing_required_fields(self):
        with pytest.raises(BadRequestError, match="workload"):
            parse_speedup({"f": 0.5, "design": "ASIC"})
        with pytest.raises(BadRequestError, match="'f'"):
            parse_speedup({"workload": "mmm", "design": "ASIC"})
        with pytest.raises(BadRequestError, match="design"):
            parse_speedup({"workload": "mmm", "f": 0.5})

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequestError, match="wrkload"):
            parse_speedup(
                {"wrkload": "mmm", "f": 0.5, "design": "ASIC"}
            )

    def test_unknown_workload(self):
        with pytest.raises(BadRequestError, match="spmv"):
            parse_speedup({"workload": "spmv", "f": 0.5, "design": "x"})

    def test_f_out_of_range(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(BadRequestError, match="fraction"):
                parse_speedup(
                    {"workload": "mmm", "f": bad, "design": "ASIC"}
                )

    def test_f_wrong_type(self):
        with pytest.raises(BadRequestError, match="number"):
            parse_speedup(
                {"workload": "mmm", "f": "0.5", "design": "ASIC"}
            )
        with pytest.raises(BadRequestError, match="number"):
            parse_speedup(
                {"workload": "mmm", "f": True, "design": "ASIC"}
            )

    def test_fft_size_only_for_fft(self):
        with pytest.raises(BadRequestError, match="fft_size"):
            parse_speedup(
                {
                    "workload": "mmm", "f": 0.5, "design": "ASIC",
                    "fft_size": 1024,
                }
            )

    def test_unknown_scenario(self):
        with pytest.raises(BadRequestError, match="utopia"):
            parse_speedup(
                {
                    "workload": "mmm", "f": 0.5, "design": "ASIC",
                    "scenario": "utopia",
                }
            )

    def test_r_max_must_be_positive_int(self):
        with pytest.raises(BadRequestError, match="r_max"):
            parse_speedup(
                {"workload": "mmm", "f": 0.5, "design": "ASIC",
                 "r_max": 0}
            )
        with pytest.raises(BadRequestError, match="r_max"):
            parse_speedup(
                {"workload": "mmm", "f": 0.5, "design": "ASIC",
                 "r_max": 2.5}
            )

    def test_body_must_be_object(self):
        with pytest.raises(BadRequestError, match="JSON object"):
            parse_speedup([1, 2, 3])


class TestParseSweepAndOptimize:
    def test_sweep_has_no_node(self):
        req = parse_sweep({"workload": "bs", "f": 0.9, "design": "ASIC"})
        assert req == SweepRequest(workload="bs", f=0.9, design="ASIC")
        with pytest.raises(BadRequestError, match="node_nm"):
            parse_sweep(
                {"workload": "bs", "f": 0.9, "design": "ASIC",
                 "node_nm": 22}
            )

    def test_optimize_node_defaults_to_none(self):
        req = parse_optimize({"workload": "mmm", "f": 0.999})
        assert req == OptimizeRequest(workload="mmm", f=0.999)
        assert req.node_nm is None

    def test_optimize_has_no_design_field(self):
        with pytest.raises(BadRequestError, match="design"):
            parse_optimize(
                {"workload": "mmm", "f": 0.9, "design": "ASIC"}
            )


class TestRequestDataclasses:
    def test_frozen_and_hashable(self):
        a = parse_speedup({"workload": "fft", "f": 0.99, "design": "ASIC"})
        b = parse_speedup({"workload": "fft", "f": 0.99, "design": "ASIC"})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
        with pytest.raises(Exception):
            a.f = 0.5

    def test_different_endpoints_never_collide(self):
        """A sweep and an optimize with equal fields are distinct keys."""
        sweep = SweepRequest(workload="mmm", f=0.9, design="ASIC")
        speedup = SpeedupRequest(workload="mmm", f=0.9, design="ASIC")
        assert sweep != speedup


class TestDesignPointPayload:
    def test_round_trips_floats_exactly(self, het_chip, basic_budget):
        from repro.core.optimizer import optimize

        point = optimize(het_chip, 0.99, basic_budget)
        payload = design_point_payload(point)
        decoded = json.loads(json.dumps(payload))
        assert decoded["speedup"] == point.speedup
        assert decoded["r"] == point.r
        assert decoded["n"] == point.n
        assert decoded["limiter"] == point.limiter.value

    def test_infinite_bound_serialises_null(self, het_chip):
        from repro.core.constraints import Budget
        from repro.core.optimizer import optimize

        point = optimize(het_chip, 0.9, Budget(area=16, power=1e9))
        payload = design_point_payload(point)
        assert payload["bounds"]["n_bandwidth"] is None
        json.dumps(payload)  # must stay strict-JSON serialisable
