"""docs/TUTORIAL.md regression: every number in the walk-through.

The tutorial derives one Figure 6 point by hand; if any calibration or
model change moves these values, the doc must be updated -- this test
is the tripwire.
"""

import pytest

from repro import HeterogeneousChip, optimize
from repro.core.constraints import LimitingFactor
from repro.devices import DEFAULT_BCE, ucore_for
from repro.itrs.roadmap import ITRS_2009
from repro.projection.engine import node_budget


class TestTutorialNumbers:
    def test_step0_units(self):
        assert DEFAULT_BCE.fast_core_r == 2
        assert DEFAULT_BCE.power_w == 10.0

    def test_step1_asic_parameters(self):
        asic = ucore_for("ASIC", "fft", 1024)
        assert round(asic.mu) == 489
        assert round(asic.phi, 2) == 4.96

    def test_step2_22nm_budgets(self):
        budget = node_budget(ITRS_2009.node(22), "fft", 1024)
        assert budget.area == 75.0
        assert budget.power == pytest.approx(20.0)
        assert budget.bandwidth == pytest.approx(54.4, abs=0.05)

    def test_step3_design_point(self):
        asic = ucore_for("ASIC", "fft", 1024)
        budget = node_budget(ITRS_2009.node(22), "fft", 1024)
        point = optimize(HeterogeneousChip(asic), f=0.99, budget=budget)
        assert point.r == 16
        assert point.n == pytest.approx(16.11, abs=0.01)
        assert point.speedup == pytest.approx(48.3, abs=0.05)
        assert point.limiter is LimitingFactor.BANDWIDTH
        # The hand formula: 1 / (0.01/4 + 0.99/B).
        manual = 1.0 / (0.01 / 4.0 + 0.99 / budget.bandwidth)
        assert point.speedup == pytest.approx(manual, rel=1e-9)

    def test_step4_gpu_ties_on_speedup(self):
        budget = node_budget(ITRS_2009.node(22), "fft", 1024)
        asic = optimize(
            HeterogeneousChip(ucore_for("ASIC", "fft", 1024)),
            f=0.99, budget=budget,
        )
        gpu = optimize(
            HeterogeneousChip(ucore_for("GTX285", "fft", 1024)),
            f=0.99, budget=budget,
        )
        assert gpu.speedup == pytest.approx(asic.speedup, rel=1e-9)

    def test_step4_energy_tiebreak(self):
        asic = ucore_for("ASIC", "fft", 1024)
        gpu = ucore_for("GTX285", "fft", 1024)
        asic_term = 0.99 * asic.phi / asic.mu
        gpu_term = 0.99 * gpu.phi / gpu.mu
        assert asic_term == pytest.approx(0.0100, abs=5e-4)
        assert gpu_term == pytest.approx(0.217, abs=5e-3)
        assert asic_term < gpu_term
