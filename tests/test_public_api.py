"""Smoke tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.devices", "repro.workloads",
        "repro.measure", "repro.itrs", "repro.projection",
        "repro.reporting", "repro.cli", "repro.units", "repro.errors",
        "repro.layout", "repro.sim", "repro.perf", "repro.service",
        "repro.campaign", "repro.dse",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestQuickstartFlow:
    def test_readme_quickstart(self):
        """The exact flow documented in the package docstring."""
        asic = repro.ucore_for("ASIC", "fft", 1024)
        chip = repro.HeterogeneousChip(asic)
        budget = repro.Budget(area=19, power=10, bandwidth=42)
        best = repro.optimize(chip, f=0.99, budget=budget)
        assert best.speedup > 30
        assert best.limiter is repro.LimitingFactor.BANDWIDTH
        assert "ASIC" in best.describe()

    def test_projection_flow(self):
        result = repro.project("mmm", 0.99)
        assert result.winner().design.short_label == "ASIC"

    def test_error_hierarchy(self):
        assert issubclass(repro.ModelError, repro.ReproError)
        assert issubclass(repro.CalibrationError, repro.ReproError)
        assert issubclass(repro.InfeasibleDesignError, repro.ReproError)
        assert issubclass(repro.UnknownDeviceError, KeyError)
