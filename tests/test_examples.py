"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "design_space_exploration",
        "bandwidth_wall",
        "energy_aware_design",
        "calibrate_your_accelerator",
        "mixed_chip",
        "parallelism_profiles",
        "execution_trace",
        "profile_regression",
    } <= names
