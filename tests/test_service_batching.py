"""Micro-batching dispatcher: coalescing, demux, and error paths.

The acceptance property is *bit-identical demultiplexing*: whatever
gets coalesced, each caller receives exactly the DesignPoint a direct
``optimize_batch(chip, f, [its budget])`` call would return.
"""

import asyncio

import pytest

from repro.core.constraints import Budget
from repro.errors import ModelError
from repro.itrs.scenarios import BASELINE
from repro.perf.batch import optimize_batch
from repro.projection.designs import standard_designs
from repro.projection.engine import node_budget
from repro.service.batching import MicroBatcher


def _mmm_designs():
    return {d.short_label: d for d in standard_designs("mmm")}


def _roadmap_budgets(design):
    return [
        node_budget(
            node, "mmm", None, BASELINE,
            bandwidth_exempt=design.bandwidth_exempt,
        )
        for node in BASELINE.roadmap.nodes
    ]


class TestCoalescing:
    def test_same_key_concurrent_requests_share_one_dispatch(self):
        design = _mmm_designs()["ASIC"]
        budgets = _roadmap_budgets(design)

        async def main():
            batcher = MicroBatcher(window_s=0.005)
            points = await asyncio.gather(
                *(
                    batcher.evaluate(design.chip, 0.99, b)
                    for b in budgets
                )
            )
            return batcher, points

        batcher, points = asyncio.run(main())
        assert batcher.dispatch_count == 1
        assert batcher.item_count == len(budgets)
        direct = optimize_batch(design.chip, 0.99, budgets)
        assert points == direct

    def test_zero_window_still_coalesces_one_tick(self):
        design = _mmm_designs()["ASIC"]
        budgets = _roadmap_budgets(design)

        async def main():
            batcher = MicroBatcher(window_s=0.0)
            await asyncio.gather(
                *(
                    batcher.evaluate(design.chip, 0.99, b)
                    for b in budgets
                )
            )
            return batcher

        batcher = asyncio.run(main())
        assert batcher.dispatch_count == 1

    def test_different_f_values_do_not_coalesce(self):
        design = _mmm_designs()["ASIC"]
        budget = _roadmap_budgets(design)[0]

        async def main():
            batcher = MicroBatcher(window_s=0.005)
            await asyncio.gather(
                batcher.evaluate(design.chip, 0.9, budget),
                batcher.evaluate(design.chip, 0.99, budget),
            )
            return batcher

        batcher = asyncio.run(main())
        assert batcher.dispatch_count == 2

    def test_different_chips_do_not_coalesce(self):
        designs = _mmm_designs()
        asic, sym = designs["ASIC"], designs["SymCMP"]
        budget = node_budget(BASELINE.roadmap.nodes[0], "mmm", None)

        async def main():
            batcher = MicroBatcher(window_s=0.005)
            points = await asyncio.gather(
                batcher.evaluate(asic.chip, 0.99, budget),
                batcher.evaluate(sym.chip, 0.99, budget),
            )
            return batcher, points

        batcher, points = asyncio.run(main())
        assert batcher.dispatch_count == 2
        assert points[0].label == "ASIC"
        assert points[1].label == "SymCMP"

    def test_requests_after_window_get_a_fresh_batch(self):
        design = _mmm_designs()["ASIC"]
        budget = _roadmap_budgets(design)[0]

        async def main():
            batcher = MicroBatcher(window_s=0.001)
            first = await batcher.evaluate(design.chip, 0.99, budget)
            second = await batcher.evaluate(design.chip, 0.99, budget)
            return batcher, first, second

        batcher, first, second = asyncio.run(main())
        assert batcher.dispatch_count == 2
        assert first == second


class TestDemux:
    def test_each_caller_gets_its_own_budget_result(self):
        """Interleave two designs x five nodes; nothing crosses wires."""
        designs = _mmm_designs()
        pairs = [
            (designs[label], b)
            for label in ("ASIC", "GTX285")
            for b in _roadmap_budgets(designs[label])
        ]

        async def main():
            batcher = MicroBatcher(window_s=0.005)
            return await asyncio.gather(
                *(
                    batcher.evaluate(d.chip, 0.999, b)
                    for d, b in pairs
                )
            )

        points = asyncio.run(main())
        for (design, budget), point in zip(pairs, points):
            direct = optimize_batch(design.chip, 0.999, [budget])[0]
            assert point == direct

    def test_infeasible_budget_yields_none(self):
        design = _mmm_designs()["ASIC"]
        tight = Budget(area=0.5, power=0.25, bandwidth=0.5)

        async def main():
            batcher = MicroBatcher(window_s=0.0)
            return await batcher.evaluate(design.chip, 0.99, tight)

        assert asyncio.run(main()) is None


class TestErrors:
    def test_model_error_propagates_to_every_caller(self):
        design = _mmm_designs()["ASIC"]
        budget = _roadmap_budgets(design)[0]

        async def main():
            batcher = MicroBatcher(window_s=0.005)
            results = await asyncio.gather(
                batcher.evaluate(design.chip, -1.0, budget),
                batcher.evaluate(design.chip, -1.0, budget),
                return_exceptions=True,
            )
            return batcher, results

        batcher, results = asyncio.run(main())
        assert batcher.dispatch_count == 0  # the flush failed
        assert all(isinstance(r, ModelError) for r in results)

    def test_pending_key_cleared_after_flush(self):
        design = _mmm_designs()["ASIC"]
        budget = _roadmap_budgets(design)[0]

        async def main():
            batcher = MicroBatcher(window_s=0.0)
            await batcher.evaluate(design.chip, 0.99, budget)
            return batcher.pending_keys()

        assert asyncio.run(main()) == []


class TestMetricsAccounting:
    def test_batch_sizes_recorded(self):
        from repro.service.metrics import ServiceMetrics

        design = _mmm_designs()["ASIC"]
        budgets = _roadmap_budgets(design)
        metrics = ServiceMetrics()

        async def main():
            batcher = MicroBatcher(window_s=0.005, metrics=metrics)
            await asyncio.gather(
                *(
                    batcher.evaluate(design.chip, 0.99, b)
                    for b in budgets
                )
            )

        asyncio.run(main())
        snap = metrics.snapshot()["batching"]
        assert snap["dispatches"] == 1
        assert snap["items"] == len(budgets)
        assert snap["efficiency"] == pytest.approx(len(budgets))
