"""Lease-file protocol for coordination-free campaign joins."""

import json
import os

import pytest

from repro.campaign.store import ResultStore
from repro.cluster.lease import Lease, LeaseManager, owner_fingerprint
from repro.obs.metrics import MetricsRegistry

HASH = "a" * 64


def _manager(tmp_path, **kwargs):
    registry = MetricsRegistry()
    store = ResultStore(directory=tmp_path, registry=registry)
    kwargs.setdefault("ttl_s", 10.0)
    return LeaseManager(store, **kwargs), store, registry


class TestClaim:
    def test_claim_creates_lease_file(self, tmp_path):
        manager, store, _ = _manager(tmp_path)
        assert manager.claim(HASH) is True
        path = manager.lease_path(HASH)
        assert path.exists()
        record = json.loads(path.read_text())
        assert record["task_hash"] == HASH
        assert record["owner"] == manager.owner
        assert record["seq"] == 0
        assert store.lease_stats() == {"claimed": 1}

    def test_second_claim_loses(self, tmp_path):
        first, _, _ = _manager(tmp_path)
        second, _, _ = _manager(tmp_path)
        assert first.claim(HASH) is True
        assert second.claim(HASH) is False
        assert first.read(HASH).owner == first.owner

    def test_owner_fingerprints_are_unique(self):
        assert owner_fingerprint() != owner_fingerprint()
        assert str(os.getpid()) in owner_fingerprint()


class TestRenewRelease:
    def test_renew_increments_seq(self, tmp_path):
        manager, store, _ = _manager(tmp_path)
        manager.claim(HASH)
        assert manager.renew(HASH) is True
        assert manager.renew(HASH) is True
        assert manager.read(HASH).seq == 2
        assert store.lease_stats()["renewed"] == 2

    def test_renew_refuses_foreign_lease(self, tmp_path):
        owner, _, _ = _manager(tmp_path)
        intruder, _, _ = _manager(tmp_path)
        owner.claim(HASH)
        assert intruder.renew(HASH) is False
        assert owner.read(HASH).seq == 0

    def test_release_removes_owned_lease_only(self, tmp_path):
        owner, store, _ = _manager(tmp_path)
        other, _, _ = _manager(tmp_path)
        owner.claim(HASH)
        other.release(HASH)  # not the owner: no-op
        assert owner.lease_path(HASH).exists()
        owner.release(HASH)
        assert not owner.lease_path(HASH).exists()
        assert store.lease_stats() == {"claimed": 1, "released": 1}

    def test_release_all(self, tmp_path):
        manager, _, _ = _manager(tmp_path)
        hashes = ["b" * 64, "c" * 64]
        for task_hash in hashes:
            manager.claim(task_hash)
        manager.release_all()
        for task_hash in hashes:
            assert not manager.lease_path(task_hash).exists()


class TestStaleness:
    def test_live_lease_is_never_stale_on_first_glance(self, tmp_path):
        clock = [0.0]
        owner, _, _ = _manager(tmp_path, ttl_s=1.0)
        observer, _, _ = _manager(
            tmp_path, ttl_s=1.0, clock=lambda: clock[0]
        )
        owner.claim(HASH)
        clock[0] = 100.0  # far beyond ttl, but first observation
        assert observer.is_stale(HASH) is False

    def test_unrenewed_lease_goes_stale(self, tmp_path):
        clock = [0.0]
        owner, _, _ = _manager(tmp_path, ttl_s=1.0)
        observer, _, _ = _manager(
            tmp_path, ttl_s=1.0, clock=lambda: clock[0]
        )
        owner.claim(HASH)
        assert observer.is_stale(HASH) is False  # starts the watch
        clock[0] = 0.5
        assert observer.is_stale(HASH) is False  # within ttl
        clock[0] = 1.5
        assert observer.is_stale(HASH) is True

    def test_heartbeat_resets_the_watch(self, tmp_path):
        clock = [0.0]
        owner, _, _ = _manager(tmp_path, ttl_s=1.0)
        observer, _, _ = _manager(
            tmp_path, ttl_s=1.0, clock=lambda: clock[0]
        )
        owner.claim(HASH)
        observer.is_stale(HASH)
        clock[0] = 0.9
        owner.renew(HASH)  # seq advances: fresh watch window
        clock[0] = 1.5
        assert observer.is_stale(HASH) is False
        clock[0] = 2.0
        assert observer.is_stale(HASH) is False  # 1.5 started new window
        clock[0] = 2.8
        assert observer.is_stale(HASH) is True

    def test_absent_lease_is_not_stale(self, tmp_path):
        observer, _, _ = _manager(tmp_path)
        assert observer.is_stale(HASH) is False


class TestTakeover:
    def test_takeover_of_stale_lease(self, tmp_path):
        clock = [0.0]
        owner, _, _ = _manager(tmp_path, ttl_s=1.0)
        observer, store, registry = _manager(
            tmp_path, ttl_s=1.0, clock=lambda: clock[0]
        )
        owner.claim(HASH)
        observer.is_stale(HASH)
        clock[0] = 2.0
        assert observer.takeover(HASH) is True
        assert observer.read(HASH).owner == observer.owner
        assert store.lease_stats() == {
            "claimed": 1, "expired": 1, "stolen": 1,
        }
        counter = registry.counter(
            "repro_campaign_store_events_total", ""
        )
        assert counter.value(result="lease_stolen") == 1.0

    def test_takeover_refuses_live_lease(self, tmp_path):
        owner, _, _ = _manager(tmp_path, ttl_s=60.0)
        observer, _, _ = _manager(tmp_path, ttl_s=60.0)
        owner.claim(HASH)
        observer.is_stale(HASH)
        assert observer.takeover(HASH) is False
        assert owner.read(HASH).owner == owner.owner

    def test_dispossessed_owner_notices_on_renew(self, tmp_path):
        clock = [0.0]
        owner, _, _ = _manager(tmp_path, ttl_s=1.0)
        observer, _, _ = _manager(
            tmp_path, ttl_s=1.0, clock=lambda: clock[0]
        )
        owner.claim(HASH)
        observer.is_stale(HASH)
        clock[0] = 2.0
        observer.takeover(HASH)
        assert owner.renew(HASH) is False


class TestMalformed:
    def test_malformed_lease_is_quarantined(self, tmp_path):
        manager, store, _ = _manager(tmp_path)
        manager.claim(HASH)
        manager.lease_path(HASH).write_bytes(b'{"truncated": ')
        assert manager.read(HASH) is None
        assert not manager.lease_path(HASH).exists()
        quarantined = list(manager.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert store.lease_stats()["quarantined"] == 1
        # The slot is claimable again.
        assert manager.claim(HASH) is True

    def test_missing_required_field_is_malformed(self, tmp_path):
        manager, _, _ = _manager(tmp_path)
        manager.directory.mkdir(parents=True, exist_ok=True)
        manager.lease_path(HASH).write_text(
            json.dumps({"task_hash": HASH, "owner": "x", "seq": 0})
        )  # no ttl_s
        assert manager.read(HASH) is None

    def test_lease_payload_round_trips(self):
        lease = Lease(
            task_hash=HASH, owner="me", pid=1, host="h", seq=3,
            claimed_unix=1.0, renewed_unix=2.0, ttl_s=5.0,
        )
        payload = lease.payload()
        assert payload["seq"] == 3 and payload["schema"] == 1

    def test_ttl_must_be_positive(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(directory=tmp_path, registry=registry)
        with pytest.raises(ValueError):
            LeaseManager(store, ttl_s=0.0)
