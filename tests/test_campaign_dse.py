"""DSE tasks through the campaign layer: specs, runner, resume.

Asserts the campaign-integration acceptance properties: DSE tasks are
content-addressed and resumable bit-identically, per-shard fronts
merge to the halving front, and the spec validates eagerly with
messages naming the offending field.
"""

import json

import pytest

from repro.campaign.runner import CampaignRunner, execute_task
from repro.campaign.spec import (
    CampaignSpec,
    MAX_DSE_CONFIGS,
    ParetoFrontTask,
    SuccessiveHalvingTask,
    task_hash,
)
from repro.campaign.store import ResultStore
from repro.dse.dsl import builtin_scenario
from repro.dse.front import merge_fronts, points_from_payload
from repro.errors import ModelError

SCENARIO_JSON = builtin_scenario("baseline").canonical()

SPEC = CampaignSpec(
    name="dse",
    dse_pareto=tuple(
        ParetoFrontTask(
            scenario_json=SCENARIO_JSON,
            area_scale_grid=(0.5, 1.0),
            shard=shard,
            shards=2,
        )
        for shard in range(2)
    ),
    dse_halving=(
        SuccessiveHalvingTask(
            scenario_json=SCENARIO_JSON,
            area_scale_grid=(0.5, 1.0),
        ),
    ),
)


def serial_runner(store, **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("backoff_base_s", 0.0)
    return CampaignRunner(store=store, **kwargs)


class TestSpecValidation:
    def test_empty_scenario_json_is_rejected(self):
        with pytest.raises(ModelError, match="scenario_json"):
            CampaignSpec(
                dse_pareto=(ParetoFrontTask(),)
            ).tasks()

    def test_invalid_scenario_json_names_the_field(self):
        bad = json.dumps({"name": "x", "provider": "magic"})
        with pytest.raises(ModelError, match="provider"):
            CampaignSpec(
                dse_pareto=(
                    ParetoFrontTask(scenario_json=bad),
                )
            ).tasks()

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"area_scale_grid": ()}, "area_scale_grid"),
            ({"area_scale_grid": (1.0, 0.5)}, "area_scale_grid"),
            ({"power_scale_grid": (-1.0,)}, "power_scale_grid"),
            ({"r_max": 0}, "r_max"),
            ({"shard": 2, "shards": 2}, "shard"),
            ({"shards": 0}, "shards"),
        ],
    )
    def test_grid_and_shard_validation(self, kwargs, field):
        task = ParetoFrontTask(
            scenario_json=SCENARIO_JSON, **kwargs
        )
        with pytest.raises(ModelError, match=field):
            CampaignSpec(dse_pareto=(task,)).tasks()

    @pytest.mark.parametrize(
        "rungs", [(4, 2), (0, 4), (2, 32), (2.5,)]
    )
    def test_rung_validation(self, rungs):
        task = SuccessiveHalvingTask(
            scenario_json=SCENARIO_JSON, rungs=rungs
        )
        with pytest.raises(ModelError, match="rungs"):
            CampaignSpec(dse_halving=(task,)).tasks()

    def test_config_space_bound(self):
        huge = tuple(float(i + 1) for i in range(400))
        task = ParetoFrontTask(
            scenario_json=SCENARIO_JSON,
            area_scale_grid=huge,
            power_scale_grid=huge,
        )
        assert 400 * 400 * 100 > MAX_DSE_CONFIGS
        with pytest.raises(ModelError, match="config space"):
            CampaignSpec(dse_pareto=(task,)).tasks()

    def test_payload_roundtrip_preserves_hashes(self):
        rebuilt = CampaignSpec.from_payload(SPEC.payload())
        assert rebuilt == SPEC
        assert rebuilt.spec_hash() == SPEC.spec_hash()
        assert [task_hash(t) for t in rebuilt.tasks()] == [
            task_hash(t) for t in SPEC.tasks()
        ]


class TestExecution:
    def test_shard_fronts_merge_to_the_halving_front(self, tmp_path):
        report = serial_runner(ResultStore(tmp_path)).run(SPEC)
        assert report.ok
        by_kind = {}
        for outcome in report.outcomes:
            by_kind.setdefault(outcome.task.kind, []).append(
                outcome.result
            )
        shard_fronts = [
            points_from_payload(r)
            for r in by_kind["dse-pareto"]
        ]
        merged = merge_fronts(shard_fronts)
        halving_front = points_from_payload(
            by_kind["dse-halving"][0]
        )
        assert merged == halving_front
        halving = by_kind["dse-halving"][0]
        assert halving["full_evaluations"] <= (
            0.25 * halving["n_configs"]
        )

    def test_pareto_shards_partition_the_space(self, tmp_path):
        report = serial_runner(ResultStore(tmp_path)).run(SPEC)
        shard_results = [
            o.result
            for o in report.outcomes
            if o.task.kind == "dse-pareto"
        ]
        total = sum(r["n_shard_configs"] for r in shard_results)
        assert total == shard_results[0]["n_configs"] == 200

    def test_resume_is_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        first = serial_runner(store).run(SPEC)
        second = CampaignRunner(
            store=ResultStore(tmp_path),
            executor="thread",
            workers=4,
            resume=True,
        ).run(SPEC)
        assert second.cached == len(SPEC.tasks())
        assert second.executed == 0
        a = json.dumps(
            [o.result for o in first.outcomes], sort_keys=True
        )
        b = json.dumps(
            [o.result for o in second.outcomes], sort_keys=True
        )
        assert a == b

    def test_execute_task_dispatches_both_kinds(self):
        pareto = execute_task(
            ParetoFrontTask(
                scenario_json=SCENARIO_JSON,
                shard=0,
                shards=4,
            )
        )
        assert pareto["kind"] == "dse-pareto"
        assert pareto["n_shard_configs"] == 25
        halving = execute_task(
            SuccessiveHalvingTask(scenario_json=SCENARIO_JSON)
        )
        assert halving["kind"] == "dse-halving"
        assert halving["front"]
