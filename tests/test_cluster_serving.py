"""Multi-worker serving through the router (repro.cluster).

Boots a real 2-worker cluster (spawned worker processes + the asyncio
router in a background thread) once per module and drives it with raw
keep-alive sockets, exactly like an external client.  Chaos tests get
their own short-lived cluster so killing workers cannot leak into the
shared harness.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.cluster import ClusterConfig, Router, WorkerSupervisor
from repro.cluster.hashring import rendezvous_owner, shard_key
from repro.obs.metrics import MetricsRegistry, validate_prometheus
from repro.service.app import ModelService, ServiceConfig

SPEEDUP_BODY = json.dumps(
    {"workload": "mmm", "f": 0.99, "design": "GTX480"}
).encode()


def _request(port, method, path, body=b"", keep=False, sock=None):
    """One raw HTTP/1.1 round trip; returns (status, headers, body, sock)."""
    conn = sock or socket.create_connection(("127.0.0.1", port), timeout=30)
    connection = "keep-alive" if keep else "close"
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Content-Type: application/json\r\n"
        f"Connection: {connection}\r\n\r\n"
    ).encode() + body
    conn.sendall(request)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-response")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    while len(rest) < length:
        rest += conn.recv(65536)
    if not keep:
        conn.close()
        conn = None
    return status, headers, rest, conn


def _request_with_headers(port, method, path, body, extra_headers):
    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    header_lines = "".join(
        f"{name}: {value}\r\n" for name, value in extra_headers.items()
    )
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Content-Type: application/json\r\n{header_lines}"
        f"Connection: close\r\n\r\n"
    ).encode() + body
    conn.sendall(request)
    data = b""
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            break
        data += chunk
    conn.close()
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, rest


class _Cluster:
    """A live cluster: worker processes + router loop in a thread."""

    def __init__(self, workers=2, respawn_backoff_s=0.5):
        self.config = ClusterConfig(
            workers=workers,
            service=ServiceConfig(batch_window_ms=0.5, workers=1),
            host="127.0.0.1",
            port=0,
            respawn_backoff_s=respawn_backoff_s,
        )
        # Private registries: several clusters per test session must
        # not fight over callback gauges in the process-global one.
        self.supervisor = WorkerSupervisor(
            self.config, registry=MetricsRegistry()
        )
        self.router = Router(self.config, self.supervisor)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = None

    def start(self):
        self.supervisor.start()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(60), "router did not start"
        return self

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        ready = asyncio.Event()
        serve = asyncio.ensure_future(
            self.router.serve_until(self._stop, ready=ready)
        )
        await ready.wait()
        self._ready.set()
        await serve

    @property
    def port(self):
        return self.router.bound_port

    def kill_worker(self, name):
        process = self.supervisor._slots[name].process
        process.kill()
        process.join(10)

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(30)
        self.supervisor.stop()


@pytest.fixture(scope="module")
def cluster():
    harness = _Cluster(workers=2).start()
    yield harness
    harness.stop()


class TestRouting:
    def test_routed_speedup_matches_single_process(self, cluster):
        status, _, body, _ = _request(
            cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY
        )
        assert status == 200, body
        routed = json.loads(body)

        async def _direct():
            service = ModelService(ServiceConfig(batch_window_ms=0.5))
            try:
                return await service.handle_request(
                    "POST", "/v1/speedup", SPEEDUP_BODY
                )
            finally:
                service.close()

        direct_status, direct_payload, _ = asyncio.run(_direct())
        assert direct_status == 200
        assert routed == direct_payload

    def test_same_key_is_bit_stable_across_keep_alive(self, cluster):
        status, headers, first, conn = _request(
            cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY, keep=True
        )
        assert status == 200
        assert "x-request-id" in headers and "x-trace-id" in headers
        status, _, second, conn = _request(
            cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY,
            keep=True, sock=conn,
        )
        conn.close()
        assert status == 200
        assert first == second

    def test_unparseable_body_still_gets_the_worker_400(self, cluster):
        status, _, body, _ = _request(
            cluster.port, "POST", "/v1/speedup", b"{broken"
        )
        assert status == 400
        assert json.loads(body)["error"]

    def test_healthz_reports_topology_and_fleet(self, cluster):
        status, _, body, _ = _request(cluster.port, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["role"] == "router"
        assert payload["topology"] == {
            "workers": 2, "routing": "rendezvous",
        }
        workers = payload["cluster"]["workers"]
        assert sorted(workers) == ["w1", "w2"]
        assert all(entry["alive"] for entry in workers.values())


class TestMetrics:
    def test_json_metrics_merge_all_workers(self, cluster):
        _request(cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY)
        status, _, body, _ = _request(cluster.port, "GET", "/metrics")
        assert status == 200
        snapshot = json.loads(body)
        assert sorted(snapshot["workers"]) == ["w1", "w2"]
        assert snapshot["cluster"]["topology"]["workers"] == 2
        assert "repro_cluster_requests_total" in snapshot["router"]

    def test_prometheus_merge_validates(self, cluster):
        _request(cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY)
        status, headers, body, _ = _request(
            cluster.port, "GET", "/metrics?format=prom"
        )
        assert status == 200
        text = body.decode()
        for label in ('worker="router"', 'worker="w1"', 'worker="w2"'):
            assert label in text, text[:500]
        # One TYPE header per family even with three sources merged.
        assert text.count("# TYPE repro_requests_total ") <= 1
        validate_prometheus(
            text,
            required=(
                "repro_cluster_requests_total",
                "repro_cluster_workers",
            ),
        )


class TestJobs:
    def test_job_scatter_gather_resolves_worker_local_ids(self, cluster):
        spec = json.dumps({"name": "t", "figures": ["F6"]}).encode()
        status, _, body, _ = _request(
            cluster.port, "POST", "/v1/jobs", spec
        )
        assert status == 202, body
        job_id = json.loads(body)["job_id"]
        deadline = time.monotonic() + 60
        state = None
        while time.monotonic() < deadline:
            status, _, body, _ = _request(
                cluster.port, "GET", f"/v1/jobs/{job_id}"
            )
            assert status == 200, body
            state = json.loads(body)["state"]
            if state in ("succeeded", "failed"):
                break
            time.sleep(0.1)
        assert state == "succeeded", state

    def test_unknown_job_id_is_a_clean_404(self, cluster):
        status, _, body, _ = _request(
            cluster.port, "GET", "/v1/jobs/no-such-job"
        )
        assert status == 404
        assert json.loads(body)["error"]


class TestTracePropagation:
    def test_one_trace_spans_router_and_worker(self, cluster):
        trace_id = "ab" * 16  # 32-hex: adopted as the trace id
        status, headers, _ = _request_with_headers(
            cluster.port, "POST", "/v1/speedup", SPEEDUP_BODY,
            {"X-Request-Id": trace_id},
        )
        assert status == 200
        assert headers["x-request-id"] == trace_id
        assert headers["x-trace-id"] == trace_id
        # The worker that served it recorded spans under the same id.
        found = []
        for port in cluster.supervisor.ports().values():
            status, _, body, _ = _request(
                port, "GET", f"/v1/traces?trace_id={trace_id}"
            )
            assert status == 200
            found.extend(json.loads(body)["spans"])
        assert found, "no worker recorded the forwarded trace id"
        assert any(
            span["name"] == "http.request" for span in found
        )


class TestWorkerDeath:
    """Satellite 3: kill a serving worker and watch the seams hold."""

    def _pick_victims(self, names):
        """A speedup body and a GET path owned by the same worker."""
        get_path = "/v1/slo"
        victim = rendezvous_owner(get_path, names)
        for f in (0.99, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.5, 0.3):
            body = json.dumps(
                {"workload": "mmm", "f": f, "design": "GTX480"}
            ).encode()
            if rendezvous_owner(shard_key("/v1/speedup", body), names) == victim:
                return victim, body, get_path
        pytest.fail("no speedup body hashed onto the /v1/slo owner")

    def test_kill_mid_keep_alive(self):
        harness = _Cluster(workers=2, respawn_backoff_s=0.05).start()
        try:
            names = harness.config.worker_names()
            victim, body, get_path = self._pick_victims(names)
            survivor = [n for n in names if n != victim][0]

            status, _, healthy_body, _ = _request(
                harness.port, "POST", "/v1/speedup", body
            )
            assert status == 200

            # Freeze the respawner, and freeze the liveness view so
            # the router has not yet *observed* the death -- the
            # moment a real crash is racing the watchdog.
            original_poll = harness.supervisor.poll
            original_alive = harness.supervisor.alive
            frozen_alive = dict(original_alive())
            harness.supervisor.poll = lambda: []
            harness.supervisor.alive = lambda: dict(frozen_alive)
            try:
                harness.kill_worker(victim)

                # In-flight POST to the dead owner: an honest one-line
                # 503, never a silent retry of a non-idempotent call.
                status, _, error_body, _ = _request(
                    harness.port, "POST", "/v1/speedup", body
                )
                assert status == 503, error_body
                payload = json.loads(error_body)
                assert payload["error"] == "UpstreamError"
                assert "\n" not in payload["message"]

                # Idempotent GET owned by the corpse: retried onto the
                # survivor transparently.
                status, _, slo_body, _ = _request(
                    harness.port, "GET", get_path
                )
                assert status == 200, slo_body
                retried = harness.router._requests.value(
                    worker=victim, outcome="retried"
                )
                assert retried >= 1
            finally:
                harness.supervisor.alive = original_alive

            try:
                # Death now observed (alive() is live again): the
                # fleet is degraded but every request fails over.
                status, _, hz, _ = _request(harness.port, "GET", "/healthz")
                assert status == 200
                assert json.loads(hz)["status"] == "degraded"
                status, _, failover_body, _ = _request(
                    harness.port, "POST", "/v1/speedup", body
                )
                assert status == 200
                assert failover_body == healthy_body
            finally:
                harness.supervisor.poll = original_poll

            # Watchdog respawns under the same name; rendezvous hands
            # the replacement its old keys and answers go bit-identical.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status, _, hz, _ = _request(harness.port, "GET", "/healthz")
                if status == 200 and json.loads(hz)["status"] == "ok":
                    break
                time.sleep(0.1)
            payload = json.loads(hz)
            assert payload["status"] == "ok", payload
            assert payload["cluster"]["workers"][victim]["respawns"] == 1
            assert survivor not in [
                name
                for name, entry in payload["cluster"]["workers"].items()
                if entry["respawns"]
            ]

            status, _, reborn_body, _ = _request(
                harness.port, "POST", "/v1/speedup", body
            )
            assert status == 200
            assert reborn_body == healthy_body
        finally:
            harness.stop()

    def test_all_workers_dead_is_503_unavailable(self):
        harness = _Cluster(workers=1, respawn_backoff_s=30.0).start()
        try:
            original_poll = harness.supervisor.poll
            harness.supervisor.poll = lambda: []
            try:
                harness.kill_worker("w1")
                status, _, body, _ = _request(
                    harness.port, "GET", "/healthz"
                )
                assert status == 503
                assert json.loads(body)["status"] == "unavailable"
                status, _, body, _ = _request(
                    harness.port, "POST", "/v1/speedup", SPEEDUP_BODY
                )
                assert status == 503
                assert json.loads(body)["error"] == "UpstreamError"
            finally:
                harness.supervisor.poll = original_poll
        finally:
            harness.stop()
