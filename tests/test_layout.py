"""Tests for the chip layout substrate (tiles, floorplans, Figure 1)."""

import pytest

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.optimizer import optimize
from repro.core.power import seq_power
from repro.devices.params import ucore_for
from repro.errors import ModelError
from repro.itrs.roadmap import ITRS_2009
from repro.layout.floorplan import (
    NONCOMPUTE_FRACTION,
    build_floorplan,
)
from repro.layout.render import render_figure1, render_floorplan
from repro.layout.tiles import Tile, TileKind, make_tile
from repro.projection.engine import node_budget


@pytest.fixture
def node40():
    return ITRS_2009.node(40)


@pytest.fixture
def het_plan(node40):
    chip = HeterogeneousChip(ucore_for("ASIC", "fft", 1024))
    budget = node_budget(node40, "fft", 1024)
    point = optimize(chip, 0.99, budget)
    return chip, point, build_floorplan(chip, point, node40)


class TestTiles:
    def test_fast_core_gated_in_parallel(self):
        tile = make_tile(TileKind.FAST_CORE, bce_units=4)
        assert tile.active_serial and not tile.active_parallel

    def test_bce_core_gated_in_serial(self):
        tile = make_tile(TileKind.BCE_CORE)
        assert tile.active_parallel and not tile.active_serial

    def test_noncompute_always_on(self):
        tile = make_tile(TileKind.NONCOMPUTE, bce_units=144.0)
        assert tile.active_serial and tile.active_parallel
        assert tile.bce_equiv == 0.0
        assert tile.area_mm2 == 144.0

    def test_density_scale_shrinks_tiles(self):
        at40 = make_tile(TileKind.UCORE, bce_units=4, density_scale=1.0)
        at11 = make_tile(
            TileKind.UCORE, bce_units=4, density_scale=1 / 16
        )
        assert at11.area_mm2 == pytest.approx(at40.area_mm2 / 16)

    def test_glyphs(self):
        assert make_tile(TileKind.FAST_CORE, 2).glyph == "F"
        assert make_tile(TileKind.NONCOMPUTE, 1.0).glyph == "."

    def test_validation(self):
        with pytest.raises(ModelError):
            make_tile("npu", 1)
        with pytest.raises(ModelError):
            make_tile(TileKind.BCE_CORE, bce_units=0)
        with pytest.raises(ModelError):
            Tile(TileKind.BCE_CORE, "x", -1.0, 1.0, False, True)


class TestFloorplan:
    def test_heterogeneous_structure(self, het_plan):
        _, point, plan = het_plan
        assert len(plan.tiles_of(TileKind.FAST_CORE)) == 1
        assert len(plan.tiles_of(TileKind.UCORE)) == 1
        assert len(plan.tiles_of(TileKind.NONCOMPUTE)) == 1

    def test_bce_accounting_matches_design_point(self, het_plan):
        _, point, plan = het_plan
        assert plan.total_bce == pytest.approx(point.n)

    def test_compute_area_within_budget(self, het_plan, node40):
        _, _, plan = het_plan
        assert plan.compute_area_mm2 <= node40.core_area_budget_mm2 * (
            1 + 1e-9
        )

    def test_noncompute_reserve(self, het_plan):
        _, _, plan = het_plan
        assert plan.noncompute_area_mm2 == pytest.approx(
            plan.die_area_mm2 * NONCOMPUTE_FRACTION
        )

    def test_asym_builds_bce_tiles(self, node40):
        chip = AsymmetricOffloadCMP()
        budget = node_budget(node40, "mmm", None)
        point = optimize(chip, 0.99, budget)
        plan = build_floorplan(chip, point, node40)
        bces = plan.tiles_of(TileKind.BCE_CORE)
        assert len(bces) >= int(point.n - point.r)
        assert plan.total_bce == pytest.approx(point.n, abs=1e-6)

    def test_symmetric_core_count(self, node40):
        chip = SymmetricCMP()
        budget = node_budget(node40, "mmm", None)
        point = optimize(chip, 0.9, budget)
        plan = build_floorplan(chip, point, node40)
        cores = plan.tiles_of(TileKind.FAST_CORE)
        assert len(cores) == max(int(point.n / point.r), 1)
        # Exactly one core serves the serial phase.
        assert sum(1 for t in cores if t.active_serial) == 1
        assert all(t.active_parallel for t in cores)

    def test_denser_nodes_fit_more_bce(self):
        chip = HeterogeneousChip(ucore_for("ASIC", "mmm"))
        plans = {}
        for node_nm in (40, 11):
            node = ITRS_2009.node(node_nm)
            budget = node_budget(
                node, "mmm", None, bandwidth_exempt=True
            )
            point = optimize(chip, 0.999, budget)
            plans[node_nm] = build_floorplan(chip, point, node)
        assert plans[11].total_bce > plans[40].total_bce
        # Both dies are the same physical size.
        assert plans[11].die_area_mm2 == plans[40].die_area_mm2


class TestPhasePower:
    def test_serial_power_matches_model(self, het_plan):
        chip, point, plan = het_plan
        assert plan.phase_power_bce("serial") == pytest.approx(
            seq_power(point.r, 1.75)
        )

    def test_parallel_power_matches_model(self, het_plan):
        chip, point, plan = het_plan
        expected = chip.parallel_power(point.n, point.r, 1.75)
        assert plan.phase_power_bce(
            "parallel", ucore_phi=chip.ucore.phi
        ) == pytest.approx(expected)

    def test_bad_phase(self, het_plan):
        _, _, plan = het_plan
        with pytest.raises(ModelError):
            plan.phase_power_bce("sleep")


class TestRendering:
    def test_floorplan_grid(self, het_plan):
        _, _, plan = het_plan
        text = render_floorplan(plan)
        assert "F" in text and "u" in text and "." in text
        assert "die 576mm2" in text

    def test_grid_validation(self, het_plan):
        _, _, plan = het_plan
        with pytest.raises(ModelError):
            render_floorplan(plan, grid_width=4)

    def test_figure1_has_three_models(self):
        text = render_figure1()
        assert "(a) Symmetric" in text
        assert "(b) Asymmetric" in text
        assert "(c) Heterogeneous" in text
        assert text.count("+--") == 6  # two borders per floorplan

    def test_figure1_via_registry(self):
        from repro.reporting.experiments import run_experiment

        assert "chip models" in run_experiment("F1")
