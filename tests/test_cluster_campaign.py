"""Coordination-free campaign joins (executor="cluster").

Multiple ``campaign --join`` processes share only a store directory;
lease files decide who runs what, and the content-addressed store
guarantees the merged result is bit-identical to a serial run even
when workers die mid-task.
"""

import multiprocessing
import time

import pytest

from repro.campaign.runner import _EXECUTORS, _SPAWN, CampaignRunner
from repro.campaign.spec import CampaignSpec, task_hash
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.errors import ModelError

SPEC_KWARGS = dict(name="cli-figures", figures=("F6",), method="batch")


def _serial_results(tmp_path):
    runner = CampaignRunner(
        store=ResultStore(tmp_path / "serial"), executor="serial"
    )
    return runner.run(CampaignSpec(**SPEC_KWARGS)).results_json()


def _join_worker(store_dir, out_q):
    spec = CampaignSpec(**SPEC_KWARGS)
    store = ResultStore(store_dir)
    runner = CampaignRunner(
        store=store, executor="cluster", resume=True, lease_ttl_s=2.0
    )
    report = runner.run(spec)
    out_q.put(
        {
            "executed": report.executed,
            "cached": report.cached,
            "failed": report.failed,
            "results": report.results_json(),
            "leases": store.lease_stats(),
        }
    )


def _doomed_claimer(store_dir, started):
    """Claim the first task, then hang without heartbeating."""
    from repro.cluster.lease import LeaseManager

    spec = CampaignSpec(**SPEC_KWARGS)
    store = ResultStore(store_dir)
    lease = LeaseManager(store, ttl_s=1.0)
    assert lease.claim(task_hash(spec.tasks()[0]))
    started.set()
    time.sleep(3600)


def _join_worker_fast_ttl(store_dir, out_q):
    spec = CampaignSpec(**SPEC_KWARGS)
    store = ResultStore(store_dir)
    runner = CampaignRunner(
        store=store, executor="cluster", resume=True, lease_ttl_s=1.0
    )
    report = runner.run(spec)
    out_q.put(
        {
            "executed": report.executed,
            "failed": report.failed,
            "results": report.results_json(),
            "leases": store.lease_stats(),
        }
    )


class TestClusterExecutor:
    def test_single_process_cluster_run_matches_serial(self, tmp_path):
        serial = _serial_results(tmp_path)
        store = ResultStore(tmp_path / "cluster")
        runner = CampaignRunner(
            store=store, executor="cluster", resume=True
        )
        report = runner.run(CampaignSpec(**SPEC_KWARGS))
        assert report.failed == 0
        assert report.results_json() == serial
        stats = store.lease_stats()
        assert stats["claimed"] == report.executed
        assert stats["released"] == report.executed

    def test_two_joined_processes_split_work_byte_equal(self, tmp_path):
        serial = _serial_results(tmp_path)
        store_dir = tmp_path / "shared"
        store_dir.mkdir()
        queue = _SPAWN.Queue()
        peers = [
            _SPAWN.Process(
                target=_join_worker, args=(str(store_dir), queue)
            )
            for _ in range(2)
        ]
        for peer in peers:
            peer.start()
        outputs = [queue.get(timeout=300) for _ in peers]
        for peer in peers:
            peer.join(30)

        total_tasks = len(CampaignSpec(**SPEC_KWARGS).tasks())
        executed = sum(out["executed"] for out in outputs)
        for out in outputs:
            assert out["failed"] == 0
            # Every peer reports the full merged campaign, and it is
            # byte-identical to what one serial process produces.
            assert out["results"] == serial
        # Leases keep the peers off each other's tasks: no task ran
        # twice (cached settles cover the rest).
        assert executed == total_tasks
        assert (
            sum(out["leases"].get("claimed", 0) for out in outputs)
            == total_tasks
        )

    def test_worker_death_mid_task_is_taken_over(self, tmp_path):
        serial = _serial_results(tmp_path)
        store_dir = tmp_path / "shared"
        store_dir.mkdir()
        started = _SPAWN.Event()
        doomed = _SPAWN.Process(
            target=_doomed_claimer, args=(str(store_dir), started)
        )
        doomed.start()
        assert started.wait(120), "claimer never claimed"
        queue = _SPAWN.Queue()
        peer = _SPAWN.Process(
            target=_join_worker_fast_ttl, args=(str(store_dir), queue)
        )
        peer.start()
        time.sleep(0.3)
        doomed.kill()
        out = queue.get(timeout=300)
        peer.join(30)
        doomed.join(10)

        assert out["failed"] == 0
        assert out["results"] == serial
        assert out["leases"].get("stolen", 0) >= 1
        assert out["leases"].get("expired", 0) >= 1

    def test_cluster_requires_durable_store(self):
        with pytest.raises(ModelError):
            CampaignRunner(executor="cluster")
        with pytest.raises(ModelError):
            CampaignRunner(store=ResultStore(), executor="cluster")

    def test_lease_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ModelError):
            CampaignRunner(
                store=ResultStore(tmp_path),
                executor="cluster",
                lease_ttl_s=0.0,
            )


class TestSpawnPinning:
    def test_pool_start_method_is_spawn(self):
        # Campaign pools and perf grids must behave identically on
        # Linux and macOS: fork is never used.
        assert _SPAWN.get_start_method() == "spawn"
        assert "cluster" in _EXECUTORS

    def test_grid_uses_spawn_context(self):
        import inspect

        from repro.perf import grid

        source = inspect.getsource(grid)
        assert 'multiprocessing.get_context("spawn")' in source


class TestCli:
    def test_join_requires_store_dir(self, capsys):
        code = main(["campaign", "--figures", "F6", "--join"])
        assert code == 2  # usage error
        err = capsys.readouterr().err
        assert "--store-dir" in err

    def test_join_summary_reports_leases(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--figures",
                "F6",
                "--join",
                "--store-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "leases: " in out
        assert "claimed=" in out and "released=" in out

    def test_cluster_executor_is_a_cli_choice(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--figures",
                "F6",
                "--executor",
                "cluster",
                "--store-dir",
                str(tmp_path),
                "--lease-ttl-s",
                "5.0",
            ]
        )
        assert code == 0
