"""Tests for variable-parallelism profiles (Section 7 extension)."""

import math

import pytest

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget
from repro.core.hill_marty import speedup_asymmetric_offload
from repro.core.profiles import (
    ParallelismProfile,
    WidthSegment,
    optimize_profile,
    profile_speedup,
)
from repro.core.ucore import UCore, speedup_heterogeneous
from repro.errors import ModelError


class TestWidthSegment:
    def test_valid(self):
        s = WidthSegment(0.5, 64.0)
        assert s.fraction == 0.5
        assert s.width == 64.0

    def test_serial_segment(self):
        assert WidthSegment(0.1, 1.0).width == 1.0

    def test_rejects_subunit_width(self):
        with pytest.raises(ModelError):
            WidthSegment(0.5, 0.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelError):
            WidthSegment(1.5, 2.0)


class TestProfileConstruction:
    def test_two_phase_structure(self):
        p = ParallelismProfile.two_phase(0.9)
        assert p.serial_fraction == pytest.approx(0.1)
        assert p.equivalent_f() == pytest.approx(0.9)

    def test_two_phase_degenerate_cases(self):
        assert ParallelismProfile.two_phase(0.0).serial_fraction == 1.0
        assert ParallelismProfile.two_phase(1.0).serial_fraction == 0.0

    def test_fractions_must_sum(self):
        with pytest.raises(ModelError):
            ParallelismProfile.from_pairs([(0.5, 1.0), (0.4, 8.0)])

    def test_geometric_profile(self):
        p = ParallelismProfile.geometric(0.9, max_width=256, levels=8)
        widths = [s.width for s in p.segments if s.width > 1.0]
        assert len(widths) == 8
        assert widths[0] == pytest.approx(2.0)
        assert widths[-1] == pytest.approx(256.0)
        assert p.equivalent_f() == pytest.approx(0.9)

    def test_geometric_validation(self):
        with pytest.raises(ModelError):
            ParallelismProfile.geometric(0.9, max_width=1.0)
        with pytest.raises(ModelError):
            ParallelismProfile.geometric(0.9, max_width=64, levels=0)

    def test_mean_width(self):
        p = ParallelismProfile.from_pairs([(0.5, 4.0), (0.5, 8.0)])
        assert p.mean_width() == pytest.approx(6.0)

    def test_mean_width_all_infinite(self):
        p = ParallelismProfile.two_phase(1.0)
        assert math.isinf(p.mean_width())


class TestProfileSpeedup:
    def test_two_phase_matches_closed_form(self, gpu_like):
        # An unbounded-width profile reproduces the Section 3.3 formula.
        chip = HeterogeneousChip(gpu_like)
        profile = ParallelismProfile.two_phase(0.9)
        f, n, r = 0.9, 32.0, 4.0
        assert profile_speedup(chip, profile, n, r) == pytest.approx(
            speedup_heterogeneous(f, n, r, gpu_like)
        )

    def test_asym_offload_two_phase(self):
        chip = AsymmetricOffloadCMP()
        profile = ParallelismProfile.two_phase(0.99)
        assert profile_speedup(chip, profile, 64, 4) == pytest.approx(
            speedup_asymmetric_offload(0.99, 64, 4)
        )

    def test_width_caps_fabric(self):
        # A width-8 segment cannot use a 1000x fabric.
        fast = HeterogeneousChip(UCore(name="big", mu=1000.0, phi=1.0))
        profile = ParallelismProfile.from_pairs([(0.5, 1.0), (0.5, 8.0)])
        speedup = profile_speedup(fast, profile, 16, 2)
        ceiling = 1.0 / (0.5 / math.sqrt(2) + 0.5 / 8.0)
        assert speedup == pytest.approx(ceiling)

    def test_narrow_profile_erases_asic_advantage(self):
        # The paper's 'suitability' point: on narrow parallelism a
        # huge-mu ASIC buys nothing over a modest GPU fabric.
        asic = HeterogeneousChip(UCore(name="asic", mu=500.0, phi=5.0))
        gpu = HeterogeneousChip(UCore(name="gpu", mu=3.0, phi=0.6))
        narrow = ParallelismProfile.from_pairs(
            [(0.01, 1.0), (0.99, 6.0)]
        )
        wide = ParallelismProfile.two_phase(0.99)
        n, r = 34.0, 2.0
        assert profile_speedup(asic, narrow, n, r) == pytest.approx(
            profile_speedup(gpu, narrow, n, r), rel=1e-9
        )
        assert profile_speedup(asic, wide, n, r) > 2 * profile_speedup(
            gpu, wide, n, r
        )

    def test_symmetric_single_core_profile(self):
        chip = SymmetricCMP()
        profile = ParallelismProfile.from_pairs([(0.5, 1.0), (0.5, 4.0)])
        # n == r: the lone core serves both segment kinds.
        speedup = profile_speedup(chip, profile, 4.0, 4.0)
        assert speedup == pytest.approx(2.0)

    def test_offload_chip_needs_fabric(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        profile = ParallelismProfile.two_phase(0.5)
        with pytest.raises(ModelError):
            profile_speedup(chip, profile, 4.0, 4.0)

    def test_n_below_r_rejected(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        with pytest.raises(ModelError):
            profile_speedup(
                chip, ParallelismProfile.two_phase(0.5), 2.0, 4.0
            )


class TestOptimizeProfile:
    def test_matches_standard_optimizer_on_two_phase(self, gpu_like):
        from repro.core.optimizer import optimize

        chip = HeterogeneousChip(gpu_like)
        budget = Budget(area=37.0, power=13.3, bandwidth=46.0)
        speedup, r, n = optimize_profile(
            chip, ParallelismProfile.two_phase(0.9), budget
        )
        standard = optimize(chip, 0.9, budget)
        assert speedup == pytest.approx(standard.speedup)
        assert r == standard.r

    def test_profile_shifts_optimum_to_bigger_core(self):
        # Bounded-width parallel work devalues fabric, so the optimal
        # core grows (or at least never shrinks).
        chip = HeterogeneousChip(UCore(name="u", mu=30.0, phi=0.8))
        budget = Budget(area=64.0, power=20.0)
        _, r_wide, _ = optimize_profile(
            chip, ParallelismProfile.two_phase(0.9), budget
        )
        _, r_narrow, _ = optimize_profile(
            chip,
            ParallelismProfile.from_pairs([(0.1, 1.0), (0.9, 4.0)]),
            budget,
        )
        assert r_narrow >= r_wide

    def test_infeasible(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        with pytest.raises(ModelError):
            optimize_profile(
                chip,
                ParallelismProfile.two_phase(0.9),
                Budget(area=1.0, power=1e9),
            )
