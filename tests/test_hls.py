"""Tests for the hardware-pipeline cost model (Section 4 methodology)."""

import pytest

from repro.devices.measurements import get_measurement
from repro.errors import ModelError
from repro.hls.costmodel import (
    BLACK_SCHOLES_DATAFLOW,
    DEFAULT_LUT_COSTS,
    LX760_FABRIC,
    MMM_PE_DATAFLOW,
    Dataflow,
    FabricSpec,
    scale_design,
)


class TestDataflow:
    def test_lut_accounting(self):
        df = Dataflow(name="toy", operators={"add": 2, "mul": 1})
        expected = 2 * DEFAULT_LUT_COSTS["add"] + DEFAULT_LUT_COSTS["mul"]
        assert df.luts() == expected

    def test_custom_costs(self):
        df = Dataflow(name="toy", operators={"add": 1})
        assert df.luts({"add": 99}) == 99

    def test_unknown_operator(self):
        df = Dataflow(name="toy", operators={"fma512": 1})
        with pytest.raises(ModelError, match="fma512"):
            df.luts()

    def test_validation(self):
        with pytest.raises(ModelError):
            Dataflow(name="empty", operators={})
        with pytest.raises(ModelError):
            Dataflow(name="neg", operators={"add": -1})
        with pytest.raises(ModelError):
            Dataflow(name="bad", operators={"add": 1},
                     results_per_cycle=0.0)


class TestFabric:
    def test_clock_derates_with_utilization(self):
        clocks = [LX760_FABRIC.clock_at(u) for u in (0.0, 0.4, 0.8)]
        assert clocks == sorted(clocks, reverse=True)
        assert clocks[0] == LX760_FABRIC.base_clock_ghz

    def test_clock_validation(self):
        with pytest.raises(ModelError):
            LX760_FABRIC.clock_at(1.5)

    def test_fabric_validation(self):
        with pytest.raises(ModelError):
            FabricSpec(name="x", capacity_luts=0, base_clock_ghz=0.2)
        with pytest.raises(ModelError):
            FabricSpec(name="x", capacity_luts=100,
                       base_clock_ghz=0.2, max_utilization=0.0)


class TestScaleDesign:
    def test_bs_matches_table4_within_structural_accuracy(self):
        design = scale_design(BLACK_SCHOLES_DATAFLOW, LX760_FABRIC)
        measured = get_measurement("LX760", "bs").throughput  # Mopts/s
        generated_mopts = design.throughput_per_sec / 1e6
        assert 0.5 * measured < generated_mopts < 1.5 * measured

    def test_mmm_matches_table4_within_structural_accuracy(self):
        design = scale_design(MMM_PE_DATAFLOW, LX760_FABRIC)
        measured = get_measurement("LX760", "mmm").throughput  # GFLOP/s
        generated_gflops = design.throughput_per_sec / 1e9
        assert 0.5 * measured < generated_gflops < 1.5 * measured

    def test_scaling_stops_before_capacity(self):
        design = scale_design(BLACK_SCHOLES_DATAFLOW, LX760_FABRIC)
        assert design.utilization <= LX760_FABRIC.max_utilization
        assert design.copies >= 1

    def test_another_copy_would_not_help(self):
        # The chosen copy count beats its neighbours (timing closure).
        design = scale_design(MMM_PE_DATAFLOW, LX760_FABRIC)
        per_copy = MMM_PE_DATAFLOW.luts()

        def throughput(copies):
            util = copies * per_copy / LX760_FABRIC.capacity_luts
            if util > LX760_FABRIC.max_utilization:
                return 0.0
            return (
                copies * 2.0 * LX760_FABRIC.clock_at(util) * 1e9
            )

        assert design.throughput_per_sec >= throughput(
            design.copies - 1
        )
        assert design.throughput_per_sec >= throughput(
            design.copies + 1
        )

    def test_too_big_for_fabric(self):
        monster = Dataflow(
            name="monster", operators={"div": 100_000}
        )
        with pytest.raises(ModelError, match="offers"):
            scale_design(monster, LX760_FABRIC)

    def test_area_uses_paper_per_lut_model(self):
        design = scale_design(BLACK_SCHOLES_DATAFLOW, LX760_FABRIC)
        assert design.area_mm2 == pytest.approx(
            design.luts_used * 0.00191
        )

    def test_congestion_tradeoff_visible(self):
        # A zero-congestion fabric always packs to the ceiling; a
        # heavily congested one stops earlier.
        easy = FabricSpec(name="easy", capacity_luts=474_240,
                          base_clock_ghz=0.22, congestion_exponent=0.0)
        hard = FabricSpec(name="hard", capacity_luts=474_240,
                          base_clock_ghz=0.22, congestion_exponent=3.0)
        easy_design = scale_design(BLACK_SCHOLES_DATAFLOW, easy)
        hard_design = scale_design(BLACK_SCHOLES_DATAFLOW, hard)
        assert hard_design.copies < easy_design.copies
