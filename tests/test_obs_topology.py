"""Topology stamping in benchmark envelopes and baseline selection.

A 4-worker throughput number must never become the regression
baseline for a single-process run; the envelope carries the serving
topology and ``select_baseline`` partitions on it.
"""

import json

from repro.cluster.supervisor import ClusterConfig
from repro.obs.history import HistoryStore, envelope, record_benchmark
from repro.obs.regress import select_baseline


def _row(run_id, benchmark="svc", topology=None, value=1.0):
    env = envelope(1000.0 + run_id, run_id=run_id, topology=topology)
    return {
        "benchmark": benchmark,
        "envelope": env,
        "metrics": {"throughput_rps": value},
    }


class TestEnvelope:
    def test_topology_absent_by_default(self):
        stamp = envelope(1000.0)
        assert "topology" not in stamp

    def test_topology_stamped_when_given(self):
        stamp = envelope(
            1000.0, topology={"workers": 4, "routing": "rendezvous"}
        )
        assert stamp["topology"] == {
            "workers": 4, "routing": "rendezvous",
        }

    def test_cluster_config_is_the_stamp_source(self):
        topology = ClusterConfig(workers=3).topology()
        assert topology == {"workers": 3, "routing": "rendezvous"}

    def test_record_benchmark_threads_topology_through(self, tmp_path):
        snapshot = tmp_path / "BENCH_x.json"
        history = tmp_path / "BENCH_history.jsonl"
        row = record_benchmark(
            {"throughput_rps": 10.0},
            "svc",
            snapshot,
            history,
            timestamp=1000.0,
            topology={"workers": 2, "routing": "rendezvous"},
        )
        assert row["envelope"]["topology"]["workers"] == 2
        written = json.loads(snapshot.read_text())
        assert written["envelope"]["topology"]["workers"] == 2
        stored = HistoryStore(history).rows()[0]
        assert stored["envelope"]["topology"]["workers"] == 2

    def test_record_benchmark_without_topology_stays_clean(self, tmp_path):
        row = record_benchmark(
            {"throughput_rps": 10.0},
            "svc",
            tmp_path / "BENCH_x.json",
            tmp_path / "BENCH_history.jsonl",
            timestamp=1000.0,
        )
        assert "topology" not in row["envelope"]


class TestBaselineSeparation:
    def test_topologies_never_cross_baseline(self):
        multi = {"workers": 4, "routing": "rendezvous"}
        rows = [_row(i, topology=multi) for i in range(1, 6)]
        rows += [_row(i) for i in range(6, 11)]  # topology-less

        single_candidate = _row(20)
        baseline = select_baseline(rows, single_candidate, min_runs=3)
        assert baseline
        assert all(
            "topology" not in row["envelope"] for row in baseline
        )

        multi_candidate = _row(21, topology=multi)
        baseline = select_baseline(rows, multi_candidate, min_runs=3)
        assert baseline
        assert all(
            row["envelope"]["topology"] == multi for row in baseline
        )

    def test_different_worker_counts_are_different_topologies(self):
        rows = [
            _row(i, topology={"workers": 4, "routing": "rendezvous"})
            for i in range(1, 6)
        ]
        candidate = _row(
            10, topology={"workers": 2, "routing": "rendezvous"}
        )
        assert select_baseline(rows, candidate, min_runs=3) == []

    def test_absent_topology_finds_no_multi_worker_baseline(self):
        rows = [
            _row(i, topology={"workers": 4, "routing": "rendezvous"})
            for i in range(1, 6)
        ]
        assert select_baseline(rows, _row(10), min_runs=3) == []
