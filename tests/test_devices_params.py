"""Tests for U-core parameter derivation -- the Table 5 reproduction.

The central calibration claim of the reproduction: running the paper's
Section 5.1 formulas over the measurement dataset reproduces the
printed Table 5.  MMM and BS parameters must match within the printed
rounding (the published table rounds to 2-3 significant figures); FFT
parameters must match exactly because the dataset is back-derived from
them.
"""

import math

import pytest

from repro.devices.bce import DEFAULT_BCE
from repro.devices.measurements import (
    TABLE5_PUBLISHED,
    all_measurements,
    get_measurement,
    measurements_for,
)
from repro.devices.params import (
    derive_mu,
    derive_phi,
    derive_ucore,
    derived_table5,
    published_table5,
    ucore_for,
)
from repro.errors import CalibrationError


class TestFormulas:
    def test_mu_footnote_formula(self):
        # mu = x_u / (x_i7 * sqrt(r)), Table 4 MMM GTX285 row.
        assert derive_mu(2.40, 0.50, 2) == pytest.approx(3.394, rel=1e-3)

    def test_phi_footnote_formula(self):
        mu = derive_mu(2.40, 0.50, 2)
        phi = derive_phi(mu, 1.14, 6.78, 2, 1.75)
        assert phi == pytest.approx(0.74, rel=1e-2)

    def test_mu_of_bce_equivalent_fabric(self):
        # A fabric with the BCE's own per-area performance has mu = 1:
        # x_bce = x_i7 * sqrt(r).
        x_i7 = 0.5
        x_bce = x_i7 * math.sqrt(2)
        assert derive_mu(x_bce, x_i7, 2) == pytest.approx(1.0)

    def test_phi_of_bce_equivalent_fabric(self):
        # A fabric matching the BCE's efficiency has phi = mu.
        x_i7, e_i7, r, alpha = 0.5, 1.14, 2, 1.75
        e_bce = e_i7 / r ** ((1 - alpha) / 2)
        mu = 3.0
        assert derive_phi(mu, e_i7, e_bce, r, alpha) == pytest.approx(mu)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            derive_mu(0.0, 1.0, 2)
        with pytest.raises(CalibrationError):
            derive_mu(1.0, 1.0, 0.5)
        with pytest.raises(CalibrationError):
            derive_phi(1.0, 1.0, 0.0, 2, 1.75)


class TestTable5Reproduction:
    def test_full_coverage(self):
        derived = derived_table5()
        for device, row in TABLE5_PUBLISHED.items():
            assert set(derived[device]) == set(row)

    @pytest.mark.parametrize("device", list(TABLE5_PUBLISHED))
    def test_matches_published_within_rounding(self, device):
        derived = derived_table5()[device]
        for key, (phi_pub, mu_pub) in TABLE5_PUBLISHED[device].items():
            phi, mu = derived[key]
            assert mu == pytest.approx(mu_pub, rel=0.02), (device, key)
            assert phi == pytest.approx(phi_pub, rel=0.02), (device, key)

    def test_fft_parameters_exact(self):
        # FFT records are back-derived, so the round trip is exact.
        derived = derived_table5()
        for device in ("GTX285", "GTX480", "LX760", "ASIC"):
            for key, (phi_pub, mu_pub) in TABLE5_PUBLISHED[device].items():
                if not key.startswith("fft-"):
                    continue
                phi, mu = derived[device][key]
                assert mu == pytest.approx(mu_pub, rel=1e-9)
                assert phi == pytest.approx(phi_pub, rel=1e-9)

    def test_published_accessor_is_a_copy(self):
        table = published_table5()
        table["ASIC"]["mmm"] = (0.0, 0.0)
        assert TABLE5_PUBLISHED["ASIC"]["mmm"] == (0.79, 27.4)


class TestUcoreFor:
    def test_asic_mmm(self):
        u = ucore_for("ASIC", "mmm")
        assert u.mu == pytest.approx(27.4, rel=0.02)
        assert u.phi == pytest.approx(0.79, rel=0.02)
        assert u.kind == "asic"
        assert u.workload == "mmm"

    def test_fft_requires_anchor_size(self):
        with pytest.raises(CalibrationError):
            ucore_for("ASIC", "fft", 2048)

    def test_fft_workload_label_includes_size(self):
        u = ucore_for("LX760", "fft", 1024)
        assert u.workload == "fft-1024"

    def test_missing_combination(self):
        with pytest.raises(CalibrationError):
            ucore_for("R5870", "bs")

    def test_asic_bs_efficiency_dominates(self):
        # Custom logic's headline property: the biggest perf/W gain,
        # ~100x over a BCE and ~3.4x over the best GPU (Table 4's
        # 642.5 vs 189 Mopts/J).
        asic = ucore_for("ASIC", "bs")
        gpu = ucore_for("GTX285", "bs")
        assert asic.efficiency_gain > 100.0
        assert asic.efficiency_gain > 3.0 * gpu.efficiency_gain


class TestDeriveUcoreValidation:
    def test_workload_mismatch(self):
        a = get_measurement("ASIC", "mmm")
        b = get_measurement("Core i7-960", "bs")
        with pytest.raises(CalibrationError):
            derive_ucore(a, b, DEFAULT_BCE)

    def test_size_mismatch(self):
        a = get_measurement("ASIC", "fft", 64)
        b = get_measurement("Core i7-960", "fft", 1024)
        with pytest.raises(CalibrationError):
            derive_ucore(a, b, DEFAULT_BCE)


class TestMeasurementDataset:
    def test_table4_round_trips(self):
        # Each record's derived columns reproduce Table 4 exactly.
        m = get_measurement("R5870", "mmm")
        assert m.perf_per_mm2 == pytest.approx(5.95)
        assert m.perf_per_joule == pytest.approx(9.87)

    def test_fft_anchor_sizes_present(self):
        for size in (64, 1024, 16384):
            assert get_measurement("GTX285", "fft", size).size == size

    def test_measurements_for_workload(self):
        mmm = measurements_for("mmm")
        assert {m.device for m in mmm} == {
            "Core i7-960", "GTX285", "GTX480", "R5870", "LX760", "ASIC",
        }

    def test_missing_measurement_raises_with_hint(self):
        with pytest.raises(CalibrationError, match="available keys"):
            get_measurement("R5870", "fft", 1024)

    def test_dataset_is_copied(self):
        table = all_measurements()
        table.clear()
        assert all_measurements()

    def test_implied_i7_areas_match_die_facts(self):
        # Table 4's normalised columns imply the i7 areas the paper
        # states: ~193mm2 (the full core+cache area).
        mmm = get_measurement("Core i7-960", "mmm")
        bs = get_measurement("Core i7-960", "bs")
        assert mmm.area_mm2 == pytest.approx(193.0, rel=0.01)
        assert bs.area_mm2 == pytest.approx(193.0, rel=0.02)
