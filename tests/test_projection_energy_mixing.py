"""Tests for energy projections (Figure 10) and the mixing extension."""

import math

import pytest

from repro.core.constraints import Budget
from repro.devices.params import ucore_for
from repro.errors import InfeasibleDesignError, ModelError
from repro.projection.energyproj import project_energy
from repro.projection.mixing import MixedChip, MixPhase


class TestEnergyProjection:
    def test_structure(self):
        result = project_energy("mmm", 0.9)
        assert len(result.series) == 7
        assert all(len(s.cells) == 5 for s in result.series)

    def test_energy_declines_across_nodes(self):
        result = project_energy("mmm", 0.9)
        for series in result.series:
            energies = series.energies()
            assert energies == sorted(energies, reverse=True), (
                series.label
            )

    def test_asic_most_efficient_at_high_f(self):
        result = project_energy("mmm", 0.99)
        by_label = result.by_label()
        asic_final = by_label["ASIC"].energies()[-1]
        for label, series in by_label.items():
            if label != "ASIC":
                assert asic_final < series.energies()[-1], label

    def test_low_f_limited_by_sequential_core(self):
        # "At low levels of parallelism the opportunity to reduce the
        # energy consumed is limited by the sequential core": the ASIC
        # saves little relative to the AsymCMP at f=0.5 versus f=0.99.
        e_low = project_energy("mmm", 0.5).by_label()
        e_high = project_energy("mmm", 0.99).by_label()
        gain_low = (
            e_low["AsymCMP"].energies()[0] / e_low["ASIC"].energies()[0]
        )
        gain_high = (
            e_high["AsymCMP"].energies()[0]
            / e_high["ASIC"].energies()[0]
        )
        assert gain_high > 5 * gain_low

    def test_speedup_recorded(self):
        result = project_energy("bs", 0.9)
        for series in result.series:
            for cell in series.cells:
                assert cell.speedup > 0

    def test_fft_defaults_size(self):
        result = project_energy("fft", 0.9)
        assert result.fft_size == 1024


class TestMixedChip:
    @pytest.fixture
    def fabrics(self):
        return {
            "asic-mmm": (ucore_for("ASIC", "mmm"), 8.0),
            "gpu-fft": (ucore_for("GTX285", "fft", 1024), 8.0),
        }

    @pytest.fixture
    def budget(self):
        return Budget(area=20.0, power=10.0, bandwidth=42.0)

    def test_total_area(self, fabrics):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        assert chip.total_area == pytest.approx(18.0)

    def test_execute_three_phase_program(self, fabrics, budget):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        phases = [
            MixPhase(0.1, "serial"),
            MixPhase(0.5, "asic-mmm"),
            MixPhase(0.4, "gpu-fft"),
        ]
        speedup, outcomes = chip.execute(phases, budget)
        assert speedup > 1.0
        assert len(outcomes) == 3
        total_time = sum(o.time for o in outcomes)
        assert speedup == pytest.approx(1.0 / total_time)

    def test_on_demand_power_gating(self, fabrics, budget):
        # Each phase is checked alone: the chip may hold far more
        # fabric than the power budget could light simultaneously.
        big = {
            name: (ucore, 15.0) for name, (ucore, _) in fabrics.items()
        }
        chip = MixedChip(r=2.0, fabrics=big)
        budget32 = Budget(area=32.0, power=10.0, bandwidth=42.0)
        speedup, _ = chip.execute(
            [MixPhase(0.5, "asic-mmm"), MixPhase(0.5, "gpu-fft")],
            budget32,
        )
        assert speedup > 1.0

    def test_area_budget_enforced(self, fabrics):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        with pytest.raises(InfeasibleDesignError):
            chip.execute(
                [MixPhase(1.0, "asic-mmm")],
                Budget(area=10.0, power=10.0),
            )

    def test_specialised_beats_single_fabric_program(self, budget):
        # A mixed chip running each phase on its best fabric beats
        # forcing both phases onto the GPU fabric alone.
        asic_mmm = ucore_for("ASIC", "mmm")
        gpu_fft = ucore_for("GTX285", "fft", 1024)
        mixed = MixedChip(
            r=2.0,
            fabrics={"asic": (asic_mmm, 8.0), "gpu": (gpu_fft, 8.0)},
        )
        gpu_only = MixedChip(
            r=2.0,
            fabrics={"gpu-mmm": (ucore_for("GTX285", "mmm"), 8.0),
                     "gpu": (gpu_fft, 8.0)},
        )
        phases_mixed = [
            MixPhase(0.1, "serial"),
            MixPhase(0.6, "asic"),
            MixPhase(0.3, "gpu"),
        ]
        phases_gpu = [
            MixPhase(0.1, "serial"),
            MixPhase(0.6, "gpu-mmm"),
            MixPhase(0.3, "gpu"),
        ]
        s_mixed, _ = mixed.execute(phases_mixed, budget)
        s_gpu, _ = gpu_only.execute(phases_gpu, budget)
        assert s_mixed > s_gpu

    def test_fraction_sum_checked(self, fabrics, budget):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        with pytest.raises(ModelError):
            chip.execute([MixPhase(0.5, "serial")], budget)

    def test_unknown_fabric(self, fabrics, budget):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        with pytest.raises(ModelError):
            chip.execute(
                [MixPhase(0.5, "serial"), MixPhase(0.5, "npu")], budget
            )

    def test_reserved_fabric_name(self):
        with pytest.raises(ModelError):
            MixedChip(
                r=2.0,
                fabrics={"serial": (ucore_for("ASIC", "mmm"), 4.0)},
            )

    def test_serial_power_checked(self, fabrics):
        chip = MixedChip(r=16.0, fabrics=fabrics)
        tiny_power = Budget(area=40.0, power=2.0)
        with pytest.raises(InfeasibleDesignError):
            chip.execute([MixPhase(1.0, "serial")], tiny_power)

    def test_energy(self, fabrics, budget):
        chip = MixedChip(r=2.0, fabrics=fabrics)
        phases = [MixPhase(0.5, "serial"), MixPhase(0.5, "asic-mmm")]
        energy = chip.energy(phases, budget)
        assert energy > 0
        assert chip.energy(phases, budget, rel_power=0.5) == (
            pytest.approx(energy * 0.5)
        )

    def test_bandwidth_clamps_fabric(self, budget):
        asic_fft = ucore_for("ASIC", "fft", 1024)  # mu ~ 489
        chip = MixedChip(r=2.0, fabrics={"asic": (asic_fft, 10.0)})
        _, outcomes = chip.execute(
            [MixPhase(0.5, "serial"), MixPhase(0.5, "asic")], budget
        )
        fabric_outcome = outcomes[1]
        assert fabric_outcome.limiter.value == "bandwidth"
        assert fabric_outcome.perf == pytest.approx(
            budget.bandwidth, rel=1e-9
        )


class TestMixedChipProperties:
    """Hypothesis cross-validation for the mixing extension."""

    def test_single_fabric_matches_closed_form(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.core.ucore import speedup_heterogeneous

        @settings(max_examples=30, deadline=None)
        @given(
            f=st.floats(0.05, 0.95),
            mu=st.floats(0.5, 100.0),
            phi=st.floats(0.1, 2.0),
            area=st.floats(1.0, 30.0),
        )
        def check(f, mu, phi, area):
            from repro.core.ucore import UCore

            ucore = UCore(name="u", mu=mu, phi=phi)
            r = 2.0
            chip = MixedChip(r=r, fabrics={"fab": (ucore, area)})
            budget = Budget(area=r + area, power=1e9, bandwidth=1e9)
            speedup, _ = chip.execute(
                [MixPhase(1 - f, "serial"), MixPhase(f, "fab")],
                budget,
            )
            expected = speedup_heterogeneous(f, r + area, r, ucore)
            assert speedup == pytest.approx(expected, rel=1e-9)

        check()

    def test_energy_matches_figure10_model_single_fabric(self):
        from repro.core.chip import HeterogeneousChip
        from repro.core.energy import design_energy
        from repro.core.ucore import UCore

        ucore = UCore(name="u", mu=27.4, phi=0.79)
        r, area, f = 2.0, 12.0, 0.9
        chip = MixedChip(r=r, fabrics={"fab": (ucore, area)})
        budget = Budget(area=r + area, power=1e9, bandwidth=1e9)
        energy = chip.energy(
            [MixPhase(1 - f, "serial"), MixPhase(f, "fab")],
            budget,
            rel_power=0.5,
        )
        expected = design_energy(
            HeterogeneousChip(ucore), f, r + area, r, rel_power=0.5
        )
        assert energy == pytest.approx(expected, rel=1e-9)
