"""CampaignRunner: checkpointing, resume, retries, pool equivalence.

The headline acceptance test lives here: a campaign killed mid-run and
re-invoked with resume completes without re-executing finished tasks
(execution counts are asserted via the store's write/hit counters) and
produces output bit-identical to an uninterrupted run.
"""

import pytest

from repro.campaign import runner as runner_mod
from repro.campaign.runner import CampaignReport, CampaignRunner
from repro.campaign.spec import (
    CampaignSpec,
    ParetoTask,
    SensitivityTask,
    task_hash,
)
from repro.campaign.store import ResultStore
from repro.errors import ModelError

#: A small but heterogeneous campaign: 2 figure panels, 1 Pareto
#: sweep, 1 Monte-Carlo batch.
SPEC = CampaignSpec(
    name="test",
    figures=("F8",),
    pareto=(ParetoTask(workload="mmm", f=0.99, node_nm=22),),
    sensitivity=(
        SensitivityTask(workload="mmm", f=0.99, node_nm=11, trials=10),
    ),
)


def serial_runner(store, **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("backoff_base_s", 0.0)
    return CampaignRunner(store=store, **kwargs)


class TestValidation:
    def test_bad_executor(self):
        with pytest.raises(ModelError, match="executor"):
            CampaignRunner(executor="gpu")

    def test_bad_workers(self):
        with pytest.raises(ModelError, match="workers"):
            CampaignRunner(workers=0)

    def test_bad_retries(self):
        with pytest.raises(ModelError, match="retries"):
            CampaignRunner(retries=-1)


class TestBasicRun:
    def test_executes_every_task_in_spec_order(self, tmp_path):
        store = ResultStore(tmp_path)
        report = serial_runner(store).run(SPEC)
        assert [o.task for o in report.outcomes] == list(SPEC.tasks())
        assert (report.executed, report.cached, report.failed) == (4, 0, 0)
        assert report.ok
        assert store.stats().writes == 4

    def test_result_payloads_have_their_kind(self, tmp_path):
        report = serial_runner(ResultStore(tmp_path)).run(SPEC)
        kinds = [o.result["kind"] for o in report.outcomes]
        assert kinds == ["figure", "figure", "pareto", "sensitivity"]
        figure = report.outcomes[0].result
        assert figure["winner"]["design"] == "ASIC"
        sens = report.outcomes[3].result
        assert sens["trials"] == 10
        assert sum(sens["win_counts"].values()) == 10

    def test_rerun_is_all_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        first = serial_runner(store).run(SPEC)
        second = serial_runner(store).run(SPEC)
        assert (second.executed, second.cached) == (0, 4)
        assert second.results_json() == first.results_json()
        assert store.stats().writes == 4  # nothing was re-stored

    def test_resume_false_recomputes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        serial_runner(store).run(SPEC)
        again = serial_runner(store, resume=False).run(SPEC)
        assert (again.executed, again.cached) == (4, 0)

    def test_progress_callback_sees_every_task(self, tmp_path):
        seen = []
        runner = serial_runner(
            ResultStore(tmp_path),
            progress=lambda o, done, total: seen.append(
                (o.status, done, total)
            ),
        )
        runner.run(SPEC)
        assert len(seen) == 4
        assert seen[-1][1:] == (4, 4)


class TestInterruptAndResume:
    """Kill mid-run, resume, demand bit-identical output."""

    def test_killed_campaign_resumes_without_reexecution(
        self, tmp_path, monkeypatch
    ):
        # Reference: an uninterrupted run into its own fresh store.
        reference = serial_runner(
            ResultStore(tmp_path / "reference")
        ).run(SPEC)

        # Interrupted run: the real executor dies after 2 tasks, as if
        # the process were killed.
        store = ResultStore(tmp_path / "victim")
        real_execute = runner_mod.execute_task
        calls = {"n": 0}

        def dying_execute(task):
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "execute_task", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            serial_runner(store).run(SPEC)
        monkeypatch.setattr(runner_mod, "execute_task", real_execute)

        # The two finished tasks were checkpointed before the kill...
        assert store.stats().writes == 2
        manifest = serial_runner(store).read_manifest(SPEC)
        assert len(manifest["completed"]) == 2
        assert manifest["total"] == 4

        # ...and the resume executes ONLY the remaining two (asserted
        # via the store: exactly 2 new writes, 2 hits).
        resumed = serial_runner(store).run(SPEC)
        assert (resumed.executed, resumed.cached, resumed.failed) == (
            2, 2, 0
        )
        assert store.stats().writes == 4

        # Resumed output is bit-identical to the uninterrupted run.
        assert resumed.results_json() == reference.results_json()

    def test_manifest_reaches_complete_state(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = serial_runner(store)
        runner.run(SPEC)
        manifest = runner.read_manifest(SPEC)
        assert manifest["spec_hash"] == SPEC.spec_hash()
        assert sorted(manifest["tasks"]) == manifest["completed"]
        assert manifest["spec"] == SPEC.payload()


class TestRetries:
    def test_flaky_task_retries_until_success(self, tmp_path, monkeypatch):
        real_execute = runner_mod.execute_task
        failures = {"left": 2}

        def flaky_execute(task):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient flake")
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "execute_task", flaky_execute)
        spec = CampaignSpec(
            pareto=(ParetoTask(workload="mmm", f=0.99, node_nm=22),)
        )
        report = serial_runner(
            ResultStore(tmp_path), retries=2
        ).run(spec)
        assert report.ok
        assert report.outcomes[0].attempts == 3

    def test_exhausted_retries_mark_failed_without_aborting(
        self, tmp_path, monkeypatch
    ):
        real_execute = runner_mod.execute_task

        def poisoned_execute(task):
            if task.kind == "pareto":
                raise RuntimeError("permanently broken")
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "execute_task", poisoned_execute)
        report = serial_runner(
            ResultStore(tmp_path), retries=1
        ).run(SPEC)
        assert not report.ok
        assert (report.executed, report.failed) == (3, 1)
        bad = [o for o in report.outcomes if o.status == "failed"][0]
        assert bad.task.kind == "pareto"
        assert "permanently broken" in bad.error
        assert bad.attempts == 2
        assert bad.result is None

    def test_backoff_schedule_is_exponential_and_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            runner_mod.time, "sleep", lambda s: sleeps.append(s)
        )

        def always_fails(task):
            raise RuntimeError("nope")

        monkeypatch.setattr(runner_mod, "execute_task", always_fails)
        with pytest.raises(RuntimeError):
            runner_mod._run_with_retries(
                SPEC.tasks()[0], retries=4,
                backoff_base_s=0.1, backoff_cap_s=0.5,
            )
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5])


class TestPoolEquivalence:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pools_match_serial_bit_for_bit(self, tmp_path, executor):
        serial = serial_runner(ResultStore(tmp_path / "serial")).run(SPEC)
        pooled = CampaignRunner(
            store=ResultStore(tmp_path / executor),
            workers=2,
            executor=executor,
        ).run(SPEC)
        assert pooled.results_json() == serial.results_json()
        assert [o.status for o in pooled.outcomes] == ["executed"] * 4

    def test_workers_one_forces_serial(self, tmp_path):
        report = CampaignRunner(
            store=ResultStore(tmp_path), workers=1, executor="process"
        ).run(SPEC)
        assert report.executed == 4


class TestSensitivityDeterminism:
    """Fixed seed => identical summaries, regardless of worker count."""

    SENS_SPEC = CampaignSpec(
        sensitivity=(
            SensitivityTask(workload="mmm", f=0.99, node_nm=11,
                            trials=25, seed=7),
            SensitivityTask(workload="fft", f=0.99, node_nm=11,
                            fft_size=1024, trials=25, seed=7),
            SensitivityTask(workload="bs", f=0.9, node_nm=11,
                            trials=25, seed=7),
        )
    )

    def test_identical_across_runs(self, tmp_path):
        a = serial_runner(ResultStore(tmp_path / "a")).run(self.SENS_SPEC)
        b = serial_runner(ResultStore(tmp_path / "b")).run(self.SENS_SPEC)
        assert a.results_json() == b.results_json()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_across_worker_counts(self, tmp_path, workers):
        serial = serial_runner(
            ResultStore(tmp_path / "serial")
        ).run(self.SENS_SPEC)
        pooled = CampaignRunner(
            store=ResultStore(tmp_path / f"w{workers}"),
            workers=workers,
            executor="thread",
        ).run(self.SENS_SPEC)
        assert pooled.results_json() == serial.results_json()

    def test_seed_changes_the_outcome(self, tmp_path):
        reseeded = CampaignSpec(
            sensitivity=(
                SensitivityTask(workload="mmm", f=0.99, node_nm=11,
                                trials=25, seed=8),
            )
        )
        base = CampaignSpec(
            sensitivity=(
                SensitivityTask(workload="mmm", f=0.99, node_nm=11,
                                trials=25, seed=7),
            )
        )
        a = serial_runner(ResultStore(tmp_path / "a")).run(base)
        b = serial_runner(ResultStore(tmp_path / "b")).run(reseeded)
        assert a.results_json() != b.results_json()


class TestReport:
    def test_results_mapping_keyed_by_task(self, tmp_path):
        from dataclasses import asdict

        report = serial_runner(ResultStore(tmp_path)).run(SPEC)
        results = report.results()
        for task in SPEC.tasks():
            assert results[task]["kind"] == task.kind
            assert results[task]["task"] == asdict(task)

    def test_empty_report_counts(self):
        report = CampaignReport(spec=SPEC)
        assert (report.executed, report.cached, report.failed) == (0, 0, 0)
        assert report.ok
