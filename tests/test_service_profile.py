"""``GET /v1/profile`` and its consumers: endpoint semantics, the
shared-sampler lifecycle across service instances (the SIGTERM drain
path releases it through ``close()``), the watch loss footer, and the
CLI surfaces (``profile``, ``metrics-dump`` sections).
"""

import asyncio
import json

import pytest

from repro.cli import main
from repro.obs.prof import get_sampler, parse_folded_line
from repro.service.app import ModelService, ServiceConfig
from repro.service.events import sse_end_frame, telemetry_loss
from repro.service.http import TextPayload
from repro.service.watch import SSEFrame, WatchState, _apply, render_event


def _run(coro):
    return asyncio.run(coro)


def _service(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ModelService(ServiceConfig(**defaults))


class TestProfileEndpoint:
    def test_json_capture_has_folded_and_top(self):
        async def main_():
            service = _service()
            try:
                return await service.handle(
                    "GET", "/v1/profile?seconds=0.05&format=json"
                )
            finally:
                service.close()

        status, payload = _run(main_())
        assert status == 200
        assert payload["format"] == "folded"
        assert payload["hz"] > 0
        assert payload["duration_s"] >= 0.05
        assert isinstance(payload["folded"], list)
        assert isinstance(payload["top"], list)
        for line in payload["folded"]:
            parse_folded_line(line)  # every line must parse

    def test_seconds_zero_returns_everything_since_start(self):
        async def main_():
            service = _service()
            try:
                await asyncio.sleep(0.05)
                return await service.handle("GET", "/v1/profile?seconds=0")
            finally:
                service.close()

        status, payload = _run(main_())
        assert status == 200
        assert payload["samples"] >= 1

    def test_folded_format_is_plain_text(self):
        async def main_():
            service = _service()
            try:
                return await service.handle(
                    "GET", "/v1/profile?seconds=0.05&format=folded"
                )
            finally:
                service.close()

        status, payload = _run(main_())
        assert status == 200
        assert isinstance(payload, TextPayload)
        assert payload.content_type.startswith("text/plain")
        for line in str(payload).splitlines():
            parse_folded_line(line)

    def test_disabled_profiler_answers_503(self):
        async def main_():
            service = _service(profile=False)
            try:
                assert service.sampler is None
                return await service.handle("GET", "/v1/profile")
            finally:
                service.close()

        status, payload = _run(main_())
        assert status == 503
        assert "profiler" in payload["message"]

    @pytest.mark.parametrize(
        "query",
        ["seconds=nan-ish", "seconds=-1", "seconds=61", "format=svg"],
    )
    def test_bad_arguments_answer_400(self, query):
        async def main_():
            service = _service()
            try:
                return await service.handle(
                    "GET", f"/v1/profile?{query}"
                )
            finally:
                service.close()

        status, _payload = _run(main_())
        assert status == 400


class TestSamplerLifecycle:
    def test_services_share_one_sampler_until_last_close(self):
        assert get_sampler() is None
        a = _service()
        b = _service()
        try:
            assert a.sampler is b.sampler
            assert a.sampler.running
        finally:
            a.close()
            assert get_sampler() is not None  # b still holds it
            b.close()
        # The drain path (serve_until -> service.close on SIGTERM)
        # released the last reference: the daemon thread is gone.
        assert get_sampler() is None

    def test_close_is_idempotent_about_the_reference(self):
        service = _service()
        service.close()
        service.close()  # second close must not over-release
        assert get_sampler() is None


class TestWatchLossFooter:
    def _end_frame(self, loss):
        raw = sse_end_frame("s1", loss=loss).decode("utf-8")
        data = [
            line[len("data: "):]
            for line in raw.splitlines()
            if line.startswith("data: ")
        ][0]
        return SSEFrame(seq=None, kind="stream.end", data=data)

    def test_loss_counters_fold_into_state(self):
        state = WatchState(stream="s1")
        frame = self._end_frame(
            {"events_trimmed": 7, "trace_spans_dropped": 3}
        )
        _apply(state, frame)
        assert state.finished
        assert state.events_trimmed == 7
        assert state.spans_dropped == 3
        line = render_event(state, frame)
        assert "7 event(s) trimmed" in line
        assert "3 span(s) evicted" in line

    def test_zero_loss_after_finished_job_renders_nothing(self):
        state = WatchState(stream="s1")
        state.final_state = "succeeded"
        frame = self._end_frame(
            {"events_trimmed": 0, "trace_spans_dropped": 0}
        )
        _apply(state, frame)
        assert render_event(state, frame) is None

    def test_loss_footer_after_finished_job(self):
        state = WatchState(stream="s1")
        state.final_state = "succeeded"
        frame = self._end_frame(
            {"events_trimmed": 2, "trace_spans_dropped": 0}
        )
        _apply(state, frame)
        line = render_event(state, frame)
        assert "2 event(s) trimmed" in line

    def test_telemetry_loss_since_marker_is_a_delta(self):
        from repro.obs.stream import EventBus

        bus = EventBus()
        before = telemetry_loss(bus)
        after = telemetry_loss(bus, since=before)
        assert after == {
            "events_trimmed": 0,
            "trace_spans_dropped": 0,
        }


class TestCLISurfaces:
    def test_profile_rejects_out_of_range_seconds(self, capsys):
        code = main(["profile", "http://127.0.0.1:1", "--seconds", "99"])
        assert code == 2
        assert "[0, 60]" in capsys.readouterr().err

    def test_profile_unreachable_server_fails_cleanly(self, capsys):
        code = main(
            ["profile", "http://127.0.0.1:9", "--seconds", "0"]
        )
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_metrics_dump_includes_slo_and_dse_sections(self, capsys):
        assert main(["metrics-dump"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "slo" in payload
        assert "dse" in payload
        assert set(payload["dse"]) >= {"accepted", "rejected"}
        assert "objectives" in payload["slo"] or payload["slo"]
