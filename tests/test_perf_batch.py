"""Differential tests: the batched sweep must match the scalar one.

Bit-for-bit equality is the contract -- every ``DesignPoint`` field,
including the floats, compared with ``==`` (no tolerance).  The grid
covers all standard designs, every roadmap node of every scenario the
paper studies, and the paper's f values; infeasible cells must map a
scalar ``InfeasibleDesignError`` (or exhausted candidate list) to a
batch ``None``.  A hypothesis property extends the same check to
random budgets far off the calibrated grid.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chip import (
    AsymmetricCMP,
    AsymmetricOffloadCMP,
    DynamicCMP,
    HeterogeneousAssistedChip,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget
from repro.core.optimizer import optimize, sweep_designs
from repro.core.ucore import UCore
from repro.errors import InfeasibleDesignError
from repro.itrs.scenarios import get_scenario, scenario_names
from repro.perf.batch import (
    optimize_batch,
    optimize_prefix_batch,
    sweep_designs_batch,
)
from repro.projection.designs import standard_designs
from repro.projection.engine import node_budget

WORKLOADS = (("fft", 1024), ("mmm", None), ("bs", None))
F_VALUES = (0.0, 0.5, 0.9, 0.99, 0.999, 1.0)


def _all_chips():
    """One instance of every chip model, including U-core variants."""
    gpu = UCore(name="gpu-like", mu=3.0, phi=0.6, kind="gpu")
    asic = UCore(name="asic-like", mu=500.0, phi=5.0, kind="asic")
    return [
        SymmetricCMP(),
        AsymmetricCMP(),
        AsymmetricOffloadCMP(),
        DynamicCMP(),
        HeterogeneousChip(gpu),
        HeterogeneousChip(asic),
        HeterogeneousAssistedChip(gpu),
    ]


def _scalar_optimize(chip, f, budget):
    """Scalar optimize with infeasibility mapped to None (batch's
    convention)."""
    try:
        return optimize(chip, f, budget)
    except InfeasibleDesignError:
        return None


class TestOptimizeBatchMatchesScalar:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    @pytest.mark.parametrize("workload,size", WORKLOADS)
    @pytest.mark.parametrize("f", (0.5, 0.99, 0.999))
    def test_paper_grid(self, scenario_name, workload, size, f):
        """Every standard design at every node, full point equality."""
        scenario = get_scenario(scenario_name)
        for design in standard_designs(workload, size):
            budgets = [
                node_budget(
                    node, workload, size, scenario,
                    bandwidth_exempt=design.bandwidth_exempt,
                )
                for node in scenario.roadmap.nodes
            ]
            batch = optimize_batch(design.chip, f, budgets)
            scalar = [
                _scalar_optimize(design.chip, f, b) for b in budgets
            ]
            assert batch == scalar

    def test_infeasible_budgets_map_to_none(self):
        """Cells where the scalar path raises must come back as None,
        without aborting the feasible cells around them."""
        chip = HeterogeneousChip(
            UCore(name="gpu-like", mu=3.0, phi=0.6, kind="gpu")
        )
        budgets = [
            Budget(area=19.0, power=10.0, bandwidth=42.0),  # feasible
            Budget(area=100.0, power=0.5),  # serial power forbids r=1
            Budget(area=1.0, power=1e9),  # no room for any U-core
            Budget(area=100.0, power=1e9, bandwidth=0.2),  # serial bw
        ]
        points = optimize_batch(chip, 0.99, budgets)
        assert points[0] is not None
        assert points[1] is None
        assert points[2] is None
        assert points[3] is None
        assert points == [
            _scalar_optimize(chip, 0.99, b) for b in budgets
        ]

    @pytest.mark.parametrize("f", F_VALUES)
    def test_edge_fractions_all_models(self, f, basic_budget,
                                       roomy_budget):
        for chip in _all_chips():
            for budget in (basic_budget, roomy_budget):
                assert optimize_batch(chip, f, [budget]) == [
                    _scalar_optimize(chip, f, budget)
                ]

    def test_infinite_speedup_point_survives(self):
        """f=1 with a huge budget: speedup=inf is a result, not None."""
        budget = Budget(area=1e6, power=1e6, bandwidth=1e6)
        [point] = optimize_batch(SymmetricCMP(), 1.0, [budget])
        assert point is not None
        assert point == optimize(SymmetricCMP(), 1.0, budget)

    def test_empty_budget_list(self):
        assert optimize_batch(SymmetricCMP(), 0.5, []) == []

    def test_explicit_r_values(self, basic_budget):
        chip = AsymmetricOffloadCMP()
        r_values = [1.0, 2.0, 4.0, 7.5, 16.0]
        batch = optimize_batch(
            chip, 0.9, [basic_budget], r_values=r_values
        )
        scalar = optimize(chip, 0.9, basic_budget, r_values=r_values)
        assert batch == [scalar]


class TestSweepMatchesScalar:
    @pytest.mark.parametrize("f", (0.0, 0.5, 0.999, 1.0))
    def test_all_models(self, f, basic_budget, roomy_budget):
        for chip in _all_chips():
            for budget in (basic_budget, roomy_budget):
                assert sweep_designs_batch(chip, f, budget) == (
                    sweep_designs(chip, f, budget)
                )

    def test_order_is_ascending_r(self, basic_budget):
        points = sweep_designs_batch(SymmetricCMP(), 0.9, basic_budget)
        assert [p.r for p in points] == sorted(p.r for p in points)


@given(
    area=st.floats(0.5, 1e4),
    power=st.floats(0.5, 1e4),
    bandwidth=st.one_of(
        st.just(math.inf), st.floats(0.5, 1e4)
    ),
    alpha=st.floats(1.0, 3.0),
    f=st.sampled_from(F_VALUES),
    chip_index=st.integers(0, len(_all_chips()) - 1),
)
@settings(max_examples=150, deadline=None)
def test_random_budget_parity(area, power, bandwidth, alpha, f,
                              chip_index):
    """optimize_batch == optimize on arbitrary budgets, or both
    infeasible."""
    budget = Budget(
        area=area, power=power, bandwidth=bandwidth, alpha=alpha
    )
    chip = _all_chips()[chip_index]
    assert optimize_batch(chip, f, [budget]) == [
        _scalar_optimize(chip, f, budget)
    ]


class TestPrefixBatchMatchesBatch:
    """optimize_prefix_batch must equal a fresh optimize_batch call
    for every r_max -- same bit-for-bit contract as the scalar tests
    above.  This is the equality the tensor materializer rests on."""

    R_MAXES = tuple(range(1, 17))

    @pytest.mark.parametrize("workload,size", WORKLOADS)
    @pytest.mark.parametrize("f", (0.0, 0.5, 0.99, 0.999, 1.0))
    def test_paper_grid_every_r_max(self, workload, size, f):
        scenario = get_scenario("baseline")
        for design in standard_designs(workload, size):
            budgets = [
                node_budget(
                    node, workload, size, scenario,
                    bandwidth_exempt=design.bandwidth_exempt,
                )
                for node in scenario.roadmap.nodes
            ]
            prefix = optimize_prefix_batch(
                design.chip, f, budgets, self.R_MAXES
            )
            for r_max in self.R_MAXES:
                assert prefix[r_max] == optimize_batch(
                    design.chip, f, budgets, r_max=r_max
                )

    def test_all_models_basic_budget(self, basic_budget):
        for chip in _all_chips():
            prefix = optimize_prefix_batch(
                chip, 0.9, [basic_budget], self.R_MAXES
            )
            for r_max in self.R_MAXES:
                assert prefix[r_max] == optimize_batch(
                    chip, 0.9, [basic_budget], r_max=r_max
                )

    def test_infeasible_cells_match(self):
        chip = HeterogeneousChip(
            UCore(name="gpu-like", mu=3.0, phi=0.6, kind="gpu")
        )
        budgets = [
            Budget(area=19.0, power=10.0, bandwidth=42.0),
            Budget(area=100.0, power=0.5),
            Budget(area=1.0, power=1e9),
        ]
        prefix = optimize_prefix_batch(chip, 0.99, budgets, (1, 4, 16))
        for r_max in (1, 4, 16):
            assert prefix[r_max] == optimize_batch(
                chip, 0.99, budgets, r_max=r_max
            )

    def test_empty_inputs(self):
        assert optimize_prefix_batch(SymmetricCMP(), 0.5, [], (1, 2)) == {
            1: [], 2: [],
        }
        assert optimize_prefix_batch(
            SymmetricCMP(), 0.5, [Budget(area=10.0, power=10.0)], ()
        ) == {}
