"""JobManager lifecycle and the /v1/jobs service endpoints."""

import asyncio
import json

import pytest

from repro.campaign.jobs import JobManager, JobState
from repro.campaign.spec import CampaignSpec, SensitivityTask
from repro.campaign.store import ResultStore
from repro.errors import ModelError
from repro.service.app import ModelService, ServiceConfig
from repro.service.metrics import ServiceMetrics

SMALL_SPEC = CampaignSpec(
    figures=("F8",),
    sensitivity=(
        SensitivityTask(workload="mmm", f=0.99, node_nm=11, trials=5),
    ),
)


def run(coro):
    return asyncio.run(coro)


class TestJobManager:
    def test_submit_runs_to_success(self, tmp_path):
        manager = JobManager(store=ResultStore(tmp_path))
        record = manager.submit(SMALL_SPEC)
        assert record.job_id.startswith("job-0001-")
        assert manager.join(timeout=60)
        assert record.state == JobState.SUCCEEDED
        payload = manager.payload(record)
        assert payload["progress"] == {
            "total": 3, "done": 3, "executed": 3, "cached": 0,
            "failed": 0,
        }
        assert [t["status"] for t in payload["tasks"]] == ["executed"] * 3
        assert len(payload["results"]) == 3
        manager.close()

    def test_resubmitted_spec_resumes_from_the_shared_store(
        self, tmp_path
    ):
        manager = JobManager(store=ResultStore(tmp_path))
        manager.submit(SMALL_SPEC)
        assert manager.join(timeout=60)
        second = manager.submit(SMALL_SPEC)
        assert manager.join(timeout=60)
        payload = manager.payload(second)
        assert payload["state"] == JobState.SUCCEEDED
        assert payload["progress"]["cached"] == 3
        assert payload["progress"]["executed"] == 0
        manager.close()

    def test_invalid_spec_fails_the_submit_not_the_job(self, tmp_path):
        manager = JobManager(store=ResultStore(tmp_path))
        with pytest.raises(ModelError, match="F42"):
            manager.submit(CampaignSpec(figures=("F42",)))
        assert manager.stats()["total"] == 0
        manager.close()

    def test_metrics_observe_job_lifecycle(self, tmp_path):
        metrics = ServiceMetrics()
        manager = JobManager(
            store=ResultStore(tmp_path), metrics=metrics
        )
        manager.submit(SMALL_SPEC)
        assert manager.join(timeout=60)
        jobs = metrics.snapshot()["jobs"]
        assert jobs[JobState.QUEUED] == 1
        assert jobs[JobState.SUCCEEDED] == 1
        manager.close()

    def test_stats_surface_store_counters(self, tmp_path):
        manager = JobManager(store=ResultStore(tmp_path))
        manager.submit(SMALL_SPEC)
        assert manager.join(timeout=60)
        stats = manager.stats()
        assert stats["states"] == {JobState.SUCCEEDED: 1}
        assert stats["store"]["writes"] == 3
        manager.close()

    def test_closed_manager_rejects_submissions(self, tmp_path):
        manager = JobManager(store=ResultStore(tmp_path))
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(SMALL_SPEC)
        manager.close()  # idempotent

    def test_list_payload_ordered_without_results(self, tmp_path):
        manager = JobManager(store=ResultStore(tmp_path))
        a = manager.submit(SMALL_SPEC)
        b = manager.submit(SMALL_SPEC)
        assert manager.join(timeout=60)
        listing = manager.list_payload()
        assert [p["job_id"] for p in listing] == [a.job_id, b.job_id]
        assert all("results" not in p for p in listing)
        manager.close()


JOB_BODY = json.dumps(
    {
        "figures": ["F8"],
        "sensitivity": [
            {"workload": "mmm", "f": 0.99, "node_nm": 11, "trials": 5}
        ],
    }
).encode()


async def _submit_and_wait(service, body=JOB_BODY, deadline_s=60.0):
    status, payload = await service.handle("POST", "/v1/jobs", body)
    assert status == 202
    job_id = payload["job_id"]
    for _ in range(int(deadline_s / 0.02)):
        status, payload = await service.handle(
            "GET", f"/v1/jobs/{job_id}"
        )
        assert status == 200
        if payload["state"] in JobState.TERMINAL:
            return payload
        await asyncio.sleep(0.02)
    raise AssertionError(f"job never settled: {payload}")


class TestJobsEndpoints:
    def make_service(self, tmp_path):
        return ModelService(
            ServiceConfig(store_dir=str(tmp_path), drain_timeout_s=1.0)
        )

    def test_post_then_poll_to_success(self, tmp_path):
        service = self.make_service(tmp_path)

        async def main():
            payload = await _submit_and_wait(service)
            assert payload["state"] == JobState.SUCCEEDED
            assert payload["progress"]["total"] == 3
            kinds = [r["kind"] for r in payload["results"]]
            assert kinds == ["figure", "figure", "sensitivity"]

        try:
            run(main())
        finally:
            service.close()

    def test_jobs_survive_in_the_store_across_services(self, tmp_path):
        first = self.make_service(tmp_path)
        try:
            run(_submit_and_wait(first))
        finally:
            first.close()
        # A new service over the same store resumes, not recomputes.
        second = self.make_service(tmp_path)

        async def main():
            payload = await _submit_and_wait(second)
            assert payload["progress"]["cached"] == 3
            assert payload["progress"]["executed"] == 0

        try:
            run(main())
        finally:
            second.close()

    def test_get_unknown_job_is_404(self, tmp_path):
        service = self.make_service(tmp_path)

        async def main():
            status, payload = await service.handle(
                "GET", "/v1/jobs/job-9999-deadbeef"
            )
            assert status == 404
            assert "job-9999-deadbeef" in payload["message"]

        try:
            run(main())
        finally:
            service.close()

    def test_bad_spec_is_400(self, tmp_path):
        service = self.make_service(tmp_path)

        async def main():
            status, payload = await service.handle(
                "POST", "/v1/jobs", b'{"figures": ["F42"]}'
            )
            assert status == 400
            assert "F42" in payload["message"]
            status, payload = await service.handle(
                "POST", "/v1/jobs", b'{}'
            )
            assert status == 400
            assert "empty campaign" in payload["message"]
            status, payload = await service.handle(
                "POST",
                "/v1/jobs",
                json.dumps(
                    {"sensitivity": [
                        {"workload": "mmm", "f": 0.5,
                         "trials": 10_000_000}
                    ]}
                ).encode(),
            )
            assert status == 400
            assert "trials" in payload["message"]

        try:
            run(main())
        finally:
            service.close()

    def test_jobs_listing_and_method_guards(self, tmp_path):
        service = self.make_service(tmp_path)

        async def main():
            await _submit_and_wait(service)
            status, listing = await service.handle("GET", "/v1/jobs")
            assert status == 200
            assert len(listing["jobs"]) == 1
            status, payload = await service.handle(
                "DELETE", "/v1/jobs"
            )
            assert status == 405
            status, payload = await service.handle(
                "POST", "/v1/jobs/job-0001-whatever"
            )
            assert status == 405

        try:
            run(main())
        finally:
            service.close()

    def test_metrics_include_campaign_sections(self, tmp_path):
        service = self.make_service(tmp_path)

        async def main():
            await _submit_and_wait(service)
            status, metrics = await service.handle("GET", "/metrics")
            assert status == 200
            assert metrics["campaign"]["states"] == {
                JobState.SUCCEEDED: 1
            }
            store = metrics["campaign"]["store"]
            assert store["writes"] == 3
            assert metrics["jobs"][JobState.SUCCEEDED] == 1
            # The perf-cache layer is surfaced too (model-layer
            # memoization, distinct from the response cache).
            perf = metrics["perf_cache"]
            assert set(perf) == {"caches", "hits", "misses", "entries"}
            assert perf["caches"] >= 1

        try:
            run(main())
        finally:
            service.close()
