"""Tests for the self-validation report and its CLI command."""

import pytest

from repro.cli import main
from repro.reporting.validation import (
    ClaimResult,
    render_validation_report,
    validate_claims,
)


class TestValidateClaims:
    @pytest.fixture(scope="class")
    def results(self):
        return validate_claims()

    def test_all_claims_hold(self, results):
        failing = [r.claim_id for r in results if not r.passed]
        assert not failing, failing

    def test_claim_ids(self, results):
        assert [r.claim_id for r in results] == [
            "C1", "C2", "C3", "C4", "S6.1",
        ]

    def test_evidence_is_quantitative(self, results):
        for r in results:
            assert any(ch.isdigit() for ch in r.evidence), r.claim_id


class TestRenderReport:
    def test_report_structure(self):
        text = render_validation_report()
        assert "PASS" in text
        assert "5/5 claims hold." in text
        assert "FAIL" not in text

    def test_render_with_failure(self):
        fake = [
            ClaimResult("X1", "made-up claim", False, "evidence: 0"),
            ClaimResult("X2", "true claim", True, "evidence: 1"),
        ]
        text = render_validation_report(fake)
        assert "[FAIL] X1" in text
        assert "1/2 claims hold." in text
        assert "1 FAILED" in text


class TestCliValidate:
    def test_exit_zero_when_all_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "5/5 claims hold." in out
