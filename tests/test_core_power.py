"""Unit tests for repro.core.power (Pollack + power laws)."""

import math

import pytest

from repro.core.power import (
    DEFAULT_ALPHA,
    SCENARIO_HIGH_ALPHA,
    max_r_for_serial_bandwidth,
    max_r_for_serial_power,
    perf_to_power,
    pollack_area,
    pollack_perf,
    power_to_perf,
    seq_power,
)
from repro.errors import ModelError


class TestPollack:
    def test_unit_core(self):
        assert pollack_perf(1.0) == pytest.approx(1.0)

    def test_four_bce_doubles_perf(self):
        assert pollack_perf(4.0) == pytest.approx(2.0)

    def test_paper_fast_core(self):
        # r = 2 gives the Core i7's sqrt(2) relative performance.
        assert pollack_perf(2.0) == pytest.approx(math.sqrt(2.0))

    def test_area_inverts_perf(self):
        for r in (1.0, 2.0, 7.5, 16.0):
            assert pollack_area(pollack_perf(r)) == pytest.approx(r)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            pollack_perf(0.0)
        with pytest.raises(ModelError):
            pollack_area(-1.0)


class TestPowerLaw:
    def test_default_alpha_value(self):
        assert DEFAULT_ALPHA == 1.75
        assert SCENARIO_HIGH_ALPHA == 2.25

    def test_power_of_unit_perf(self):
        assert perf_to_power(1.0) == pytest.approx(1.0)

    def test_superlinear(self):
        assert perf_to_power(2.0) == pytest.approx(2.0**1.75)

    def test_power_to_perf_inverts(self):
        for p in (0.5, 1.0, 3.0, 100.0):
            assert perf_to_power(power_to_perf(p)) == pytest.approx(p)

    def test_alpha_validation(self):
        with pytest.raises(ModelError):
            perf_to_power(2.0, alpha=0.5)

    def test_rejects_nonpositive_perf(self):
        with pytest.raises(ModelError):
            perf_to_power(0.0)


class TestSeqPower:
    def test_bce_consumes_unit_power(self):
        assert seq_power(1.0) == pytest.approx(1.0)

    def test_matches_composition_of_laws(self):
        for r in (2.0, 4.0, 9.0, 16.0):
            assert seq_power(r) == pytest.approx(
                perf_to_power(pollack_perf(r))
            )

    def test_paper_fast_core_power(self):
        # r = 2: 2^(1.75/2) ~= 1.834 BCE power units.
        assert seq_power(2.0) == pytest.approx(2.0**0.875)

    def test_higher_alpha_costs_more(self):
        assert seq_power(8.0, alpha=2.25) > seq_power(8.0, alpha=1.75)


class TestSerialBounds:
    def test_power_bound_inverts_seq_power(self):
        budget = 10.0
        r_max = max_r_for_serial_power(budget)
        assert seq_power(r_max) == pytest.approx(budget)

    def test_power_bound_paper_value(self):
        # P = 10 -> r <= 10^(2/1.75) ~= 13.9: the reason the f=0.9
        # projections never reach the r=16 sweep ceiling at 40nm.
        assert max_r_for_serial_power(10.0) == pytest.approx(
            10.0 ** (2.0 / 1.75)
        )

    def test_bandwidth_bound_is_square(self):
        assert max_r_for_serial_bandwidth(3.0) == pytest.approx(9.0)

    def test_bandwidth_bound_consistency(self):
        # A core at the bound consumes exactly B units of bandwidth.
        bound = max_r_for_serial_bandwidth(5.0)
        assert pollack_perf(bound) == pytest.approx(5.0)

    @pytest.mark.parametrize("func", [
        max_r_for_serial_power, max_r_for_serial_bandwidth,
    ])
    def test_rejects_nonpositive_budget(self, func):
        with pytest.raises(ModelError):
            func(0.0)
