"""CampaignSpec expansion, task hashing, and payload round-trips."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    FigureTask,
    MaterializeTask,
    ParetoTask,
    SensitivityTask,
    canonical_json,
    task_hash,
)
from repro.errors import ModelError
from repro.perf.grid import CAMPAIGN_FIGURES
from repro.projection.engine import PAPER_F_VALUES


class TestExpansion:
    def test_figures_expand_in_paper_order(self):
        spec = CampaignSpec(figures=("F6", "F7"))
        tasks = spec.tasks()
        assert len(tasks) == 2 * len(PAPER_F_VALUES)
        assert [t.figure for t in tasks[:4]] == ["F6"] * 4
        assert tuple(t.f for t in tasks[:4]) == PAPER_F_VALUES
        assert all(t.kind == "figure" for t in tasks)

    def test_mixed_spec_orders_figures_pareto_sensitivity(self):
        spec = CampaignSpec(
            figures=("F8",),
            pareto=(ParetoTask(workload="mmm", f=0.99),),
            sensitivity=(SensitivityTask(workload="bs", f=0.9, trials=5),),
        )
        kinds = [t.kind for t in spec.tasks()]
        assert kinds == ["figure", "figure", "pareto", "sensitivity"]

    def test_expansion_is_deterministic(self):
        spec = CampaignSpec(figures=("F6", "F8"))
        assert spec.tasks() == spec.tasks()
        assert [task_hash(t) for t in spec.tasks()] == [
            task_hash(t) for t in CampaignSpec(figures=("F6", "F8")).tasks()
        ]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ModelError, match="F42"):
            CampaignSpec(figures=("F42",)).tasks()
        assert sorted(CAMPAIGN_FIGURES) == ["F6", "F7", "F8", "F9"]

    def test_empty_spec_rejected(self):
        with pytest.raises(ModelError, match="empty campaign"):
            CampaignSpec()

    def test_bad_method_rejected(self):
        with pytest.raises(ModelError, match="method"):
            CampaignSpec(figures=("F6",), method="quantum")

    @pytest.mark.parametrize("task", [
        ParetoTask(workload="nope", f=0.5),
        ParetoTask(workload="mmm", f=1.5),
        ParetoTask(workload="mmm", f=0.5, scenario="utopia"),
        ParetoTask(workload="mmm", f=0.5, fft_size=1024),
        SensitivityTask(workload="mmm", f=0.5, trials=0),
    ])
    def test_out_of_domain_task_fields_rejected(self, task):
        spec = (
            CampaignSpec(pareto=(task,))
            if isinstance(task, ParetoTask)
            else CampaignSpec(sensitivity=(task,))
        )
        with pytest.raises(ModelError):
            spec.tasks()


class TestHashing:
    def test_hash_is_stable_across_instances(self):
        a = FigureTask(figure="F6", workload="fft", f=0.99,
                       fft_size=1024)
        b = FigureTask(figure="F6", workload="fft", f=0.99,
                       fft_size=1024)
        assert a == b
        assert task_hash(a) == task_hash(b)
        assert len(task_hash(a)) == 64  # sha256 hex

    def test_any_field_change_changes_the_hash(self):
        base = SensitivityTask(workload="mmm", f=0.99, trials=10)
        variants = [
            SensitivityTask(workload="bs", f=0.99, trials=10),
            SensitivityTask(workload="mmm", f=0.9, trials=10),
            SensitivityTask(workload="mmm", f=0.99, trials=11),
            SensitivityTask(workload="mmm", f=0.99, trials=10, seed=1),
            SensitivityTask(workload="mmm", f=0.99, trials=10,
                            mu_sigma=0.4),
        ]
        hashes = {task_hash(t) for t in [base, *variants]}
        assert len(hashes) == len(variants) + 1

    def test_different_kinds_never_collide(self):
        # Same field values, different task kind => different hash.
        pareto = ParetoTask(workload="mmm", f=0.99, node_nm=11)
        sens = SensitivityTask(workload="mmm", f=0.99, node_nm=11)
        assert task_hash(pareto) != task_hash(sens)

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1.5, None]})
        assert text == '{"a":[1.5,null],"b":1}'

    def test_spec_hash_tracks_content(self):
        a = CampaignSpec(figures=("F6",))
        b = CampaignSpec(figures=("F6",))
        c = CampaignSpec(figures=("F7",))
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != c.spec_hash()


class TestPayloadRoundTrip:
    def test_round_trip_preserves_tasks(self):
        spec = CampaignSpec(
            name="rt",
            figures=("F9",),
            pareto=(ParetoTask(workload="fft", f=0.5, fft_size=256),),
            sensitivity=(
                SensitivityTask(workload="mmm", f=0.99, trials=7,
                                seed=42),
            ),
            method="scalar",
        )
        rebuilt = CampaignSpec.from_payload(spec.payload())
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ModelError, match="sensitivty"):
            CampaignSpec.from_payload(
                {"figures": ["F6"], "sensitivty": []}
            )

    def test_bad_entry_shape_rejected(self):
        with pytest.raises(ModelError, match="pareto"):
            CampaignSpec.from_payload({"pareto": ["not-an-object"]})
        with pytest.raises(ModelError, match="pareto"):
            CampaignSpec.from_payload(
                {"pareto": [{"workload": "mmm", "f": 0.5,
                             "bogus_field": 1}]}
            )

    def test_non_mapping_rejected(self):
        with pytest.raises(ModelError, match="mapping"):
            CampaignSpec.from_payload([1, 2, 3])


class TestMaterializeTasks:
    def _task(self, **overrides):
        fields = dict(
            workload="mmm", design="ASIC", scenario="baseline",
            fft_size=None, f_grid=(0.0, 0.5, 0.99),
            r_grid=(1, 2, 3),
        )
        fields.update(overrides)
        return MaterializeTask(**fields)

    def test_round_trip_preserves_grids(self):
        spec = CampaignSpec(name="mat", materialize=(self._task(),))
        rebuilt = CampaignSpec.from_payload(spec.payload())
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()
        [task] = rebuilt.tasks()
        assert task.f_grid == (0.0, 0.5, 0.99)
        assert task.r_grid == (1, 2, 3)

    def test_hash_tracks_grid_content(self):
        base = self._task()
        assert task_hash(base) == task_hash(self._task())
        assert task_hash(base) != task_hash(
            self._task(f_grid=(0.0, 0.5, 0.999))
        )
        assert task_hash(base) != task_hash(self._task(r_grid=(1, 2)))

    def test_empty_f_grid_rejected(self):
        with pytest.raises(ModelError, match="f_grid"):
            CampaignSpec(materialize=(self._task(f_grid=()),)).tasks()

    def test_unsorted_f_grid_rejected(self):
        with pytest.raises(ModelError, match="strictly increasing"):
            CampaignSpec(
                materialize=(self._task(f_grid=(0.5, 0.1)),)
            ).tasks()

    def test_out_of_range_f_rejected(self):
        with pytest.raises(ModelError, match="parallel fraction"):
            CampaignSpec(
                materialize=(self._task(f_grid=(0.0, 1.5)),)
            ).tasks()

    def test_non_contiguous_r_grid_rejected(self):
        with pytest.raises(ModelError, match="contiguous from 1"):
            CampaignSpec(
                materialize=(self._task(r_grid=(2, 3)),)
            ).tasks()
        with pytest.raises(ModelError, match="contiguous from 1"):
            CampaignSpec(
                materialize=(self._task(r_grid=(1, 3)),)
            ).tasks()

    def test_fft_needs_explicit_size(self):
        with pytest.raises(ModelError, match="fft"):
            CampaignSpec(
                materialize=(self._task(workload="fft"),)
            ).tasks()
