"""Tests for the workload registry and base abstractions."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.base import Workload
from repro.workloads.registry import (
    TABLE3_IMPLEMENTATIONS,
    WORKLOADS,
    all_workload_names,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_three_workloads(self):
        assert workload_names() == ["mmm", "fft", "bs"]

    def test_get_workload_returns_instances(self):
        for name in workload_names():
            wl = get_workload(name)
            assert isinstance(wl, Workload)
            assert wl.name == name

    def test_unknown_workload(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("raytrace")

    def test_singletons(self):
        assert get_workload("fft") is get_workload("fft")

    def test_extension_workloads_resolvable(self):
        assert all_workload_names() == [
            "mmm", "fft", "bs", "spmv", "stencil",
        ]
        assert get_workload("spmv").name == "spmv"
        assert get_workload("stencil").name == "stencil"

    def test_extensions_not_in_paper_set(self):
        assert "spmv" not in workload_names()


class TestTable3:
    def test_covers_all_workloads(self):
        assert set(TABLE3_IMPLEMENTATIONS) == set(WORKLOADS)

    def test_missing_combinations_match_paper(self):
        # The paper could not obtain FFT/BS for the R5870 and BS for
        # the GTX480 row is a CUDA reference (present).
        assert TABLE3_IMPLEMENTATIONS["fft"]["R5870"] is None
        assert TABLE3_IMPLEMENTATIONS["bs"]["R5870"] is None
        assert TABLE3_IMPLEMENTATIONS["mmm"]["R5870"] == "CAL++"

    def test_spiral_generated_fft_hardware(self):
        assert "Spiral" in TABLE3_IMPLEMENTATIONS["fft"]["ASIC"]


class TestBaseHelpers:
    def test_performance_unit_flop(self):
        assert get_workload("mmm").performance_unit() == "GFLOP/s"
        assert get_workload("mmm").performance_unit(giga=False) == "FLOP/s"

    def test_bytes_per_op_reciprocal(self):
        fft = get_workload("fft")
        assert fft.bytes_per_op(1024) == pytest.approx(
            1.0 / fft.arithmetic_intensity(1024)
        )

    def test_work_units_default_is_ops(self):
        mmm = get_workload("mmm")
        assert mmm.work_units(64) == mmm.ops(64)

    def test_kernel_run_intensity(self):
        bs = get_workload("bs")
        run = bs.run(100)
        assert run.arithmetic_intensity == pytest.approx(
            bs.ops(100) / bs.compulsory_bytes(100)
        )
