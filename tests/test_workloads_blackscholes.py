"""Tests for the Black-Scholes workload: pricing kernel + traffic."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.workloads.blackscholes import (
    BlackScholesWorkload,
    OptionBatch,
    black_scholes_price,
    norm_cdf,
)


def single_option(spot, strike, rate, vol, expiry):
    return OptionBatch(
        spot=np.array([spot]),
        strike=np.array([strike]),
        rate=np.array([rate]),
        volatility=np.array([vol]),
        expiry=np.array([expiry]),
    )


@pytest.fixture
def bs():
    return BlackScholesWorkload()


class TestNormCdf:
    def test_symmetry_point(self):
        assert norm_cdf(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_known_value(self):
        # Phi(1.96) ~ 0.975.
        assert norm_cdf(np.array([1.96]))[0] == pytest.approx(
            0.975, abs=1e-3
        )

    def test_complementarity(self, rng):
        x = rng.standard_normal(100)
        np.testing.assert_allclose(
            norm_cdf(x) + norm_cdf(-x), 1.0, atol=1e-12
        )

    def test_monotone(self):
        x = np.linspace(-5, 5, 101)
        assert np.all(np.diff(norm_cdf(x)) >= 0)


class TestPricing:
    def test_known_value(self):
        # Classic textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
        call, put = black_scholes_price(
            single_option(100.0, 100.0, 0.05, 0.2, 1.0)
        )
        assert call[0] == pytest.approx(10.4506, abs=1e-3)
        assert put[0] == pytest.approx(5.5735, abs=1e-3)

    def test_deep_in_the_money_call(self):
        call, _ = black_scholes_price(
            single_option(1000.0, 1.0, 0.05, 0.2, 1.0)
        )
        intrinsic = 1000.0 - 1.0 * math.exp(-0.05)
        assert call[0] == pytest.approx(intrinsic, rel=1e-6)

    def test_deep_out_of_the_money_call(self):
        call, _ = black_scholes_price(
            single_option(1.0, 1000.0, 0.05, 0.2, 1.0)
        )
        assert call[0] == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        spot=st.floats(5.0, 200.0),
        strike=st.floats(5.0, 200.0),
        rate=st.floats(0.001, 0.15),
        vol=st.floats(0.05, 0.9),
        expiry=st.floats(0.05, 3.0),
    )
    def test_put_call_parity(self, spot, strike, rate, vol, expiry):
        call, put = black_scholes_price(
            single_option(spot, strike, rate, vol, expiry)
        )
        lhs = call[0] - put[0]
        rhs = spot - strike * math.exp(-rate * expiry)
        assert lhs == pytest.approx(rhs, abs=1e-8 * max(1.0, abs(rhs)))

    @settings(max_examples=30, deadline=None)
    @given(
        spot=st.floats(20.0, 180.0),
        vol1=st.floats(0.05, 0.5),
        vol2=st.floats(0.5001, 1.2),
    )
    def test_call_price_increases_with_volatility(self, spot, vol1, vol2):
        lo, _ = black_scholes_price(
            single_option(spot, 100.0, 0.05, vol1, 1.0)
        )
        hi, _ = black_scholes_price(
            single_option(spot, 100.0, 0.05, vol2, 1.0)
        )
        assert hi[0] > lo[0]

    def test_call_within_no_arbitrage_bounds(self, rng):
        batch = OptionBatch.random(500, rng)
        call, put = black_scholes_price(batch)
        discounted = batch.strike * np.exp(-batch.rate * batch.expiry)
        assert np.all(call >= np.maximum(batch.spot - discounted, 0) - 1e-9)
        assert np.all(call <= batch.spot + 1e-9)
        assert np.all(put >= 0 - 1e-9)
        assert np.all(put <= discounted + 1e-9)


class TestOptionBatch:
    def test_random_batch_shapes(self, rng):
        batch = OptionBatch.random(64, rng)
        assert len(batch) == 64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            OptionBatch(
                spot=np.ones(3),
                strike=np.ones(4),
                rate=np.ones(3) * 0.05,
                volatility=np.ones(3) * 0.2,
                expiry=np.ones(3),
            )

    def test_nonpositive_parameters_rejected(self):
        with pytest.raises(ModelError):
            single_option(-1.0, 100.0, 0.05, 0.2, 1.0)
        with pytest.raises(ModelError):
            single_option(100.0, 100.0, 0.05, 0.0, 1.0)

    def test_random_needs_positive_count(self):
        with pytest.raises(ModelError):
            OptionBatch.random(0)


class TestTrafficModel:
    def test_paper_bytes_per_option(self, bs):
        assert bs.bytes_per_work_unit(1000) == pytest.approx(10.0)

    def test_work_units_are_options(self, bs):
        assert bs.work_units(4096) == 4096

    def test_ops_scale_linearly(self, bs):
        assert bs.ops(200) == pytest.approx(2 * bs.ops(100))

    def test_unit_label(self, bs):
        assert bs.performance_unit() == "Mopts/s"

    def test_run(self, bs, rng):
        result = bs.run(256, rng)
        call, put = result.output
        assert len(call) == 256
        assert result.compulsory_bytes == pytest.approx(2560.0)
