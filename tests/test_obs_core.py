"""Unit coverage for repro.obs: context, spans, metrics, profiling,
logging.

The percentile tests double as the regression suite for the seed's
nearest-rank bias: ``service.metrics._percentile`` now interpolates,
so p99 over a small window can actually reach the window maximum.
"""

import io
import json
import logging

import pytest

from repro.obs.context import (
    attach,
    current_context,
    detach,
    extract,
    inject,
    new_span_id,
    new_trace_id,
)
from repro.obs.logging import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    log_event,
    resolve_level,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
    render_merged,
    validate_prometheus,
)
from repro.obs.profiling import (
    phase_totals,
    profile_block,
    reset_phase_totals,
    timed,
)
from repro.obs.trace import Span, Tracer
from repro.service.metrics import ServiceMetrics, _percentile


class TestContext:
    def test_ids_are_hex_of_w3c_width(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_attach_detach_restores(self):
        assert current_context() is None
        carrier = {"trace_id": "a" * 32, "span_id": "b" * 16}
        token = attach(extract(carrier))
        try:
            assert current_context().trace_id == "a" * 32
        finally:
            detach(token)
        assert current_context() is None

    def test_inject_outside_any_span_is_none(self):
        assert inject() is None

    def test_extract_malformed_carrier_is_none(self):
        assert extract(None) is None
        assert extract({}) is None
        assert extract({"trace_id": "a" * 32}) is None


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 0.99) == 0.0
        assert _percentile([], 0.5) == 0.0

    def test_single_sample_returns_it_for_every_q(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.5], q) == 7.5

    def test_interpolates_between_ranks(self):
        samples = list(range(1, 11))  # 1..10
        # rank = 0.99 * 9 = 8.91 -> between 9 and 10
        assert percentile(samples, 0.99) == pytest.approx(9.91)
        # The seed's nearest-rank rule could never exceed the 9th
        # value on ten samples; interpolation approaches the max.
        assert percentile(samples, 0.99) > 9.0
        assert percentile(samples, 0.5) == pytest.approx(5.5)
        assert percentile(samples, 1.0) == 10.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_service_latency_window_overflow(self):
        metrics = ServiceMetrics(latency_window=8)
        for i in range(20):
            metrics.record_request("/v1/x", 200, float(i), None)
        snap = metrics.snapshot()["latency"]["/v1/x"]
        # Quantiles cover only the newest 8 samples (12..19), and
        # p99 interpolates toward the window maximum (19s).
        assert snap["count"] == 8
        assert snap["p50_ms"] == pytest.approx(15.5e3)
        assert snap["p99_ms"] == pytest.approx(18.93e3)


class TestInstruments:
    def test_counter_labels_accumulate(self):
        c = Counter("t_total")
        c.inc(endpoint="/a", status="200")
        c.inc(2, endpoint="/a", status="200")
        c.inc(endpoint="/b", status="500")
        assert c.value(endpoint="/a", status="200") == 3
        assert c.value(endpoint="/b", status="500") == 1
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_callback_wins(self):
        g = Gauge("t_gauge", callback=lambda: 42.0)
        assert g.value() == 42.0
        plain = Gauge("t_plain")
        plain.set(3)
        plain.inc()
        plain.dec(2)
        assert plain.value() == 2

    def test_histogram_window_bounds_quantiles(self):
        h = Histogram("t_hist", window=4)
        for v in (1, 2, 3, 4, 100):
            h.observe(v, phase="x")
        assert h.window_values(phase="x") == [2, 3, 4, 100]
        summary = h.series_summary(phase="x")
        assert summary["count"] == 5
        assert summary["sum"] == 110

    def test_histogram_recorder_fast_path_matches_observe(self):
        h = Histogram("t_rec", window=16)
        record = h.recorder(phase="hot")
        for v in (1.0, 2.0, 3.0):
            record(v)
        h.observe(4.0, phase="hot")
        assert h.window_values(phase="hot") == [1.0, 2.0, 3.0, 4.0]
        assert h.series_summary(phase="hot")["count"] == 4

    def test_registry_get_or_create_and_type_conflict(self):
        r = MetricsRegistry()
        a = r.counter("dup_total")
        assert r.counter("dup_total") is a
        with pytest.raises(ValueError):
            r.gauge("dup_total")

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("bad name")
        c = r.counter("ok_total")
        with pytest.raises(ValueError):
            c.inc(**{"bad-label": "x"})


class TestPrometheusExposition:
    def _registry(self):
        r = MetricsRegistry()
        c = r.counter("t_requests_total", "requests")
        c.inc(endpoint="/a", status="200")
        r.gauge("t_inflight", "inflight").set(2)
        h = r.histogram("t_latency_seconds", "latency", window=16)
        h.observe(0.25, endpoint="/a")
        return r

    def test_render_validates(self):
        text = self._registry().render_prometheus()
        names = validate_prometheus(text)
        assert "t_requests_total" in names
        assert "t_latency_seconds_sum" in names
        assert "t_latency_seconds_count" in names
        # Summaries carry interpolated quantile labels.
        assert 'quantile="0.99"' in text

    def test_render_merged_first_wins_once_per_family(self):
        a, b = self._registry(), self._registry()
        b.counter("t_only_b_total").inc()
        text = render_merged(a, b)
        assert text.count("# TYPE t_requests_total counter") == 1
        assert "t_only_b_total" in text
        validate_prometheus(text)

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus("no trailing newline")
        with pytest.raises(ValueError):
            validate_prometheus('m{bad-label="x"} 1\n')
        with pytest.raises(ValueError):
            validate_prometheus("m notanumber\n")
        with pytest.raises(ValueError):
            validate_prometheus(
                "# TYPE m counter\n# TYPE m counter\nm 1\n"
            )
        # +Inf / NaN are legal sample values.
        validate_prometheus("# TYPE m gauge\nm +Inf\nm NaN\n")


class TestSpansAndTracer:
    def test_span_hierarchy_and_buffer(self):
        tracer = Tracer(buffer_size=8)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["child", "parent"]
        assert spans[0]["duration_ms"] >= 0

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans()[-1]["status"] == "error"

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(buffer_size=2)
        for i in range(4):
            tracer.span(f"s{i}").finish()
        assert [s["name"] for s in tracer.spans()] == ["s2", "s3"]
        assert tracer.stats()["exported"] == 4

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(export_path=str(path))
        tracer.span("a").finish()
        tracer.span("b").finish()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_backdate_extends_duration(self):
        tracer = Tracer()
        span = tracer.span("late")
        span.backdate(span.start_unix - 5.0, span._start_perf - 5.0)
        span.finish()
        assert tracer.spans()[-1]["duration_ms"] >= 5000

    def test_trace_filter_and_limit(self):
        tracer = Tracer()
        with tracer.span("t1") as s1:
            pass
        tracer.span("t2").finish()
        only = tracer.trace(s1.trace_id)
        assert [s["name"] for s in only] == ["t1"]
        assert len(tracer.spans(limit=1)) == 1


class TestProfiling:
    def setup_method(self):
        reset_phase_totals()

    def test_phase_totals_accumulate(self):
        with profile_block("test.phase"):
            pass
        with profile_block("test.phase"):
            pass
        totals = phase_totals()
        assert totals["test.phase"]["calls"] == 2
        assert totals["test.phase"]["total_s"] >= 0

    def test_reset_snapshot_is_atomic(self):
        with profile_block("test.reset"):
            pass
        snap = phase_totals(reset=True)
        assert snap["test.reset"]["calls"] == 1
        assert "test.reset" not in phase_totals()

    def test_untraced_block_opens_no_span(self):
        block = profile_block("test.untraced")
        with block:
            assert not block.traced

    def test_traced_block_nests_under_current_span(self):
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        tracer.clear()
        with tracer.span("outer") as outer:
            with profile_block("test.traced", items=3) as block:
                assert block.traced
        spans = tracer.trace(outer.trace_id)
        child = [s for s in spans if s["name"] == "test.traced"][0]
        assert child["parent_id"] == outer.span_id
        assert child["attributes"]["items"] == 3

    def test_timed_decorator_names_phase(self):
        @timed("test.timed")
        def work():
            return 5

        assert work() == 5
        assert work.phase_name == "test.timed"
        assert phase_totals()["test.timed"]["calls"] == 1


class TestLogging:
    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert resolve_level() == logging.INFO
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        assert resolve_level() == logging.DEBUG
        assert resolve_level("WARNING") == logging.WARNING
        with pytest.raises(ValueError):
            resolve_level("LOUD")

    def test_json_lines_carry_trace_ids(self):
        from repro.obs.trace import get_tracer

        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        logger = logging.getLogger("repro.test.obs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with get_tracer().span("logged") as span:
                log_event(logger, "hello", answer=42)
        finally:
            logger.removeHandler(handler)
        line = json.loads(stream.getvalue())
        assert line["event"] == "hello"
        assert line["answer"] == 42
        assert line["trace_id"] == span.trace_id
        assert line["span_id"] == span.span_id

    def test_configure_logging_is_idempotent(self):
        first = configure_logging("INFO", stream=io.StringIO())
        second = configure_logging("DEBUG", stream=io.StringIO())
        assert first is second
        named = [
            h for h in second.handlers
            if h.get_name() == "repro-obs-json"
        ]
        assert len(named) == 1
        assert second.level == logging.DEBUG

    def test_get_logger_prefixes(self):
        assert get_logger("service").name == "repro.service"
        assert get_logger("repro.x").name == "repro.x"
