"""Serving-layer smoke benchmark (``make bench-quick``).

Deselected from the tier-1 suite by the ``perfbench`` marker.  Drives
a burst of concurrent requests through the in-process service and
asserts the micro-batcher actually coalesces work (batch efficiency
strictly above 1) and that the cache makes repeats effectively free.
The full load benchmark lives in ``benchmarks/bench_service_load.py``.
"""

import asyncio
import json

import pytest

from repro.service.app import ModelService, ServiceConfig

pytestmark = pytest.mark.perfbench


def _body(nm):
    return json.dumps(
        {"workload": "mmm", "f": 0.99, "design": "ASIC", "node_nm": nm}
    ).encode()


def test_concurrent_burst_batches_and_caches():
    nodes = [40, 32, 22, 16, 11]

    async def main():
        service = ModelService(ServiceConfig(batch_window_ms=2.0))
        # Burst: 5 distinct requests sharing one (chip, f) key.
        first = await asyncio.gather(
            *(
                service.handle("POST", "/v1/speedup", _body(nm))
                for nm in nodes
            )
        )
        # Repeat the burst: every request is now a cache hit.
        second = await asyncio.gather(
            *(
                service.handle("POST", "/v1/speedup", _body(nm))
                for nm in nodes
            )
        )
        _, metrics = await service.handle("GET", "/metrics")
        service.close()
        return first, second, metrics

    first, second, metrics = asyncio.run(main())
    assert all(status == 200 for status, _ in first + second)

    batching = metrics["batching"]
    assert batching["efficiency"] is not None
    assert batching["efficiency"] > 1, (
        f"micro-batcher never coalesced: {batching}"
    )
    # The repeat burst never touched the dispatcher.
    assert batching["items"] == len(nodes)
    assert metrics["cache"]["hits"] == len(nodes)
