"""Tests for the Pareto-frontier and sensitivity-analysis extensions."""

import pytest

from repro.errors import ModelError
from repro.projection.pareto import (
    ParetoPoint,
    design_space_points,
    pareto_frontier,
)
from repro.projection.designs import standard_designs
from repro.projection.sensitivity import (
    SensitivityConfig,
    run_sensitivity,
)


class TestParetoPoint:
    def _point(self, speedup, energy):
        design = standard_designs("mmm")[0]
        return ParetoPoint(
            design=design, r=1, n=10, speedup=speedup, energy=energy
        )

    def test_dominance(self):
        better = self._point(10.0, 0.5)
        worse = self._point(5.0, 1.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_dominance(self):
        p = self._point(10.0, 0.5)
        assert not p.dominates(p)

    def test_incomparable(self):
        fast_hot = self._point(10.0, 1.0)
        slow_cool = self._point(5.0, 0.2)
        assert not fast_hot.dominates(slow_cool)
        assert not slow_cool.dominates(fast_hot)


class TestDesignSpace:
    def test_points_cover_every_design(self):
        points = design_space_points("mmm", 0.99, 22)
        labels = {p.design.short_label for p in points}
        assert labels == {
            "SymCMP", "AsymCMP", "LX760", "GTX285", "GTX480", "R5870",
            "ASIC",
        }

    def test_multiple_r_per_design(self):
        points = design_space_points("mmm", 0.99, 22)
        asic_rs = {p.r for p in points if p.design.short_label == "ASIC"}
        assert len(asic_rs) > 5

    def test_fft_defaults_size(self):
        points = design_space_points("fft", 0.9, 40)
        assert points  # runs without explicit size


class TestFrontier:
    def test_frontier_is_nondominated(self):
        points = design_space_points("mmm", 0.99, 22)
        frontier = pareto_frontier(points)
        for fp in frontier:
            assert not any(p.dominates(fp) for p in points)

    def test_frontier_sorted_and_monotone(self):
        frontier = pareto_frontier(design_space_points("mmm", 0.99, 22))
        energies = [p.energy for p in frontier]
        speedups = [p.speedup for p in frontier]
        assert energies == sorted(energies)
        assert speedups == sorted(speedups)

    def test_asic_on_the_frontier(self):
        # Custom logic must appear on the MMM frontier at high f -- it
        # is both the fastest and the most energy-efficient fabric.
        frontier = pareto_frontier(design_space_points("mmm", 0.99, 22))
        assert any(p.design.short_label == "ASIC" for p in frontier)

    def test_cmps_dominated_at_high_f(self):
        # At f=0.99 the plain CMPs should not reach the frontier's
        # fast end; if present at all they sit at the frugal tail.
        frontier = pareto_frontier(design_space_points("mmm", 0.99, 22))
        fastest = max(frontier, key=lambda p: p.speedup)
        assert fastest.design.short_label not in ("SymCMP", "AsymCMP")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            pareto_frontier([])


class TestSensitivity:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_sensitivity(
            "mmm", 0.99, node_nm=11,
            config=SensitivityConfig(trials=60, seed=7),
        )

    def test_trials_accounted(self, summary):
        assert sum(summary.win_counts.values()) == 60

    def test_asic_wins_robustly(self, summary):
        # The paper's MMM conclusion survives +/-30% parameter noise.
        assert summary.most_frequent_winner() == "ASIC"
        assert summary.win_rate("ASIC") > 0.8

    def test_speedup_distributions_populated(self, summary):
        for label in ("ASIC", "GTX285", "SymCMP"):
            assert len(summary.speedups[label]) == 60

    def test_spread_is_finite_positive(self, summary):
        spread = summary.spread("ASIC")
        assert 0 < spread < 2.0

    def test_median_close_to_deterministic(self, summary):
        from repro.projection.engine import project

        deterministic = project("mmm", 0.99).by_label()[
            "ASIC"
        ].final_speedup()
        assert summary.median_speedup("ASIC") == pytest.approx(
            deterministic, rel=0.35
        )

    def test_bandwidth_noise_shifts_fft_plateau(self):
        # FFT is bandwidth-pinned, so its spread tracks the bandwidth
        # sigma closely; with sigma=0 the plateau barely moves.
        noisy = run_sensitivity(
            "fft", 0.99, node_nm=11,
            config=SensitivityConfig(
                trials=40, bandwidth_sigma=0.4, mu_sigma=0.0,
                phi_sigma=0.0, power_sigma=0.0, seed=3,
            ),
        )
        quiet = run_sensitivity(
            "fft", 0.99, node_nm=11,
            config=SensitivityConfig(
                trials=40, bandwidth_sigma=0.0, mu_sigma=0.0,
                phi_sigma=0.0, power_sigma=0.0, seed=3,
            ),
        )
        assert noisy.spread("ASIC") > quiet.spread("ASIC")
        assert quiet.spread("ASIC") == pytest.approx(0.0, abs=1e-9)

    def test_config_validation(self):
        with pytest.raises(ModelError):
            SensitivityConfig(trials=0)
        with pytest.raises(ModelError):
            SensitivityConfig(mu_sigma=-0.1)

    def test_deterministic_given_seed(self):
        a = run_sensitivity(
            "bs", 0.9, config=SensitivityConfig(trials=20, seed=11)
        )
        b = run_sensitivity(
            "bs", 0.9, config=SensitivityConfig(trials=20, seed=11)
        )
        assert a.win_counts == b.win_counts
        assert a.speedups == b.speedups
