"""Tests for the FFT workload: real kernel correctness + traffic model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.workloads.fft import (
    FFTWorkload,
    bit_reverse_permutation,
    fft_radix2,
)

sizes = st.sampled_from([2, 4, 8, 16, 32, 64, 128, 256, 512, 1024])


@pytest.fixture
def fft():
    return FFTWorkload()


class TestBitReversal:
    def test_size_8(self):
        assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_size_2(self):
        assert list(bit_reverse_permutation(2)) == [0, 1]

    def test_is_involution(self):
        perm = bit_reverse_permutation(64)
        assert list(perm[perm]) == list(range(64))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ModelError):
            bit_reverse_permutation(12)


class TestKernelCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256, 1024])
    def test_matches_numpy(self, n, rng):
        x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(
            np.complex64
        )
        ours = fft_radix2(x)
        reference = np.fft.fft(x.astype(np.complex128))
        np.testing.assert_allclose(ours, reference, rtol=2e-3, atol=2e-3)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16, dtype=np.complex64)
        x[0] = 1.0
        np.testing.assert_allclose(
            fft_radix2(x), np.ones(16), rtol=1e-6, atol=1e-6
        )

    def test_constant_gives_dc_only(self):
        x = np.ones(32, dtype=np.complex64)
        y = fft_radix2(x)
        assert y[0] == pytest.approx(32.0)
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-4)

    def test_pure_tone_lands_in_one_bin(self):
        n, k = 64, 5
        x = np.exp(2j * np.pi * k * np.arange(n) / n)
        y = fft_radix2(x)
        assert abs(y[k]) == pytest.approx(n, rel=1e-4)
        mask = np.ones(n, dtype=bool)
        mask[k] = False
        assert np.max(np.abs(y[mask])) < 1e-2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ModelError):
            fft_radix2(np.zeros(10))

    @settings(max_examples=25, deadline=None)
    @given(n=sizes, seed=st.integers(0, 2**31 - 1))
    def test_linearity(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(n).astype(np.complex64)
        b = rng.standard_normal(n).astype(np.complex64)
        lhs = fft_radix2(2.0 * a + 3.0 * b)
        rhs = 2.0 * fft_radix2(a) + 3.0 * fft_radix2(b)
        np.testing.assert_allclose(lhs, rhs, rtol=5e-3, atol=5e-3)

    @settings(max_examples=25, deadline=None)
    @given(n=sizes, seed=st.integers(0, 2**31 - 1))
    def test_parseval(self, n, seed):
        rng = np.random.default_rng(seed)
        x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(
            np.complex64
        )
        time_energy = float(np.sum(np.abs(x) ** 2))
        freq_energy = float(np.sum(np.abs(fft_radix2(x)) ** 2)) / n
        assert freq_energy == pytest.approx(time_energy, rel=1e-3)


class TestTrafficModel:
    def test_pseudo_flops_formula(self, fft):
        assert fft.ops(1024) == pytest.approx(5 * 1024 * 10)

    def test_compulsory_bytes(self, fft):
        # 8 bytes in + 8 bytes out per complex64 point.
        assert fft.compulsory_bytes(1024) == pytest.approx(16 * 1024)

    def test_paper_footnote2_intensity(self, fft):
        # AI = 0.3125 * log2 N; 0.32 bytes/flop at N=1024.
        assert fft.arithmetic_intensity(1024) == pytest.approx(3.125)
        assert fft.bytes_per_work_unit(1024) == pytest.approx(0.32)

    def test_intensity_consistency(self, fft):
        for n in (64, 1024, 16384):
            assert fft.arithmetic_intensity(n) == pytest.approx(
                fft.ops(n) / fft.compulsory_bytes(n)
            )

    def test_intensity_grows_with_size(self, fft):
        assert fft.arithmetic_intensity(2**20) > fft.arithmetic_intensity(
            2**4
        )

    def test_rejects_non_power_of_two(self, fft):
        with pytest.raises(ModelError):
            fft.ops(100)

    def test_rejects_too_small(self, fft):
        with pytest.raises(ModelError):
            fft.compulsory_bytes(1)


class TestRun:
    def test_run_produces_correct_output(self, fft, rng):
        result = fft.run(64, rng)
        assert result.workload == "fft"
        assert result.size == 64
        assert result.ops == fft.ops(64)
        reference = np.fft.fft(np.zeros(64))  # shape check only
        assert result.output.shape == reference.shape

    def test_run_output_is_true_transform(self, fft):
        # Same seed -> reproducible input; verify the output transform.
        result = fft.run(128)
        rng = np.random.default_rng(0)
        x = (
            rng.standard_normal(128) + 1j * rng.standard_normal(128)
        ).astype(np.complex64)
        np.testing.assert_allclose(
            result.output, np.fft.fft(x.astype(np.complex128)),
            rtol=2e-3, atol=2e-3,
        )

    def test_kernel_run_intensity_property(self, fft):
        run = fft.run(256)
        assert run.arithmetic_intensity == pytest.approx(
            fft.arithmetic_intensity(256)
        )

    def test_table5_sizes_constant(self, fft):
        assert fft.TABLE5_SIZES == (64, 1024, 16384)
        assert fft.PROJECTION_SIZE == 1024
        assert math.log2(fft.PROJECTION_SIZE) == 10
