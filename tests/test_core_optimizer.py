"""Unit tests for repro.core.optimizer (the r-sweep)."""

import math

import pytest

from repro.core.chip import HeterogeneousChip, SymmetricCMP
from repro.core.constraints import Budget, LimitingFactor
from repro.core.optimizer import (
    DEFAULT_R_MAX,
    evaluate_design,
    feasible_r_values,
    optimize,
    sweep_designs,
)
from repro.core.ucore import UCore
from repro.errors import InfeasibleDesignError


class TestFeasibleR:
    def test_default_sweep_is_1_to_16(self, sym_chip, roomy_budget):
        assert feasible_r_values(sym_chip, roomy_budget) == list(
            range(1, 17)
        )

    def test_no_serial_core_raises_named_error(self, sym_chip):
        # P = 0.5 -> max_serial_r < 1: not even a single-BCE core fits
        # the serial power bound.
        budget = Budget(area=100.0, power=0.5)
        with pytest.raises(InfeasibleDesignError) as exc:
            feasible_r_values(sym_chip, budget)
        assert "serial power" in str(exc.value)

    def test_binding_bandwidth_bound_is_named(self, sym_chip):
        # B = 0.2 -> sqrt(r) <= 0.2 -> r <= 0.04: bandwidth binds.
        budget = Budget(area=100.0, power=1e9, bandwidth=0.2)
        with pytest.raises(InfeasibleDesignError) as exc:
            feasible_r_values(sym_chip, budget)
        assert "serial bandwidth" in str(exc.value)

    def test_binding_area_bound_is_named(self, sym_chip):
        budget = Budget(area=0.5, power=1e9)
        with pytest.raises(InfeasibleDesignError) as exc:
            feasible_r_values(sym_chip, budget)
        assert "area" in str(exc.value)

    def test_guard_reaches_optimize(self, sym_chip):
        budget = Budget(area=100.0, power=0.5)
        with pytest.raises(InfeasibleDesignError):
            optimize(sym_chip, 0.9, budget)

    def test_nan_ceiling_from_custom_override(self, roomy_budget):
        class BrokenChip(SymmetricCMP):
            def max_serial_r(self, budget):
                return math.nan

        with pytest.raises(InfeasibleDesignError) as exc:
            feasible_r_values(BrokenChip(), roomy_budget)
        assert "NaN" in str(exc.value)

    def test_serial_power_truncates(self, sym_chip):
        # P = 10 -> r <= 13.9, so 14..16 are excluded.
        budget = Budget(area=100.0, power=10.0)
        values = feasible_r_values(sym_chip, budget)
        assert values == list(range(1, 14))

    def test_r_max_parameter(self, sym_chip, roomy_budget):
        assert feasible_r_values(sym_chip, roomy_budget, r_max=4) == [
            1, 2, 3, 4,
        ]

    def test_default_r_max_constant(self):
        assert DEFAULT_R_MAX == 16


class TestEvaluateDesign:
    def test_basic_evaluation(self, sym_chip, basic_budget):
        point = evaluate_design(sym_chip, 0.9, basic_budget, 2)
        assert point is not None
        assert point.r == 2
        assert point.n <= basic_budget.area
        assert point.speedup > 1.0

    def test_infeasible_r_returns_none(self, sym_chip, basic_budget):
        assert evaluate_design(sym_chip, 0.9, basic_budget, 16) is None

    def test_het_needs_fabric(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        # Area exactly r: no room for U-cores.
        budget = Budget(area=4.0, power=1e9)
        assert evaluate_design(chip, 0.9, budget, 4) is None

    def test_point_records_limiter(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        budget = Budget(area=1000.0, power=10.0, bandwidth=1e9)
        point = evaluate_design(chip, 0.9, budget, 2)
        assert point.limiter is LimitingFactor.POWER

    def test_parallel_resources_property(self, sym_chip, basic_budget):
        point = evaluate_design(sym_chip, 0.9, basic_budget, 2)
        assert point.parallel_resources == pytest.approx(point.n - 2)

    def test_describe_mentions_limiter(self, sym_chip, basic_budget):
        point = evaluate_design(sym_chip, 0.9, basic_budget, 2)
        assert point.limiter.value in point.describe()


class TestSweepAndOptimize:
    def test_optimize_picks_sweep_maximum(self, sym_chip, basic_budget):
        points = sweep_designs(sym_chip, 0.9, basic_budget)
        best = optimize(sym_chip, 0.9, basic_budget)
        assert best.speedup == pytest.approx(
            max(p.speedup for p in points)
        )

    def test_serial_workload_prefers_big_core(self, sym_chip):
        budget = Budget(area=64.0, power=1e9)
        best = optimize(sym_chip, 0.0, budget, r_max=16)
        assert best.r == 16

    def test_parallel_workload_prefers_small_cores(self, sym_chip):
        budget = Budget(area=64.0, power=1e9)
        best = optimize(sym_chip, 1.0, budget, r_max=16)
        assert best.r == 1

    def test_r_values_override(self, sym_chip, basic_budget):
        points = sweep_designs(
            sym_chip, 0.9, basic_budget, r_values=[2.5]
        )
        assert len(points) == 1
        assert points[0].r == 2.5

    def test_infeasible_raises(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        budget = Budget(area=1.0, power=1e9)  # only room for the core
        with pytest.raises(InfeasibleDesignError):
            optimize(chip, 0.9, budget)

    def test_speedup_monotonic_in_budget_area(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        speeds = [
            optimize(
                chip, 0.99, Budget(area=a, power=1e9)
            ).speedup
            for a in (8.0, 16.0, 64.0, 256.0)
        ]
        assert speeds == sorted(speeds)

    def test_bandwidth_cap_applies(self, asic_like):
        # A huge-mu U-core under finite B is pinned to speedup ~ B/f.
        chip = HeterogeneousChip(asic_like)
        budget = Budget(area=1e6, power=1e9, bandwidth=50.0)
        best = optimize(chip, 1.0, budget, r_max=1)
        assert best.limiter is LimitingFactor.BANDWIDTH
        assert best.speedup == pytest.approx(50.0, rel=1e-6)

    def test_brute_force_cross_check(self, gpu_like):
        """The optimizer matches exhaustive evaluation."""
        chip = HeterogeneousChip(gpu_like)
        budget = Budget(area=37.0, power=13.3, bandwidth=46.0)
        f = 0.99
        best_manual = -math.inf
        for r in range(1, 17):
            if not chip.serial_feasible(budget, r):
                continue
            n = chip.bounds(budget, r).n_effective
            if n <= r:
                continue
            best_manual = max(best_manual, chip.speedup(f, n, r))
        assert optimize(chip, f, budget).speedup == pytest.approx(
            best_manual
        )
