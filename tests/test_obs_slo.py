"""SLO tracking (``repro.obs.slo``): objective semantics, burn-rate
edge cases (empty window, zero traffic, 100% failure), the min-window
evidence guard, budget accounting, and edge-triggered alerting under
an injected clock.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    STATUS_BURNING,
    STATUS_EXHAUSTED,
    STATUS_OK,
    SLObjective,
    SLOTracker,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def _tracker(objectives=None, **overrides):
    clock = overrides.pop("clock", FakeClock())
    tracker = SLOTracker(
        objectives=objectives,
        registry=MetricsRegistry(),
        clock=clock,
        **overrides,
    )
    return tracker, clock


AVAIL = SLObjective(name="avail", endpoint="*", target=0.9)
LATENCY = SLObjective(
    name="lat", endpoint="/v1/x", target=0.9, latency_threshold_ms=100.0
)
#: Tight enough (budget 0.01) that a fully-bad window burns at 100x,
#: clearing both alert thresholds; LATENCY's 0.1 budget tops out at
#: 10x, under the 14.4 fast threshold by design.
TIGHT = SLObjective(
    name="lat99", endpoint="/v1/x", target=0.99,
    latency_threshold_ms=100.0,
)


class TestSLObjective:
    def test_target_bounds(self):
        with pytest.raises(ValueError):
            SLObjective(name="bad", endpoint="*", target=0.0)
        with pytest.raises(ValueError):
            SLObjective(name="bad", endpoint="*", target=1.5)

    def test_budget(self):
        assert AVAIL.budget == pytest.approx(0.1)

    def test_matching(self):
        assert AVAIL.matches("/anything")
        assert LATENCY.matches("/v1/x")
        assert not LATENCY.matches("/v1/y")

    def test_bad_semantics(self):
        assert AVAIL.is_bad(10.0, error=True)
        assert not AVAIL.is_bad(10.0, error=False)  # availability only
        assert LATENCY.is_bad(0.2, error=False)  # 200 ms > 100 ms
        assert not LATENCY.is_bad(0.05, error=False)

    def test_default_objectives_cover_every_model_endpoint(self):
        endpoints = {o.endpoint for o in DEFAULT_OBJECTIVES}
        assert {"*", "/v1/speedup", "/v1/sweep", "/v1/optimize"} <= endpoints


class TestBurnRateEdges:
    def test_zero_traffic(self):
        tracker, _ = _tracker(objectives=(AVAIL,))
        assert tracker.status("avail") == STATUS_OK
        assert tracker.burn_rates("avail") == {"fast": 0.0, "slow": 0.0}
        assert tracker.error_budget_remaining("avail") == 1.0

    def test_empty_window_after_idle(self):
        tracker, clock = _tracker(objectives=(AVAIL,))
        for _ in range(50):
            tracker.record("/v1/x", 0.01, error=False)
        clock.now = 10_000.0  # both windows drain
        assert tracker.burn_rates("avail") == {"fast": 0.0, "slow": 0.0}
        assert tracker.status("avail") == STATUS_OK

    def test_hundred_percent_failure_exhausts(self):
        tracker, _ = _tracker(objectives=(AVAIL,))
        alerts = []
        tracker.add_alert_hook(alerts.append)
        for _ in range(50):
            tracker.record("/v1/x", 0.01, error=True)
        assert tracker.status("avail") == STATUS_EXHAUSTED
        assert tracker.error_budget_remaining("avail") == 0.0
        # burn = bad_fraction / budget = 1.0 / 0.1
        assert tracker.burn_rates("avail")["fast"] == pytest.approx(10.0)
        assert len(alerts) == 1  # one episode, one page

    def test_zero_budget_objective(self):
        perfect = SLObjective(name="p", endpoint="*", target=1.0)
        tracker, _ = _tracker(objectives=(perfect,), min_window_events=1)
        tracker.record("/v1/x", 0.01, error=False)
        assert tracker.error_budget_remaining("p") == 1.0
        tracker.record("/v1/x", 0.01, error=True)
        assert tracker.burn_rates("p")["fast"] == float("inf")
        assert tracker.status("p") == STATUS_EXHAUSTED

    def test_min_window_guard_single_slow_request(self):
        # One slow request after an idle stretch fills an otherwise
        # empty window; without the evidence floor that is a 100% bad
        # fraction and an instant page.
        tracker, clock = _tracker(objectives=(LATENCY,))
        alerts = []
        tracker.add_alert_hook(alerts.append)
        for _ in range(100):
            tracker.record("/v1/x", 0.01, error=False)
        clock.now = 10_000.0
        tracker.record("/v1/x", 5.0, error=False)
        assert tracker.burn_rates("lat") == {"fast": 0.0, "slow": 0.0}
        assert tracker.status("lat") == STATUS_OK
        assert alerts == []

    def test_burn_rate_math(self):
        tracker, _ = _tracker(objectives=(AVAIL,))
        for i in range(100):
            tracker.record("/v1/x", 0.01, error=(i % 20 == 0))
        # 5/100 bad over a 0.1 budget: burn 0.5 in both windows, and
        # only half the lifetime budget is spent.
        rates = tracker.burn_rates("avail")
        assert rates["fast"] == pytest.approx(0.5)
        assert rates["slow"] == pytest.approx(0.5)
        assert tracker.error_budget_remaining("avail") == pytest.approx(0.5)
        assert tracker.status("avail") == STATUS_OK  # below thresholds

    def test_events_outside_slow_window_are_pruned(self):
        tracker, clock = _tracker(objectives=(AVAIL,))
        for _ in range(30):
            tracker.record("/v1/x", 0.01, error=True)
        clock.now = 3601.0
        tracker.record("/v1/x", 0.01, error=False)
        state = tracker._states["avail"]
        assert len(state.slow_events) == 1
        assert state.slow_total == 1 and state.slow_bad == 0
        # Lifetime totals survive the prune: the budget is spent.
        assert state.bad_total == 30
        assert tracker.status("avail") == STATUS_EXHAUSTED


class TestAlerting:
    def _burning_tracker(self):
        """Good traffic ages out of the windows, then sustained slow
        requests burn hot -- burning, not exhausted, because lifetime
        traffic dwarfs the bad run."""
        tracker, clock = _tracker(objectives=(TIGHT,))
        alerts = []
        tracker.add_alert_hook(alerts.append)
        for _ in range(10_000):
            tracker.record("/v1/x", 0.01, error=False)
        clock.now = 3700.0
        for _ in range(50):
            tracker.record("/v1/x", 5.0, error=False)
        return tracker, clock, alerts

    def test_burning_fires_exactly_one_alert(self):
        tracker, _, alerts = self._burning_tracker()
        assert tracker.status("lat99") == STATUS_BURNING
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert["slo"] == "lat99"
        assert alert["status"] == STATUS_BURNING
        assert alert["burn_rate_fast"] >= tracker.fast_burn_threshold
        assert alert["burn_rate_slow"] >= tracker.slow_burn_threshold
        assert 0.0 < alert["error_budget_remaining"] < 1.0

    def test_recovery_rearms_the_alert(self):
        tracker, clock, alerts = self._burning_tracker()
        # The burn ages out and healthy traffic returns: ok again.
        clock.now = 3700.0 + 3601.0
        for _ in range(100):
            tracker.record("/v1/x", 0.01, error=False)
        assert tracker.status("lat99") == STATUS_OK
        # A second episode pages again.
        clock.now += 3601.0
        for _ in range(50):
            tracker.record("/v1/x", 5.0, error=False)
        assert tracker.status("lat99") == STATUS_BURNING
        assert len(alerts) == 2

    def test_failing_hook_does_not_break_recording(self):
        tracker, clock = _tracker(objectives=(TIGHT,))
        seen = []

        def bad_hook(alert):
            raise RuntimeError("pager down")

        tracker.add_alert_hook(bad_hook)
        tracker.add_alert_hook(seen.append)
        for _ in range(10_000):
            tracker.record("/v1/x", 0.01, error=False)
        clock.now = 3700.0
        for _ in range(50):
            tracker.record("/v1/x", 5.0, error=False)
        assert len(seen) == 1  # later hooks still ran


class TestSnapshotAndGauges:
    def test_snapshot_shape(self):
        tracker, _ = _tracker(objectives=(AVAIL, LATENCY))
        tracker.record("/v1/x", 0.01, error=False)
        snap = tracker.snapshot()
        assert snap["status"] == STATUS_OK
        assert {o["name"] for o in snap["objectives"]} == {"avail", "lat"}
        for obj in snap["objectives"]:
            for key in (
                "status",
                "burn_rate_fast",
                "burn_rate_slow",
                "error_budget_remaining",
                "events_good",
                "events_bad",
            ):
                assert key in obj
        assert snap["windows"]["fast_s"] == tracker.fast_window_s
        assert snap["burn_thresholds"]["fast"] == 14.4

    def test_worst_objective_wins(self):
        tracker, _ = _tracker(objectives=(AVAIL, LATENCY))
        for _ in range(50):
            tracker.record("/v1/x", 5.0, error=False)  # slow, not errors
        assert tracker.status("avail") == STATUS_OK
        assert tracker.status("lat") == STATUS_EXHAUSTED
        assert tracker.overall_status() == STATUS_EXHAUSTED

    def test_gauges_land_in_registry(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(
            objectives=(AVAIL,), registry=registry, clock=FakeClock()
        )
        tracker.record("/v1/x", 0.01, error=True)
        tracker.refresh_gauges()
        text = registry.render_prometheus()
        for family in (
            "repro_slo_events_total",
            "repro_slo_error_budget_remaining",
            "repro_slo_burn_rate",
            "repro_slo_status",
        ):
            assert family in text

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SLOTracker(
                objectives=(AVAIL, AVAIL), registry=MetricsRegistry()
            )

    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError):
            SLOTracker(
                objectives=(AVAIL,),
                registry=MetricsRegistry(),
                fast_window_s=600.0,
                slow_window_s=300.0,
            )

    def test_unknown_objective_query_raises(self):
        tracker, _ = _tracker(objectives=(AVAIL,))
        with pytest.raises(KeyError):
            tracker.status("nope")
