"""Unit tests for repro.core.metrics (alternative objectives)."""

import pytest

from repro.core.chip import HeterogeneousChip, SymmetricCMP
from repro.core.constraints import Budget
from repro.core.metrics import (
    Objective,
    average_power_metric,
    energy_delay_metric,
    energy_metric,
    optimize_for,
    perf_per_watt_metric,
    speedup_metric,
)
from repro.core.optimizer import evaluate_design, optimize
from repro.core.ucore import UCore
from repro.errors import InfeasibleDesignError


@pytest.fixture
def point_and_chip(gpu_like, basic_budget):
    chip = HeterogeneousChip(gpu_like)
    point = evaluate_design(chip, 0.9, basic_budget, 2)
    return chip, point


class TestMetricValues:
    def test_speedup_metric_passthrough(self, point_and_chip):
        chip, point = point_and_chip
        assert speedup_metric(chip, point) == point.speedup

    def test_energy_delay_definition(self, point_and_chip):
        chip, point = point_and_chip
        assert energy_delay_metric(chip, point) == pytest.approx(
            energy_metric(chip, point) / point.speedup
        )

    def test_average_power_definition(self, point_and_chip):
        chip, point = point_and_chip
        assert average_power_metric(chip, point) == pytest.approx(
            energy_metric(chip, point) * point.speedup
        )

    def test_perf_per_watt_definition(self, point_and_chip):
        chip, point = point_and_chip
        expected = point.speedup / average_power_metric(chip, point)
        assert perf_per_watt_metric(chip, point) == pytest.approx(expected)

    def test_bce_reference_point(self):
        # One BCE: speedup 1, energy 1, EDP 1, power 1, perf/W 1.
        chip = SymmetricCMP()
        point = evaluate_design(chip, 0.5, Budget(area=1, power=1), 1)
        assert speedup_metric(chip, point) == pytest.approx(1.0)
        assert energy_metric(chip, point) == pytest.approx(1.0)
        assert energy_delay_metric(chip, point) == pytest.approx(1.0)
        assert perf_per_watt_metric(chip, point) == pytest.approx(1.0)


class TestOptimizeFor:
    def test_default_matches_optimize(self, gpu_like, basic_budget):
        chip = HeterogeneousChip(gpu_like)
        a = optimize(chip, 0.9, basic_budget)
        b = optimize_for(chip, 0.9, basic_budget, Objective.MAX_SPEEDUP)
        assert a.speedup == pytest.approx(b.speedup)

    def test_min_energy_prefers_smaller_core(self, basic_budget):
        # Energy-optimal sequential core is no larger than perf-optimal:
        # serial watts grow superlinearly while serial time shrinks
        # sublinearly.
        chip = HeterogeneousChip(UCore(name="u", mu=30.0, phi=0.8))
        perf_point = optimize_for(
            chip, 0.5, basic_budget, Objective.MAX_SPEEDUP
        )
        energy_point = optimize_for(
            chip, 0.5, basic_budget, Objective.MIN_ENERGY
        )
        assert energy_point.r <= perf_point.r
        assert energy_metric(chip, energy_point) <= energy_metric(
            chip, perf_point
        )

    def test_min_energy_picks_r1(self, basic_budget):
        # With Pollack + alpha > 1, pure energy minimisation always
        # lands on the smallest sequential core.
        chip = HeterogeneousChip(UCore(name="u", mu=30.0, phi=0.8))
        point = optimize_for(
            chip, 0.5, basic_budget, Objective.MIN_ENERGY
        )
        assert point.r == 1

    def test_edp_between_speedup_and_energy(self, basic_budget):
        chip = HeterogeneousChip(UCore(name="u", mu=30.0, phi=0.8))
        r_perf = optimize_for(
            chip, 0.5, basic_budget, Objective.MAX_SPEEDUP
        ).r
        r_energy = optimize_for(
            chip, 0.5, basic_budget, Objective.MIN_ENERGY
        ).r
        r_edp = optimize_for(
            chip, 0.5, basic_budget, Objective.MIN_ENERGY_DELAY
        ).r
        assert r_energy <= r_edp <= r_perf

    def test_infeasible_raises(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        with pytest.raises(InfeasibleDesignError):
            optimize_for(chip, 0.9, Budget(area=1.0, power=1e9))

    def test_perf_per_watt_favours_efficient_fabric(self, basic_budget):
        asic = HeterogeneousChip(UCore(name="asic", mu=27.4, phi=0.79))
        point = optimize_for(
            asic, 0.99, basic_budget, Objective.MAX_PERF_PER_WATT
        )
        assert perf_per_watt_metric(asic, point) > 1.0
