"""Fleet-wide telemetry through the router (repro.cluster).

The single-node contract (one stream per job, monotonic cursors,
byte-identical replay, one trace per campaign) must survive the jump
to a multi-process fleet: job event streams live on the worker that
owns the job and are spliced through the router verbatim; span ring
buffers are scattered-gathered into one ``worker``-attributed view;
respawns surface on the router's own ``cluster`` stream.
"""

import asyncio
import json
import socket
import threading
import time
from http.client import HTTPConnection, HTTPException, IncompleteRead

import pytest

from repro.cluster import ClusterConfig, Router, WorkerSupervisor
from repro.obs.metrics import MetricsRegistry
from repro.service.app import ServiceConfig
from repro.service.watch import iter_sse_frames, watch

JOB_BODY = json.dumps({"figures": ["F8"]}).encode()


def _request(port, method, path, body=b""):
    """One raw HTTP/1.1 round trip; returns (status, body_bytes)."""
    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Content-Type: application/json\r\n"
        f"Connection: close\r\n\r\n"
    ).encode() + body
    conn.sendall(request)
    data = b""
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            break
        data += chunk
    conn.close()
    head, _, rest = data.partition(b"\r\n\r\n")
    status = int(head.decode().split("\r\n")[0].split()[1])
    return status, rest


class _Cluster:
    """A live cluster: worker processes + router loop in a thread."""

    def __init__(self, workers=2, respawn_backoff_s=0.5):
        self.config = ClusterConfig(
            workers=workers,
            service=ServiceConfig(batch_window_ms=0.5, workers=1),
            host="127.0.0.1",
            port=0,
            respawn_backoff_s=respawn_backoff_s,
        )
        self.supervisor = WorkerSupervisor(
            self.config, registry=MetricsRegistry()
        )
        self.router = Router(self.config, self.supervisor)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = None

    def start(self):
        self.supervisor.start()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(60), "router did not start"
        return self

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        ready = asyncio.Event()
        serve = asyncio.ensure_future(
            self.router.serve_until(self._stop, ready=ready)
        )
        await ready.wait()
        self._ready.set()
        await serve

    @property
    def port(self):
        return self.router.bound_port

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def kill_worker(self, name):
        process = self.supervisor._slots[name].process
        process.kill()
        process.join(10)

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(30)
        self.supervisor.stop()


@pytest.fixture(scope="module")
def cluster():
    harness = _Cluster(workers=2).start()
    yield harness
    harness.stop()


def _submit_job(cluster):
    status, body = _request(cluster.port, "POST", "/v1/jobs", JOB_BODY)
    assert status == 202, body
    return json.loads(body)["job_id"]


def _wait_job(cluster, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body = _request(
            cluster.port, "GET", f"/v1/jobs/{job_id}"
        )
        assert status == 200, body
        payload = json.loads(body)
        if payload["state"] in ("succeeded", "failed"):
            return payload
        time.sleep(0.1)
    pytest.fail(f"job {job_id} did not settle through the router")


class TestEventsPassthrough:
    def test_batch_reads_proxy_to_the_owning_worker(self, cluster):
        job_id = _submit_job(cluster)
        payload = _wait_job(cluster, job_id)
        assert payload["events_cursor"] >= 4
        status, body = _request(
            cluster.port, "GET", f"/v1/events?job_id={job_id}&cursor=0"
        )
        assert status == 200, body
        events = json.loads(body)
        kinds = [e["kind"] for e in events["events"]]
        assert kinds[0] == "job.queued" and kinds[-1] == "job.finished"

        # The routed answer is the owning worker's answer, verbatim.
        owners = []
        for port in cluster.supervisor.ports().values():
            status, direct = _request(
                port, "GET", f"/v1/events?job_id={job_id}&cursor=0"
            )
            if status == 200:
                owners.append(json.loads(direct))
        assert len(owners) == 1, "job stream must live on one worker"
        assert events["lines"] == owners[0]["lines"]

    def test_watch_tails_a_job_through_the_router(self, cluster):
        job_id = _submit_job(cluster)
        lines = []
        code = watch(
            cluster.url, job_id, emit=lines.append, timeout_s=60
        )
        assert code == 0
        assert "finished succeeded" in lines[-1]
        # Reconnecting from cursor 0 replays the same rendered log.
        tailed = []
        assert watch(
            cluster.url, job_id, as_json=True,
            emit=tailed.append, timeout_s=60,
        ) == 0
        status, body = _request(
            cluster.port, "GET", f"/v1/events?job_id={job_id}&cursor=0"
        )
        assert tailed == json.loads(body)["lines"]

    def test_unknown_stream_is_a_404_from_the_router(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/events?job_id=no-such-job&cursor=0"
        )
        assert status == 404
        assert json.loads(body)["error"] == "NotFound"

    def test_missing_stream_param_is_a_400(self, cluster):
        status, body = _request(cluster.port, "GET", "/v1/events")
        assert status == 400
        assert "job_id" in json.loads(body)["message"]


class TestClusterStream:
    def test_cluster_stream_is_served_locally(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/events?stream=cluster&cursor=0"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["stream"] == "cluster"
        assert not payload["closed"]

    def test_worker_respawn_lands_on_the_cluster_stream(self):
        harness = _Cluster(workers=2, respawn_backoff_s=0.05).start()
        try:
            harness.kill_worker("w1")
            deadline = time.monotonic() + 60
            respawns = []
            while time.monotonic() < deadline and not respawns:
                status, body = _request(
                    harness.port, "GET",
                    "/v1/events?stream=cluster&cursor=0",
                )
                assert status == 200
                respawns = [
                    e for e in json.loads(body)["events"]
                    if e["kind"] == "worker.respawn"
                ]
                time.sleep(0.1)
            assert respawns, "no respawn event on the cluster stream"
            assert respawns[0]["data"]["worker"] == "w1"
        finally:
            harness.stop()


class TestScatteredTraces:
    def test_merged_view_attributes_spans_to_workers(self, cluster):
        trace_id = "cd" * 16
        conn = socket.create_connection(
            ("127.0.0.1", cluster.port), timeout=30
        )
        speedup = json.dumps(
            {"workload": "mmm", "f": 0.9, "design": "GTX480"}
        ).encode()
        request = (
            f"POST /v1/speedup HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(speedup)}\r\n"
            f"Content-Type: application/json\r\n"
            f"X-Request-Id: {trace_id}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode() + speedup
        conn.sendall(request)
        while conn.recv(65536):
            pass
        conn.close()

        status, body = _request(
            cluster.port, "GET", f"/v1/traces?trace_id={trace_id}"
        )
        assert status == 200, body
        payload = json.loads(body)
        by_worker = {}
        for span in payload["spans"]:
            by_worker.setdefault(span["worker"], []).append(span["name"])
        assert "router" in by_worker
        assert "router.request" in by_worker["router"]
        worker_names = [w for w in by_worker if w != "router"]
        assert worker_names, "no worker-side spans in the merged view"
        assert any(
            "http.request" in by_worker[w] for w in worker_names
        )
        # Every span in the merge shares the forwarded trace id, and
        # the merge is globally time-ordered.
        assert all(
            span["trace_id"] == trace_id for span in payload["spans"]
        )
        starts = [span["start_unix"] for span in payload["spans"]]
        assert starts == sorted(starts)
        assert sorted(payload["workers"]) == ["w1", "w2"]

    def test_campaign_trace_resolves_through_the_merged_view(
        self, cluster
    ):
        job_id = _submit_job(cluster)
        _wait_job(cluster, job_id)
        status, body = _request(
            cluster.port, "GET", f"/v1/events?job_id={job_id}&cursor=0"
        )
        events = json.loads(body)["events"]
        trace_id = events[0]["trace_id"]
        status, body = _request(
            cluster.port, "GET", f"/v1/traces?trace_id={trace_id}"
        )
        assert status == 200
        spans = json.loads(body)["spans"]
        names = {span["name"] for span in spans}
        assert "campaign.run" in names and "campaign.task" in names
        task_span_ids = {
            span["span_id"]
            for span in spans
            if span["name"] == "campaign.task"
        }
        settled_span_ids = {
            e["span_id"] for e in events if e["kind"] == "task.settled"
        }
        assert settled_span_ids <= task_span_ids

    def test_bad_limit_is_a_400(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/traces?limit=x"
        )
        assert status == 400
        assert json.loads(body)["error"] == "BadRequest"


class TestKilledWorkerMidTail:
    def test_dead_worker_ends_the_spliced_tail_cleanly(self):
        """An SSE tail spliced to a worker that dies mid-stream ends
        with a clean EOF (never a hang): the client's cursor makes the
        reconnect safe."""
        harness = _Cluster(workers=2, respawn_backoff_s=30.0).start()
        try:
            # The slo stream never closes, so the tail stays open
            # until the upstream dies.  Find which worker the router
            # splices it to, then kill exactly that worker.
            conn = HTTPConnection("127.0.0.1", harness.port, timeout=30)
            conn.request("GET", "/v1/events?stream=slo&follow=sse")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/event-stream"
            )
            streamed = {
                worker: harness.router._requests.value(
                    worker=worker, outcome="streamed"
                )
                for worker in ("w1", "w2")
            }
            owner = max(streamed, key=streamed.get)
            harness.kill_worker(owner)
            ended = threading.Event()

            def drain():
                try:
                    for _frame in iter_sse_frames(response):
                        pass
                except (HTTPException, IncompleteRead, OSError):
                    pass  # abrupt chunked EOF is an acceptable end
                ended.set()

            thread = threading.Thread(target=drain, daemon=True)
            thread.start()
            assert ended.wait(30), "spliced tail hung after worker death"
            conn.close()
        finally:
            harness.stop()


class TestFleetProfile:
    """``GET /v1/profile`` through the router: concurrent captures on
    every worker merged into one folded view whose stacks keep
    per-worker attribution as a leading ``worker:wN`` frame."""

    def test_merged_json_capture_attributes_workers(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/profile?seconds=0&format=json"
        )
        assert status == 200, body
        payload = json.loads(body)
        workers = payload["workers"]
        assert set(workers) <= {"w1", "w2"}
        assert workers, "no worker answered the capture"
        for name, doc in workers.items():
            assert doc["worker"] == name
            assert doc["format"] == "folded"
        merged = payload["merged"]
        assert merged["samples"] == sum(
            doc["samples"] for doc in workers.values()
        )
        from repro.obs.prof import parse_folded_line

        for line in merged["folded"]:
            stack, _count = parse_folded_line(line)
            assert stack[0] in ("worker:w1", "worker:w2")

    def test_merged_folded_capture_is_plain_text(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/profile?seconds=0&format=folded"
        )
        assert status == 200, body
        from repro.obs.prof import parse_folded_line

        lines = body.decode("utf-8").splitlines()
        assert lines
        for line in lines:
            stack, _count = parse_folded_line(line)
            assert stack[0].startswith("worker:")

    def test_bad_seconds_rejected_at_the_router(self, cluster):
        status, body = _request(
            cluster.port, "GET", "/v1/profile?seconds=120"
        )
        assert status == 400, body
