"""``repro-hetsim bench-check``: exit codes, warn-only mode, the
verdict JSON artifact, and the rendered report naming offenders.
"""

import json

from repro.cli import EXIT_REGRESSION, main
from repro.obs.history import HISTORY_SCHEMA_VERSION, HistoryStore

FINGERPRINT = "f" * 12


def _write_history(path, candidate_best_s=1.0, n_baseline=5):
    store = HistoryStore(path)
    times = (1.00, 0.98, 1.02, 0.99, 1.01)
    for i in range(n_baseline):
        store.append({
            "benchmark": "projection",
            "envelope": {
                "host_fingerprint": FINGERPRINT,
                "schema_version": HISTORY_SCHEMA_VERSION,
                "run_id": None,
            },
            "metrics": {"modes.batch.best_s": times[i % len(times)]},
        })
    store.append({
        "benchmark": "projection",
        "envelope": {
            "host_fingerprint": FINGERPRINT,
            "schema_version": HISTORY_SCHEMA_VERSION,
            "run_id": None,
        },
        "metrics": {"modes.batch.best_s": candidate_best_s},
    })
    return path


class TestBenchCheckCommand:
    def test_stable_history_exits_zero(self, tmp_path, capsys):
        history = _write_history(tmp_path / "h.jsonl")
        code = main(["bench-check", "--history", str(history)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_five_and_names_metric(self, tmp_path,
                                                    capsys):
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3
        )
        code = main(["bench-check", "--history", str(history)])
        assert code == EXIT_REGRESSION == 5
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "modes.batch.best_s" in out

    def test_warn_only_downgrades_to_zero(self, tmp_path, capsys):
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3
        )
        code = main(
            ["bench-check", "--history", str(history), "--warn-only"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FAIL" in out  # the failure is still visible
        assert "warn-only" in out

    def test_missing_history_is_model_error(self, tmp_path, capsys):
        code = main(
            ["bench-check", "--history", str(tmp_path / "absent.jsonl")]
        )
        assert code == 2

    def test_missing_history_warn_only_is_zero(self, tmp_path, capsys):
        code = main([
            "bench-check", "--history",
            str(tmp_path / "absent.jsonl"), "--warn-only",
        ])
        assert code == 0
        assert "no history" in capsys.readouterr().out

    def test_short_history_stays_open(self, tmp_path, capsys):
        # Fewer than --min-runs comparable baselines: every verdict is
        # "no-baseline" and the gate does not fire -- this is the CI
        # bootstrap mode while the cache accumulates runs.
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3, n_baseline=2
        )
        code = main(["bench-check", "--history", str(history)])
        assert code == 0
        assert "no-baseline" in capsys.readouterr().out

    def test_json_out_artifact(self, tmp_path, capsys):
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3
        )
        verdicts = tmp_path / "verdicts.json"
        code = main([
            "bench-check", "--history", str(history),
            "--json-out", str(verdicts),
        ])
        assert code == 5
        payload = json.loads(verdicts.read_text())
        assert payload["ok"] is False
        assert payload["failures"] == ["modes.batch.best_s"]
        assert payload["verdicts"][0]["baseline_runs"] == 5

    def test_benchmark_filter(self, tmp_path, capsys):
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3
        )
        code = main([
            "bench-check", "--history", str(history),
            "--benchmark", "does-not-exist",
        ])
        assert code == 0
        assert "no candidate runs" in capsys.readouterr().out

    def test_tolerance_flag_loosens_gate(self, tmp_path, capsys):
        history = _write_history(
            tmp_path / "h.jsonl", candidate_best_s=1.3
        )
        code = main([
            "bench-check", "--history", str(history),
            "--tolerance", "0.5",
        ])
        assert code == 0
