"""Tests for table/figure rendering and the experiment registry."""

import pytest

from repro.errors import ModelError, UnknownExperimentError
from repro.measure.harness import MeasurementHarness
from repro.projection.engine import project
from repro.projection.energyproj import project_energy
from repro.reporting.experiments import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.reporting.figures import (
    ascii_chart,
    render_energy_panel,
    render_projection_panel,
    series_to_csv,
)
from repro.reporting.tables import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_title(self):
        text = format_table(["x"], [("1",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ModelError):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestPaperTables:
    def test_table1_formulas(self):
        text = render_table1()
        assert "n <= P/phi + r" in text
        assert "n <= B/mu + r" in text
        assert "r <= B^2" in text

    def test_table2_devices(self):
        text = render_table2()
        for device in ("Core i7-960", "GTX285", "GTX480", "R5870",
                       "LX760", "ASIC"):
            assert device in text
        assert "263mm2" in text

    def test_table3_implementations(self):
        text = render_table3()
        assert "Spiral" in text
        assert "CUBLAS" in text

    def test_table4_published(self):
        text = render_table4()
        assert "1491" in text  # R5870 MMM GFLOP/s
        assert "25532" in text  # ASIC BS Mopts/s

    def test_table4_from_harness(self):
        text = render_table4(MeasurementHarness().table4())
        assert "1491" in text

    def test_table5_both_sources(self):
        derived = render_table5(derived=True)
        published = render_table5(derived=False)
        assert "derived" in derived
        assert "published" in published
        assert "27.3" in derived  # full-precision ASIC MMM mu
        assert "27.4" in published

    def test_table6_roadmap(self):
        text = render_table6()
        assert "40nm" in text and "11nm" in text
        assert "298" in text


class TestAsciiChart:
    def test_renders_all_series(self):
        text = ascii_chart(
            ["a", "b", "c"],
            {"one": [1.0, 2.0, 3.0], "two": [3.0, 2.0, 1.0]},
        )
        assert "legend:" in text
        assert "0=one" in text
        assert "1=two" in text

    def test_nan_values_skipped(self):
        text = ascii_chart(["a", "b"], {"s": [1.0, float("nan")]})
        assert "legend" in text

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            ascii_chart(["a"], {"s": [1.0, 2.0]})

    def test_all_nan_rejected(self):
        with pytest.raises(ModelError):
            ascii_chart(["a"], {"s": [float("nan")]})

    def test_height_validation(self):
        with pytest.raises(ModelError):
            ascii_chart(["a"], {"s": [1.0]}, height=1)


class TestPanelRendering:
    def test_projection_panel(self):
        text = render_projection_panel(project("bs", 0.9))
        assert "BS" in text
        assert "(ba)" in text  # bandwidth-limited marks
        assert "ASIC" in text

    def test_energy_panel(self):
        text = render_energy_panel(project_energy("mmm", 0.9))
        assert "MMM energy" in text
        assert "40nm" in text


class TestCsv:
    def test_round_trip_shape(self):
        csv = series_to_csv("node", ["40nm", "32nm"],
                            {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = csv.strip().splitlines()
        assert lines[0] == "node,a,b"
        assert lines[1] == "40nm,1,3"
        assert len(lines) == 3

    def test_nan_rendered_empty(self):
        csv = series_to_csv("x", [1], {"a": [float("nan")]})
        assert csv.strip().splitlines()[1] == "1,"

    def test_length_check(self):
        with pytest.raises(ModelError):
            series_to_csv("x", [1, 2], {"a": [1.0]})


class TestExperimentRegistry:
    def test_all_artefacts_registered(self):
        assert experiment_ids() == [
            "T1", "T2", "T3", "T4", "T5", "T6",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
            "F10", "S6.2", "X-ROOF",
        ]

    def test_case_insensitive_lookup(self):
        assert get_experiment("t5").exp_id == "T5"

    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("F99")

    @pytest.mark.parametrize("exp_id", ["T1", "T2", "T3", "T6", "F5"])
    def test_cheap_experiments_run(self, exp_id):
        output = run_experiment(exp_id)
        assert len(output) > 50
        assert EXPERIMENTS[exp_id].title

    def test_f8_runs(self):
        output = run_experiment("F8")
        assert "Black-Scholes" in output
        assert "bandwidth-limited" in output
