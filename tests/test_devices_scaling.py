"""Tests for technology-node normalisation (Section 5 conventions)."""

import pytest

from repro.devices.scaling import (
    BASELINE_NODE_NM,
    denormalize_power,
    normalize_raw_measurement,
    normalized_area_factor,
    normalized_power_factor,
)
from repro.devices.specs import Measurement
from repro.errors import ModelError
from repro.units import (
    RELATIVE_POWER_PER_TRANSISTOR,
    area_scale_factor,
    power_scale_factor,
)


class TestUnitScaling:
    def test_area_scale_is_quadratic(self):
        assert area_scale_factor(65, 40) == pytest.approx((40 / 65) ** 2)

    def test_area_scale_identity(self):
        assert area_scale_factor(40, 40) == pytest.approx(1.0)

    def test_area_scale_roundtrip(self):
        assert area_scale_factor(65, 40) * area_scale_factor(
            40, 65
        ) == pytest.approx(1.0)

    def test_power_scale_uses_itrs_trend(self):
        assert power_scale_factor(40, 11) == pytest.approx(0.25)
        assert power_scale_factor(40, 22) == pytest.approx(0.50)

    def test_power_scale_unknown_node(self):
        with pytest.raises(ModelError):
            power_scale_factor(40, 28)

    def test_rel_power_monotone_decreasing(self):
        nodes = sorted(RELATIVE_POWER_PER_TRANSISTOR, reverse=True)
        values = [RELATIVE_POWER_PER_TRANSISTOR[n] for n in nodes]
        assert values == sorted(values, reverse=True)


class TestPaperNormalisation:
    def test_same_generation_bucket(self):
        # The paper treats 40nm and 45nm as one generation: the i7's
        # 193mm2 core area enters Table 4 unscaled (96/0.50 = 192mm2).
        assert normalized_area_factor(45) == pytest.approx(1.0)
        assert normalized_power_factor(45) == pytest.approx(1.0)
        assert normalized_area_factor(40) == pytest.approx(1.0)

    def test_gtx285_area_normalisation_matches_table4(self):
        # 338mm2 at 55nm -> ~178.8mm2 at 40nm; Table 4 implies
        # 425 / 2.40 = 177mm2.
        normalized = 338.0 * normalized_area_factor(55)
        assert normalized == pytest.approx(425.0 / 2.40, rel=0.02)

    def test_65nm_asic_shrinks(self):
        factor = normalized_area_factor(65)
        assert factor == pytest.approx((40 / 65) ** 2)
        assert factor < 0.4

    def test_power_factor_for_old_nodes_below_one(self):
        assert normalized_power_factor(65) < 1.0
        assert normalized_power_factor(55) < 1.0

    def test_baseline_constant(self):
        assert BASELINE_NODE_NM == 40


class TestMeasurementNormalisation:
    def test_normalize_raw(self):
        raw = Measurement(device="ASIC", workload="mmm", throughput=694.0,
                          area_mm2=95.0, watts=24.6, unit="GFLOP/s")
        norm = normalize_raw_measurement(raw, node_nm=65)
        assert norm.throughput == raw.throughput  # rate unchanged
        assert norm.area_mm2 == pytest.approx(
            95.0 * (40 / 65) ** 2
        )
        assert norm.watts < raw.watts

    def test_denormalize_power_roundtrip(self):
        norm_watts = 13.7
        raw = denormalize_power(norm_watts, node_nm=65)
        factor = normalized_power_factor(65)
        assert raw * factor == pytest.approx(norm_watts)
        assert raw > norm_watts

    def test_denormalize_same_generation_is_identity(self):
        assert denormalize_power(85.0, node_nm=45) == pytest.approx(85.0)
