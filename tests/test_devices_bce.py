"""Tests for the BCE derivation (Section 5.1 sizing and unit budgets)."""

import math

import pytest

from repro.devices.bce import (
    ATOM_AREA_MM2,
    BCE,
    DEFAULT_BCE,
    DEFAULT_BCE_POWER_W,
    DEFAULT_FAST_CORE_R,
)
from repro.devices.catalog import get_device
from repro.devices.measurements import get_measurement
from repro.errors import CalibrationError
from repro.workloads.registry import get_workload


class TestSizing:
    def test_default_r_is_two(self):
        assert DEFAULT_FAST_CORE_R == 2
        assert DEFAULT_BCE.fast_core_r == 2

    def test_bce_area_from_atom(self):
        # 26mm2 Atom minus 10% non-compute = 23.4mm2.
        assert DEFAULT_BCE.area_mm2 == pytest.approx(
            ATOM_AREA_MM2 * 0.9
        )

    def test_r2_matches_one_i7_core(self):
        # The paper's sanity check: 2 BCE ~ one i7 core (193/4 mm2).
        i7 = get_device("Core i7-960")
        per_core = i7.core_area_mm2 / i7.cores
        assert per_core / DEFAULT_BCE.area_mm2 == pytest.approx(
            2.0, rel=0.05
        )

    def test_fast_core_perf_and_power(self):
        assert DEFAULT_BCE.fast_core_perf == pytest.approx(math.sqrt(2))
        assert DEFAULT_BCE.fast_core_power == pytest.approx(2**0.875)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            BCE(fast_core_r=0.5)
        with pytest.raises(CalibrationError):
            BCE(power_w=-1.0)


class TestPowerBudget:
    def test_100w_is_10_bce_at_40nm(self):
        # The calibration anchor: P = 10 at 40nm.
        assert DEFAULT_BCE_POWER_W == 10.0
        assert DEFAULT_BCE.power_budget_bce(100.0) == pytest.approx(10.0)

    def test_scaling_with_rel_power(self):
        # At 11nm a BCE costs 0.25x the watts -> 4x the budget in BCE.
        assert DEFAULT_BCE.power_budget_bce(
            100.0, rel_power=0.25
        ) == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            DEFAULT_BCE.power_budget_bce(0.0)
        with pytest.raises(CalibrationError):
            DEFAULT_BCE.power_budget_bce(100.0, rel_power=0.0)


class TestThroughput:
    def test_bce_rate_is_fast_core_over_sqrt_r(self):
        assert DEFAULT_BCE.throughput_from_fast_core(
            96.0
        ) == pytest.approx(96.0 / math.sqrt(2))

    def test_validation(self):
        with pytest.raises(CalibrationError):
            DEFAULT_BCE.throughput_from_fast_core(0.0)


class TestBandwidthBudget:
    def test_fft1024_bandwidth_scale(self):
        # The DESIGN.md calibration: B ~ 42 BCE at 180 GB/s.
        fft = get_workload("fft")
        fast = get_measurement("Core i7-960", "fft", 1024)
        b = DEFAULT_BCE.bandwidth_budget_bce(180.0, fft, 1024, fast, 1e9)
        assert b == pytest.approx(41.86, rel=0.01)

    def test_mmm_bandwidth_scale(self):
        mmm = get_workload("mmm")
        fast = get_measurement("Core i7-960", "mmm", None)
        b = DEFAULT_BCE.bandwidth_budget_bce(180.0, mmm, 2048, fast, 1e9)
        assert b == pytest.approx(84.85, rel=0.01)

    def test_bs_bandwidth_scale(self):
        bs = get_workload("bs")
        fast = get_measurement("Core i7-960", "bs", None)
        b = DEFAULT_BCE.bandwidth_budget_bce(180.0, bs, 1024, fast, 1e6)
        assert b == pytest.approx(52.27, rel=0.01)

    def test_compulsory_bandwidth_positive(self):
        fft = get_workload("fft")
        fast = get_measurement("Core i7-960", "fft", 1024)
        per_bce = DEFAULT_BCE.compulsory_bandwidth_gbps(
            fft, 1024, fast, 1e9
        )
        assert per_bce == pytest.approx(0.32 * 19.0 / math.sqrt(2) , rel=1e-9)

    def test_validation(self):
        fft = get_workload("fft")
        fast = get_measurement("Core i7-960", "fft", 1024)
        with pytest.raises(CalibrationError):
            DEFAULT_BCE.bandwidth_budget_bce(0.0, fft, 1024, fast, 1e9)


class TestCalibrationGuardRails:
    """Changing the free constants must visibly move the figures.

    These tests protect the calibration from silent drift: if someone
    edits DEFAULT_BCE_POWER_W or the FFT anchors, the projection
    endpoints shift far beyond the figure-match tolerances and the
    shape benchmarks fail -- these tests document the mechanism.
    """

    def test_doubling_bce_watts_halves_power_budget(self):
        from repro.devices.bce import BCE
        from repro.itrs.roadmap import ITRS_2009
        from repro.projection.engine import node_budget

        heavy = BCE(power_w=20.0)
        node = ITRS_2009.node(11)
        base = node_budget(node, "mmm", None, bce=DEFAULT_BCE)
        scaled = node_budget(node, "mmm", None, bce=heavy)
        assert scaled.power == pytest.approx(base.power / 2)

    def test_power_calibration_moves_figure7_endpoint(self):
        from repro.devices.bce import BCE
        from repro.projection.engine import project

        baseline = project("mmm", 0.999).by_label()["ASIC"]
        heavy = project(
            "mmm", 0.999, bce=BCE(power_w=20.0)
        ).by_label()["ASIC"]
        # Half the BCE power budget -> roughly half the plateau.
        ratio = heavy.final_speedup() / baseline.final_speedup()
        assert 0.4 < ratio < 0.65

    def test_bandwidth_unit_scales_with_fft_anchor(self):
        # B is inversely proportional to the i7 FFT-1024 anchor; the
        # anchored value of ~42 BCE is what pins Figure 6's plateaus.
        from repro.projection.engine import bandwidth_bce_units

        b = bandwidth_bce_units("fft", 1024, 180.0)
        assert b == pytest.approx(
            180.0 / (0.32 * 19.0 / math.sqrt(2)), rel=1e-6
        )
