"""Tensor-materialized serving: bit-identity, fallback, fast path.

A service booted with ``ServiceConfig.tensor_dir`` must be
indistinguishable from a live one on every on-grid request -- same
status, same payload, same key order (``json.dumps`` equality) --
while answering from memory-mapped tensors instead of the dispatcher.
Off-grid ``f`` on ``/v1/speedup`` may be served by harmonic
interpolation (carrying an ``interpolation`` block); sweep/optimize
require exact hits for every cell and otherwise fall back.  A store
that fails integrity checks quarantines: the service stays healthy and
every request falls back to live compute.

The transport fast path is the byte-level tier above all this:
untraced keep-alive POSTs replay pre-encoded responses and settle
their metrics through a deferred drain.
"""

import asyncio
import json
import shutil

import pytest

from repro.obs.metrics import validate_prometheus
from repro.perf.tensorstore import (
    REL_ERROR_BOUND,
    build_tensor_store,
    materialize_spec,
)
from repro.projection.designs import standard_designs
from repro.service.app import ModelService, ServiceConfig

#: Grid used by every test below; 0.45 and 0.7 are deliberately absent
#: so off-grid behaviour is exercised inside the materialized range.
F_GRID = (0.0, 0.4, 0.5, 0.9, 0.99, 0.999, 1.0)


@pytest.fixture(scope="module")
def tensor_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serving-tensors")
    build_tensor_store(
        directory,
        spec=materialize_spec(f_grid=F_GRID),
        executor="serial",
    )
    return directory


def _run(coro):
    return asyncio.run(coro)


def _live_config(**overrides):
    defaults = dict(batch_window_ms=0.5, request_timeout_s=5.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _collect(service, requests):
    out = []
    for path, body in requests:
        status, payload = await service.handle(
            "POST", path, json.dumps(body).encode()
        )
        out.append((status, json.dumps(payload)))
    return out


def _differential_mix():
    """On-grid requests across all endpoints, workloads, designs."""
    requests = []
    for workload, fft_size in (("mmm", None), ("fft", 1024),
                               ("bs", None)):
        extra = {"fft_size": fft_size} if fft_size else {}
        labels = [
            d.short_label for d in standard_designs(workload, fft_size)
        ]
        for f in (0.5, 0.99):
            for design in labels:
                requests.append(
                    ("/v1/speedup",
                     {"workload": workload, "f": f, "design": design,
                      "node_nm": 22, **extra})
                )
            requests.append(
                ("/v1/sweep",
                 {"workload": workload, "f": f, "design": labels[0],
                  **extra})
            )
            for node_nm in (40, 11):
                requests.append(
                    ("/v1/optimize",
                     {"workload": workload, "f": f, "node_nm": node_nm,
                      **extra})
                )
        # r_max boundaries: prefix-argmax must hold through serving.
        for r_max in (1, 16):
            requests.append(
                ("/v1/speedup",
                 {"workload": workload, "f": 0.99, "design": labels[0],
                  "node_nm": 40, "r_max": r_max, **extra})
            )
    return requests


class TestBitIdentity:
    def test_on_grid_matches_live_service_exactly(self, tensor_dir):
        """Status and serialized payload equal for every request --
        including infeasible cells, which must fall back so the live
        path raises its exact error."""
        mix = _differential_mix()

        async def main():
            live = ModelService(_live_config())
            tensor = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                live_out = await _collect(live, mix)
                tensor_out = await _collect(tensor, mix)
                counters = tensor.metrics.snapshot()["tensorstore"]
            finally:
                live.close()
                tensor.close()
            return live_out, tensor_out, counters

        live_out, tensor_out, counters = _run(main())
        assert tensor_out == live_out
        assert counters["hit"] == len(mix)
        assert counters["fallback"] == 0

    def test_healthz_reports_tensor_readiness(self, tensor_dir):
        async def main():
            service = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                return await service.handle("GET", "/healthz")
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200
        tensor = payload["tensor"]
        assert tensor["status"] == "ready"
        assert tensor["groups"] == 3
        assert tensor["f_points"] == len(F_GRID)


class TestInterpolatedServing:
    def test_speedup_interp_carries_block_and_bound(self, tensor_dir):
        body = {"workload": "mmm", "f": 0.45, "design": "ASIC",
                "node_nm": 22}

        async def main():
            live = ModelService(_live_config())
            tensor = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                _, live_payload = await live.handle(
                    "POST", "/v1/speedup", json.dumps(body).encode()
                )
                status, payload = await tensor.handle(
                    "POST", "/v1/speedup", json.dumps(body).encode()
                )
                counters = tensor.metrics.snapshot()["tensorstore"]
            finally:
                live.close()
                tensor.close()
            return status, payload, live_payload, counters

        status, payload, live_payload, counters = _run(main())
        assert status == 200
        interp = payload["interpolation"]
        assert interp["kind"] == "harmonic-f"
        assert interp["f_bracket"] == [0.4, 0.5]
        assert interp["rel_error_bound"] == REL_ERROR_BOUND
        assert counters["interp"] == 1
        live_point = live_payload["point"]
        point = payload["point"]
        assert point["r"] == live_point["r"]
        assert point["n"] == live_point["n"]
        rel = abs(point["speedup"] - live_point["speedup"]) / (
            live_point["speedup"]
        )
        assert rel <= REL_ERROR_BOUND

    @pytest.mark.parametrize("path,body", (
        ("/v1/sweep", {"workload": "mmm", "f": 0.45, "design": "ASIC"}),
        ("/v1/optimize", {"workload": "mmm", "f": 0.45, "node_nm": 22}),
    ))
    def test_sweep_and_optimize_fall_back_off_grid(self, tensor_dir,
                                                   path, body):
        """Aggregate endpoints never interpolate: off-grid f falls
        back to live compute and matches it exactly."""
        async def main():
            live = ModelService(_live_config())
            tensor = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                live_out = await live.handle(
                    "POST", path, json.dumps(body).encode()
                )
                tensor_out = await tensor.handle(
                    "POST", path, json.dumps(body).encode()
                )
                counters = tensor.metrics.snapshot()["tensorstore"]
            finally:
                live.close()
                tensor.close()
            return live_out, tensor_out, counters

        live_out, tensor_out, counters = _run(main())
        assert json.dumps(tensor_out) == json.dumps(live_out)
        assert counters["fallback"] == 1
        assert counters["interp"] == 0


class TestQuarantine:
    @pytest.fixture()
    def corrupt_dir(self, tensor_dir, tmp_path):
        copy = tmp_path / "corrupt"
        shutil.copytree(tensor_dir, copy)
        victim = next(copy.glob("*.f64"))
        blob = bytearray(victim.read_bytes())
        blob[0] ^= 0xFF
        victim.write_bytes(bytes(blob))
        return copy

    def test_corrupt_store_quarantines_not_crashes(self, corrupt_dir):
        body = {"workload": "mmm", "f": 0.99, "design": "ASIC",
                "node_nm": 22}

        async def main():
            live = ModelService(_live_config())
            service = ModelService(
                _live_config(tensor_dir=corrupt_dir)
            )
            try:
                health = await service.handle("GET", "/healthz")
                answer = await service.handle(
                    "POST", "/v1/speedup", json.dumps(body).encode()
                )
                reference = await live.handle(
                    "POST", "/v1/speedup", json.dumps(body).encode()
                )
                counters = service.metrics.snapshot()["tensorstore"]
                fastpath = service.fastpath
            finally:
                live.close()
                service.close()
            return health, answer, reference, counters, fastpath

        health, answer, reference, counters, fastpath = _run(main())
        status, payload = health
        # Quarantine is informational: the service itself stays ready.
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["tensor"]["status"] == "quarantined"
        assert "checksum" in payload["tensor"]["error"]
        # Requests still answer correctly via live compute.
        assert json.dumps(answer) == json.dumps(reference)
        assert counters["fallback"] == 1
        # No byte cache without a trustworthy store.
        assert fastpath is None


class TestTransportFastPath:
    BODY = json.dumps(
        {"workload": "mmm", "f": 0.99, "design": "ASIC", "node_nm": 22}
    ).encode()

    def test_replays_identical_json_without_id_headers(self,
                                                       tensor_dir):
        async def main():
            service = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                blob = service.fastpath.response_bytes(
                    "POST", "/v1/speedup", {}, self.BODY
                )
                _, payload = await service.handle(
                    "POST", "/v1/speedup", self.BODY
                )
            finally:
                service.close()
            return blob, payload

        blob, payload = _run(main())
        head, _, body = blob.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: keep-alive" in head
        assert b"X-Request-Id" not in head
        assert b"X-Trace-Id" not in head
        assert json.loads(body) == payload
        assert f"Content-Length: {len(body)}".encode() in head

    def test_eligibility_gates(self, tensor_dir):
        service = ModelService(_live_config(tensor_dir=tensor_dir))
        fp = service.fastpath
        try:
            # Sending X-Request-Id opts into tracing: full pipeline.
            assert fp.response_bytes(
                "POST", "/v1/speedup", {"x-request-id": "abc"},
                self.BODY,
            ) is None
            # Connection: close cannot reuse a keep-alive response.
            assert fp.response_bytes(
                "POST", "/v1/speedup", {"connection": "close"},
                self.BODY,
            ) is None
            assert fp.response_bytes(
                "GET", "/v1/speedup", {}, self.BODY
            ) is None
            assert fp.response_bytes(
                "POST", "/healthz", {}, self.BODY
            ) is None
        finally:
            service.close()

    def test_unanswerable_bodies_negative_cache(self, tensor_dir):
        service = ModelService(_live_config(tensor_dir=tensor_dir))
        fp = service.fastpath
        try:
            bad = b"not json"
            off_grid_sweep = json.dumps(
                {"workload": "mmm", "f": 0.45, "design": "ASIC"}
            ).encode()
            for body in (bad, off_grid_sweep):
                assert fp.response_bytes(
                    "POST", "/v1/sweep", {}, body
                ) is None
            entries = fp.stats()["entries"]
            # A repeat probe hits the negative cache, not a rebuild.
            assert fp.response_bytes(
                "POST", "/v1/sweep", {}, bad
            ) is None
            assert fp.stats()["entries"] == entries
        finally:
            service.close()

    def test_deferred_accounting_drains_into_metrics(self, tensor_dir):
        service = ModelService(_live_config(tensor_dir=tensor_dir))
        fp = service.fastpath
        try:
            for _ in range(3):
                assert fp.response_bytes(
                    "POST", "/v1/speedup", {}, self.BODY
                ) is not None
            assert fp.stats()["pending"] == 3
            fp.drain()
            assert fp.stats()["pending"] == 0
            snapshot = service.metrics.snapshot()
            assert snapshot["requests"]["/v1/speedup"]["200"] == 3
            assert snapshot["tensorstore"]["hit"] == 3
        finally:
            service.close()


class TestPrometheusFamilies:
    def test_tensor_families_render_and_validate(self, tensor_dir):
        async def main():
            service = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                await service.handle(
                    "POST", "/v1/speedup", TestTransportFastPath.BODY
                )
                return await service.handle_request(
                    "GET", "/metrics?format=prom"
                )
            finally:
                service.close()

        status, text, _headers = _run(main())
        assert status == 200
        names = validate_prometheus(
            text,
            required=(
                "repro_tensorstore_requests_total",
                "repro_tensorstore_build_age_seconds",
                "repro_service_requests_total",
            ),
        )
        assert 'outcome="hit"' in text
        assert "repro_tensorstore_build_age_seconds" in names

    def test_json_metrics_carry_store_block(self, tensor_dir):
        async def main():
            service = ModelService(_live_config(tensor_dir=tensor_dir))
            try:
                return await service.handle("GET", "/metrics")
            finally:
                service.close()

        status, payload = _run(main())
        assert status == 200
        block = payload["tensorstore"]
        assert block["store"]["status"] == "ready"
        assert block["fastpath"] == {"entries": 0, "pending": 0}
        assert set(block) >= {"hit", "interp", "fallback"}
