"""Pareto-front properties: dominance, order-invariance, merging.

The satellite acceptance properties: no dominated point ever sits on
the front, and the front is invariant under evaluation order and
shard/worker partitioning (hypothesis drives both).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.front import (
    DSEPoint,
    dominates,
    front_payload,
    merge_fronts,
    pareto_front,
    points_from_payload,
)
from repro.errors import ModelError


def _point(i, speedup, area, power):
    return DSEPoint(
        config_id=f"cfg-{i}",
        scenario="t",
        provider="table1",
        chip="ASIC",
        workload="mmm",
        f=0.99,
        node="40nm",
        area_scale=1.0,
        power_scale=1.0,
        area=area,
        power=power,
        speedup=speedup,
        r=4.0,
        n=16.0,
        limiter="area",
    )


#: Small coordinate pools force plenty of ties and dominance chains.
_coords = st.sampled_from([1.0, 2.0, 3.0, 5.0, 8.0])
_point_lists = st.lists(
    st.tuples(_coords, _coords, _coords), min_size=0, max_size=24
).map(
    lambda triples: [
        _point(i, s, a, p) for i, (s, a, p) in enumerate(triples)
    ]
)


class TestDominance:
    def test_strictness_required(self):
        a = _point(0, 5.0, 2.0, 2.0)
        b = _point(1, 5.0, 2.0, 2.0)
        assert not dominates(a, b)
        assert dominates(_point(2, 6.0, 2.0, 2.0), a)
        assert dominates(_point(3, 5.0, 1.0, 2.0), a)
        assert not dominates(_point(4, 6.0, 3.0, 2.0), a)

    @given(_point_lists)
    @settings(max_examples=200, deadline=None)
    def test_no_dominated_point_on_the_front(self, points):
        front = pareto_front(points)
        for kept in front:
            assert not any(
                dominates(other, kept) for other in points
            )

    @given(_point_lists)
    @settings(max_examples=200, deadline=None)
    def test_every_excluded_point_is_dominated(self, points):
        front = pareto_front(points)
        kept_ids = {p.config_id for p in front}
        for point in points:
            if point.config_id in kept_ids:
                continue
            assert any(dominates(kept, point) for kept in front)


class TestInvariance:
    @given(_point_lists, st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_evaluation_order_cannot_change_the_front(
        self, points, rng
    ):
        baseline = pareto_front(points)
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert pareto_front(shuffled) == baseline

    @given(_point_lists, st.integers(min_value=1, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_shard_partitioning_cannot_change_the_front(
        self, points, shards
    ):
        """Worker count / sharding: per-shard fronts merge exactly."""
        baseline = pareto_front(points)
        shard_fronts = [
            pareto_front(points[shard::shards])
            for shard in range(shards)
        ]
        assert merge_fronts(shard_fronts) == baseline

    @given(_point_lists)
    @settings(max_examples=100, deadline=None)
    def test_front_is_idempotent(self, points):
        front = pareto_front(points)
        assert pareto_front(front) == front


class TestPayloads:
    def test_roundtrip_through_payload(self):
        points = [_point(0, 5.0, 2.0, 1.0), _point(1, 4.0, 1.0, 1.0)]
        front = pareto_front(points)
        payload = front_payload(front)
        assert payload["size"] == len(front)
        assert points_from_payload(payload) == front
        # campaign task results carry the list under "front"
        assert points_from_payload({"front": payload["points"]}) == (
            front
        )
        assert points_from_payload(payload["points"]) == front

    def test_bad_payloads_raise(self):
        with pytest.raises(ModelError, match="points"):
            points_from_payload({"size": 3})
        with pytest.raises(ModelError, match="object"):
            points_from_payload(42)
        with pytest.raises(ModelError, match="objects"):
            points_from_payload([1, 2])
        with pytest.raises(ModelError, match="bad front point"):
            points_from_payload([{"config_id": "x"}])
