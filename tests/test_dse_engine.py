"""DSE engine: providers, multi-U-core chips, config expansion.

The headline acceptance properties asserted here:

* a multi-U-core chip with one substrate forced collapses to the
  single-U-core optimizer bit-identically;
* the ``table1`` provider is the identity regime -- its sweep
  reproduces :mod:`repro.projection` floats exactly;
* the alternative providers genuinely change the answer.
"""

import math

import pytest

from repro.core.chip import HeterogeneousChip
from repro.core.constraints import Budget
from repro.core.multicore import MultiUCoreChip, WorkloadSegment
from repro.core.optimizer import optimize, sweep_designs
from repro.devices.params import ucore_for
from repro.dse.dsl import ChipSpec, DSEScenario, SegmentSpec
from repro.dse.engine import (
    evaluate_config,
    exhaustive_sweep,
    expand_configs,
    resolve_chip,
)
from repro.dse.providers import get_provider, provider_names
from repro.errors import ModelError
from repro.itrs.scenarios import BASELINE
from repro.projection.engine import node_budget, project

BUDGET = Budget(area=149.0, power=36.0, bandwidth=52.0)


def _asic():
    return ucore_for("ASIC", "mmm")


class TestMultiUCoreCollapse:
    def test_single_segment_equals_heterogeneous_chip(self):
        asic = _asic()
        multi = MultiUCoreChip(
            [WorkloadSegment("only", 3.0, asic)]
        )
        single = HeterogeneousChip(asic)
        assert multi.allocation == (1.0,)
        assert multi.phi_eff == asic.phi
        assert multi.mu_bw == asic.mu
        for f in (0.0, 0.9, 0.999):
            for r, n in ((1.0, 40.0), (4.0, 9.5), (16.0, 66.0)):
                if f > 0 and n <= r:
                    continue
                assert multi.speedup(f, n, r) == single.speedup(
                    f, n, r
                )
        for r in (1.0, 4.0, 16.0):
            assert multi.bound_power(BUDGET, r) == (
                single.bound_power(BUDGET, r)
            )
            assert multi.bound_bandwidth(BUDGET, r) == (
                single.bound_bandwidth(BUDGET, r)
            )

    def test_single_segment_optimize_bit_identical(self):
        asic = _asic()
        multi = MultiUCoreChip([WorkloadSegment("only", 1.0, asic)])
        single = HeterogeneousChip(asic)
        a = optimize(multi, 0.99, BUDGET)
        b = optimize(single, 0.99, BUDGET)
        assert (a.r, a.n, a.speedup) == (b.r, b.n, b.speedup)
        assert a.limiter is b.limiter

    def test_allocation_sums_to_one_and_follows_sqrt_rule(self):
        gpu = ucore_for("GTX480", "mmm")
        asic = _asic()
        chip = MultiUCoreChip(
            [
                WorkloadSegment("hot", 3.0, asic),
                WorkloadSegment("simd", 1.0, gpu),
            ]
        )
        assert math.isclose(sum(chip.allocation), 1.0)
        g = (0.75, 0.25)
        want = [
            math.sqrt(g[0] / asic.mu),
            math.sqrt(g[1] / gpu.mu),
        ]
        total = sum(want)
        for got, expect in zip(chip.allocation, want):
            assert math.isclose(got, expect / total)

    def test_optimal_split_beats_perturbed_splits(self):
        """The closed form really is the minimiser of parallel time."""
        gpu = ucore_for("GTX480", "mmm")
        asic = _asic()
        segments = [
            WorkloadSegment("hot", 2.0, asic),
            WorkloadSegment("simd", 1.0, gpu),
        ]
        chip = MultiUCoreChip(segments)
        a_opt = chip.allocation[0]
        g = chip._g
        mus = (asic.mu, gpu.mu)

        def parallel_time(a0):
            return g[0] / (mus[0] * a0) + g[1] / (mus[1] * (1 - a0))

        best = parallel_time(a_opt)
        for eps in (-0.05, -0.01, 0.01, 0.05):
            a = a_opt + eps
            if 0 < a < 1:
                assert parallel_time(a) >= best

    def test_needs_fabric_and_segments(self):
        asic = _asic()
        with pytest.raises(ModelError, match="at least one"):
            MultiUCoreChip([])
        with pytest.raises(ModelError, match="weight"):
            WorkloadSegment("k", 0.0, asic)
        chip = MultiUCoreChip([WorkloadSegment("k", 1.0, asic)])
        with pytest.raises(ModelError, match="fabric"):
            chip.speedup(0.99, 4.0, 4.0)


class TestProviders:
    def test_registry(self):
        assert provider_names() == [
            "table1", "ginosar-sqrtm", "yavits"
        ]
        with pytest.raises(ModelError, match="provider"):
            get_provider("magic")

    def test_table1_is_identity(self):
        p = get_provider("table1")
        assert p.identity
        assert p.effective_parallel(9.0) == 9.0
        assert p.transform_budget(BUDGET) is BUDGET

    def test_ginosar_sublinear(self):
        p = get_provider("ginosar-sqrtm")
        assert not p.identity
        assert p.effective_parallel(0.5) == 0.5
        assert p.effective_parallel(16.0) == 4.0
        assert p.transform_budget(BUDGET) is BUDGET

    def test_yavits_transforms_power(self):
        p = get_provider("yavits")
        transformed = p.transform_budget(BUDGET)
        assert transformed.power == BUDGET.power ** 0.9
        assert transformed.area == BUDGET.area
        assert p.effective_parallel(1.0) < 1.0 or math.isclose(
            p.effective_parallel(1.0), 1.0 / (1 + 0.05 * math.log(2))
        )

    def test_providers_disagree_on_the_same_space(self):
        best = {}
        for name in provider_names():
            scenario = DSEScenario(
                name=f"p-{name}",
                provider=name,
                f_values=(0.99,),
                chips=(ChipSpec(kind="single", device="GTX480"),),
            )
            points, _ = exhaustive_sweep(expand_configs(scenario))
            best[name] = max(p.speedup for p in points)
        assert best["ginosar-sqrtm"] < best["table1"]
        assert best["yavits"] < best["table1"]


class TestResolveChip:
    def test_single_asic_mmm_is_bandwidth_exempt(self):
        chip, exempt = resolve_chip(
            ChipSpec(kind="single", device="ASIC"), "mmm"
        )
        assert isinstance(chip, HeterogeneousChip)
        assert exempt

    def test_single_gpu_keeps_the_bandwidth_bound(self):
        _, exempt = resolve_chip(
            ChipSpec(kind="single", device="GTX480"), "mmm"
        )
        assert not exempt

    def test_best_substrate_resolves_to_highest_mu(self):
        chip, exempt = resolve_chip(
            ChipSpec(
                kind="multi",
                segments=(SegmentSpec(name="k", device="best"),),
            ),
            "mmm",
        )
        assert chip.label == "ASIC"  # highest mu for MMM
        assert exempt  # all resolved devices are ASIC

    def test_mixed_multi_chip_is_not_exempt(self):
        _, exempt = resolve_chip(
            ChipSpec(
                kind="multi",
                segments=(
                    SegmentSpec(name="a", device="ASIC"),
                    SegmentSpec(name="b", device="GTX480"),
                ),
            ),
            "mmm",
        )
        assert not exempt


class TestExpansion:
    def test_deterministic_order_and_unique_ids(self):
        scenario = DSEScenario(name="exp", f_values=(0.9, 0.99))
        a = expand_configs(scenario, (0.5, 1.0), (1.0,))
        b = expand_configs(scenario, (0.5, 1.0), (1.0,))
        ids = [c.config_id for c in a]
        assert ids == [c.config_id for c in b]
        assert len(set(ids)) == len(ids)
        # 5 default chips x 2 f x 5 nodes x 2 area x 1 power
        assert len(a) == 100

    def test_single_segment_multi_matches_single_through_engine(self):
        single = DSEScenario(
            name="s",
            f_values=(0.99,),
            chips=(ChipSpec(kind="single", device="ASIC"),),
        )
        multi = DSEScenario(
            name="m",
            f_values=(0.99,),
            chips=(
                ChipSpec(
                    kind="multi",
                    segments=(
                        SegmentSpec(name="k", device="ASIC"),
                    ),
                ),
            ),
        )
        pa, _ = exhaustive_sweep(expand_configs(single))
        pb, _ = exhaustive_sweep(expand_configs(multi))
        assert len(pa) == len(pb) == 5
        for a, b in zip(pa, pb):
            assert (a.speedup, a.r, a.n, a.limiter) == (
                b.speedup, b.r, b.n, b.limiter
            )

    def test_table1_sweep_matches_projection_engine(self):
        """The engine's floats == repro.projection's floats."""
        scenario = DSEScenario(name="diff", f_values=(0.99,))
        points, _ = exhaustive_sweep(expand_configs(scenario))
        result = project("mmm", 0.99, BASELINE)
        by_key = {
            (p.chip, p.node): p.speedup for p in points
        }
        for series in result.series:
            label = series.design.short_label
            if label not in ("LX760", "GTX285", "GTX480", "R5870",
                             "ASIC"):
                continue
            for cell in series.cells:
                if cell.point is None:
                    continue
                assert by_key[(label, cell.node.label)] == (
                    cell.point.speedup
                )

    def test_infeasible_configs_count_not_crash(self):
        scenario = DSEScenario(
            name="tiny",
            f_values=(0.99,),
            chips=(ChipSpec(kind="single", device="ASIC"),),
        )
        configs = expand_configs(scenario, (1e-9,), (1e-9,))
        points, infeasible = exhaustive_sweep(configs)
        assert infeasible == len(configs)
        assert points == []

    def test_evaluate_config_speedup_positive(self):
        scenario = DSEScenario(name="one", f_values=(0.5,))
        config = expand_configs(scenario)[0]
        point = evaluate_config(config)
        assert point is not None
        assert point.speedup > 0
        # the nominal budgets survive untouched on the point
        node = BASELINE.roadmap.nodes[0]
        budget = node_budget(node, "mmm", None, BASELINE)
        assert point.area == budget.area
        assert point.power == budget.power
