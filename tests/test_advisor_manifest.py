"""Tests for the design advisor and the calibration manifest."""

import json

import pytest

from repro.cli import main
from repro.core.metrics import Objective
from repro.errors import InfeasibleDesignError, ModelError
from repro.itrs.scenarios import get_scenario
from repro.projection.advisor import (
    Requirement,
    advise,
    render_advice,
)
from repro.reporting.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_json,
)


class TestRequirement:
    def test_defaults(self):
        req = Requirement("mmm", 0.99)
        assert req.node_nm == 40
        assert req.objective is Objective.MAX_SPEEDUP

    def test_validation(self):
        with pytest.raises(ModelError):
            Requirement("mmm", 1.5)


class TestAdvise:
    def test_ranked_and_complete(self):
        recs = advise(Requirement("mmm", 0.99, node_nm=22))
        assert [r.rank for r in recs] == list(range(1, len(recs) + 1))
        assert {r.label for r in recs} == {
            "SymCMP", "AsymCMP", "LX760", "GTX285", "GTX480", "R5870",
            "ASIC",
        }

    def test_mmm_speed_winner_is_asic(self):
        recs = advise(Requirement("mmm", 0.999, node_nm=11))
        assert recs[0].label == "ASIC"
        assert "power-limited" in recs[0].rationale

    def test_bandwidth_tie_broken_by_energy(self):
        # At the FFT bandwidth ceiling several fabrics tie on speedup;
        # the recommendation must order the tie group by energy.
        recs = advise(Requirement("fft", 0.99, node_nm=22))
        tied = [
            r for r in recs
            if r.point.speedup == pytest.approx(
                recs[0].point.speedup, rel=0.02
            )
        ]
        assert len(tied) >= 3
        energies = [r.energy for r in tied]
        assert energies == sorted(energies)
        assert any(
            "saves" in r.rationale or "ties the leader" in r.rationale
            for r in tied[1:]
        )

    def test_energy_objective_changes_design_points(self):
        speed = advise(Requirement("mmm", 0.9, node_nm=40))
        frugal = advise(
            Requirement(
                "mmm", 0.9, node_nm=40, objective=Objective.MIN_ENERGY
            )
        )
        speed_asic = next(r for r in speed if r.label == "ASIC")
        frugal_asic = next(r for r in frugal if r.label == "ASIC")
        assert frugal_asic.point.r <= speed_asic.point.r
        assert frugal_asic.energy <= speed_asic.energy

    def test_scenario_aware(self):
        lean = advise(
            Requirement(
                "fft", 0.99, node_nm=11,
                scenario=get_scenario("low-power"),
            )
        )
        assert lean[0].label == "ASIC"
        # Under 10W only the ASIC reaches the bandwidth ceiling.
        assert "bandwidth-limited" in lean[0].rationale
        runners = [r for r in lean if r.label in ("GTX285", "LX760")]
        assert all("power-limited" in r.rationale for r in runners)

    def test_infeasible_requirement(self):
        # A die smaller than one BCE cannot host any design.
        from repro.itrs.roadmap import ITRS_2009
        from repro.itrs.scenarios import Scenario

        sliver = Scenario(
            name="sliver",
            description="sub-BCE die",
            roadmap=ITRS_2009.with_overrides(area_factor=0.04),
        )
        with pytest.raises(InfeasibleDesignError):
            advise(Requirement("mmm", 0.99, node_nm=40,
                               scenario=sliver))

    def test_render(self):
        text = render_advice(advise(Requirement("bs", 0.9)))
        assert text.startswith("1. ")
        assert "energy" in text


class TestManifest:
    @pytest.fixture(scope="class")
    def manifest(self):
        return build_manifest()

    def test_schema_marker(self, manifest):
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_json_round_trip(self):
        parsed = json.loads(manifest_json())
        assert parsed["bce"]["power_w"] == 10.0

    def test_tables_present(self, manifest):
        assert manifest["table4"]["mmm"]["R5870"][0] == 1491.0
        assert manifest["table5_published"]["ASIC"]["mmm"] == (
            0.79, 27.4,
        )

    def test_derived_matches_published_within_rounding(self, manifest):
        for device, row in manifest["table5_published"].items():
            for key, (phi_pub, mu_pub) in row.items():
                phi, mu = manifest["table5_derived"][device][key]
                assert mu == pytest.approx(mu_pub, rel=0.02)
                assert phi == pytest.approx(phi_pub, rel=0.02)

    def test_roadmap_rows(self, manifest):
        roadmap = manifest["roadmap_itrs2009"]
        assert len(roadmap) == 5
        assert roadmap[-1]["node_nm"] == 11
        assert roadmap[-1]["max_area_bce"] == 298.0

    def test_provenance_recorded(self, manifest):
        assert "CALIBRATION.md" in manifest["bce"]["provenance"]
        assert "CALIBRATION.md" in manifest["fft_anchors"]["provenance"]


class TestCliCommands:
    def test_advise_command(self, capsys):
        assert main(
            ["advise", "--workload", "fft", "--f", "0.99",
             "--node", "22"]
        ) == 0
        out = capsys.readouterr().out
        assert "1. " in out
        assert "ties the leader" in out

    def test_advise_with_objective(self, capsys):
        assert main(
            ["advise", "--workload", "mmm", "--f", "0.9",
             "--objective", "min-energy"]
        ) == 0
        assert "energy" in capsys.readouterr().out

    def test_manifest_command(self, capsys):
        assert main(["manifest"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["schema"] == MANIFEST_SCHEMA
