"""Tests for the power-breakdown and bandwidth-validation models."""

import pytest

from repro.errors import ModelError
from repro.measure.powermodel import (
    BREAKDOWN_FRACTIONS,
    COMPONENT_ORDER,
    breakdown_for,
    fft_power_series,
)
from repro.measure.roofline import (
    GTX285_ONCHIP_LIMIT_LOG2,
    compulsory_bandwidth_gbps,
    fft_bandwidth_series,
    is_compute_bound,
)


class TestPowerBreakdown:
    def test_fractions_sum_to_one(self):
        for kind, fractions in BREAKDOWN_FRACTIONS.items():
            assert sum(fractions.values()) == pytest.approx(1.0), kind

    def test_components_sum_to_total(self):
        pb = breakdown_for("GTX480", 10)
        parts = sum(pb.component(c) for c in COMPONENT_ORDER)
        assert parts == pytest.approx(pb.total)

    def test_total_is_raw_power(self):
        from repro.measure.devsim import simulated_device

        pb = breakdown_for("GTX285", 10)
        run = simulated_device("GTX285").run("fft", 1024,
                                             execute_kernel=False)
        assert pb.total == pytest.approx(run.raw_watts)

    def test_asic_mostly_core_dynamic(self):
        pb = breakdown_for("ASIC", 10)
        assert pb.core_dynamic / pb.total == pytest.approx(0.70)

    def test_fpga_heavy_leakage(self):
        fpga = breakdown_for("LX760", 10)
        gpu = breakdown_for("GTX480", 10)
        assert fpga.core_leakage / fpga.total > gpu.core_leakage / gpu.total

    def test_series_covers_measured_sizes(self):
        series = fft_power_series("ASIC")
        assert [pb.log2_n for pb in series] == list(range(5, 14))

    def test_unknown_component(self):
        pb = breakdown_for("ASIC", 10)
        with pytest.raises(ModelError):
            pb.component("magic_smoke")

    def test_figure3_envelope_cpu_vs_asic(self):
        # Figure 3's headline: the i7 burns ~an order of magnitude more
        # raw watts than the ASIC FFT core.
        cpu = breakdown_for("Core i7-960", 10)
        asic = breakdown_for("ASIC", 10)
        assert cpu.total > 5 * asic.total


class TestComputeBound:
    def test_under_margin(self):
        assert is_compute_bound(100.0, 159.0)

    def test_over_margin(self):
        assert not is_compute_bound(155.0, 159.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            is_compute_bound(1.0, 0.0)
        with pytest.raises(ModelError):
            is_compute_bound(1.0, 10.0, margin=0.0)


class TestCompulsoryBandwidth:
    def test_fft_1024(self):
        # 0.32 bytes/flop at 100 GFLOP/s -> 32 GB/s.
        assert compulsory_bandwidth_gbps(
            "fft", 1024, 100.0, "GFLOP/s"
        ) == pytest.approx(32.0)

    def test_bs(self):
        # 10 bytes/option at 10756 Mopts/s -> 107.56 GB/s.
        assert compulsory_bandwidth_gbps(
            "bs", 4096, 10756.0, "Mopts/s"
        ) == pytest.approx(107.56)

    def test_unknown_unit(self):
        with pytest.raises(ModelError):
            compulsory_bandwidth_gbps("fft", 1024, 1.0, "TFLOP/s")


class TestFigure4Bandwidth:
    def test_compulsory_until_onchip_limit(self):
        series = fft_bandwidth_series("GTX285")
        for sample in series:
            if sample.log2_n < GTX285_ONCHIP_LIMIT_LOG2:
                assert sample.measured_gbps == pytest.approx(
                    sample.compulsory_gbps
                )

    def test_above_compulsory_when_spilled(self):
        series = fft_bandwidth_series("GTX285")
        spilled = [
            s for s in series if s.log2_n >= GTX285_ONCHIP_LIMIT_LOG2
        ]
        assert spilled
        for sample in spilled:
            assert sample.measured_gbps > sample.compulsory_gbps

    def test_always_compute_bound(self):
        # The paper's validation: the GTX285 never saturates its pins.
        for sample in fft_bandwidth_series("GTX285"):
            assert sample.compute_bound is True

    def test_gtx480_counters_unavailable(self):
        # The paper could not measure GTX480 bandwidth counters.
        for sample in fft_bandwidth_series("GTX480"):
            assert sample.measured_gbps is None
            assert sample.compute_bound is None

    def test_peak_is_catalog_bandwidth(self):
        sample = fft_bandwidth_series("GTX285")[0]
        assert sample.peak_gbps == pytest.approx(159.0)
