"""Tests for the artefact/CSV export layer and new CLI subcommands."""

import pytest

from repro.cli import main
from repro.errors import ModelError
from repro.reporting.export import (
    export_all,
    export_artifacts,
    export_figure_csvs,
)


class TestExportArtifacts:
    def test_subset_export(self, tmp_path):
        written = export_artifacts(tmp_path, ids=["T1", "T6"])
        assert [p.name for p in written] == ["T1.txt", "T6.txt"]
        assert "Bounds on area" in (tmp_path / "artifacts" / "T1.txt").read_text()

    def test_dotted_id_sanitised(self, tmp_path):
        written = export_artifacts(tmp_path, ids=["S6.2"])
        assert written[0].name == "S6_2.txt"

    def test_unknown_id(self, tmp_path):
        with pytest.raises(ModelError):
            export_artifacts(tmp_path, ids=["F99"])


class TestExportCsv:
    @pytest.fixture(scope="class")
    def csv_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("export")
        export_figure_csvs(out)
        return out / "csv"

    def test_panel_files_written(self, csv_dir):
        names = {p.name for p in csv_dir.iterdir()}
        assert "fig6_fft_f0.99.csv" in names
        assert "fig7_mmm_f0.999.csv" in names
        assert "fig8_bs_f0.9.csv" in names
        assert "fig10_mmm_energy_f0.5.csv" in names

    def test_csv_structure(self, csv_dir):
        lines = (csv_dir / "fig6_fft_f0.99.csv").read_text().splitlines()
        assert lines[0].startswith("node,(0) SymCMP,(1) AsymCMP")
        assert len(lines) == 6  # header + five nodes
        assert lines[1].startswith("40nm,")

    def test_csv_values_match_projection(self, csv_dir):
        from repro.projection.engine import project

        lines = (csv_dir / "fig8_bs_f0.9.csv").read_text().splitlines()
        final = lines[-1].split(",")
        result = project("bs", 0.9)
        expected = result.series[-1].final_speedup()
        assert float(final[-1]) == pytest.approx(expected, rel=1e-4)


class TestExportAll:
    def test_groups(self, tmp_path):
        written = export_all(tmp_path)
        assert len(written["artifacts"]) == 18
        assert len(written["csv"]) == 17  # 4+4+2+4 panels + 3 energy
        assert written["manifest"][0].name == "calibration-manifest.json"


class TestNewCliCommands:
    def test_export_command(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["export", "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (out / "artifacts" / "F6.txt").exists()

    def test_pareto_command(self, capsys):
        assert main(
            ["pareto", "--workload", "bs", "--f", "0.9", "--node", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "ASIC" in out

    def test_sensitivity_command(self, capsys):
        assert main(
            [
                "sensitivity", "--workload", "bs", "--f", "0.9",
                "--trials", "20",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "win rate" in out

    def test_calibrate_command(self, capsys):
        assert main(
            [
                "calibrate", "--name", "NPU", "--workload", "mmm",
                "--throughput", "600", "--area", "20", "--watts", "18",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "NPU" in out
        assert "mu=" in out

    def test_calibrate_fft_uses_size(self, capsys):
        assert main(
            [
                "calibrate", "--name", "NPU", "--workload", "fft",
                "--fft-size", "1024", "--throughput", "100",
                "--area", "50", "--watts", "30",
            ]
        ) == 0
        assert "FFT-1024" in capsys.readouterr().out

    def test_calibrate_rejects_nonsense(self, capsys):
        assert main(
            [
                "calibrate", "--name", "NPU", "--workload", "mmm",
                "--throughput", "-1", "--area", "20", "--watts", "18",
            ]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestFloorplanTraceCommands:
    def test_floorplan_command(self, capsys):
        assert main(
            [
                "floorplan", "--workload", "mmm", "--f", "0.99",
                "--node", "22", "--design", "R5870",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "R5870 @ 22nm" in out
        assert "die 576mm2" in out

    def test_trace_command(self, capsys):
        assert main(
            [
                "trace", "--workload", "fft", "--f", "0.99",
                "--node", "11", "--design", "GTX285",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated: speedup" in out
        assert "parallel" in out

    def test_unknown_design_fails_cleanly(self, capsys):
        assert main(
            [
                "trace", "--workload", "bs", "--f", "0.9",
                "--design", "R5870",  # no BS data for the R5870
            ]
        ) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_trace_speedup_matches_projection(self, capsys):
        from repro.projection.engine import project

        assert main(
            [
                "trace", "--workload", "mmm", "--f", "0.9",
                "--node", "40", "--design", "ASIC",
            ]
        ) == 0
        out = capsys.readouterr().out
        expected = project("mmm", 0.9).by_label()["ASIC"].cells[0]
        assert f"{expected.speedup:.2f}x" in out
