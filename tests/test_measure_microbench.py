"""Tests for the Section 4.2 power-isolation microbenchmark suite."""

import pytest

from repro.errors import CalibrationError
from repro.measure.microbench import (
    STANDARD_SUITE,
    Microbenchmark,
    MicrobenchReading,
    isolate_compute_power,
    run_suite,
    solve_components,
)
from repro.measure.powermodel import COMPONENT_ORDER, breakdown_for


class TestMicrobenchmark:
    def test_vector_order(self):
        mb = Microbenchmark("x", {"core_dynamic": 0.5, "unknown": 1.0})
        vec = mb.vector()
        assert vec[COMPONENT_ORDER.index("core_dynamic")] == 0.5
        assert vec[COMPONENT_ORDER.index("unknown")] == 1.0
        assert sum(vec) == 1.5

    def test_unknown_component_rejected(self):
        with pytest.raises(CalibrationError):
            Microbenchmark("bad", {"warp_scheduler": 1.0})

    def test_activation_range(self):
        with pytest.raises(CalibrationError):
            Microbenchmark("bad", {"core_dynamic": 1.5})

    def test_standard_suite_is_full_rank(self):
        import numpy as np

        matrix = np.array([mb.vector() for mb in STANDARD_SUITE])
        assert np.linalg.matrix_rank(matrix) == len(COMPONENT_ORDER)


class TestRunSuite:
    def test_readings_per_benchmark(self):
        readings = run_suite("GTX285", 10)
        assert len(readings) == len(STANDARD_SUITE)

    def test_full_kernel_reading_is_total(self):
        readings = {
            r.benchmark.name: r.watts for r in run_suite("GTX480", 10)
        }
        assert readings["full-kernel"] == pytest.approx(
            breakdown_for("GTX480", 10).total
        )

    def test_idle_below_full(self):
        readings = {
            r.benchmark.name: r.watts for r in run_suite("GTX285", 12)
        }
        assert readings["idle"] < readings["memory-stream"]
        assert readings["memory-stream"] < readings["full-kernel"]

    def test_noise_is_reproducible(self):
        a = run_suite("GTX285", 10, noise_sigma=1.0, seed=5)
        b = run_suite("GTX285", 10, noise_sigma=1.0, seed=5)
        assert [r.watts for r in a] == [r.watts for r in b]


class TestSolveComponents:
    def test_recovers_ground_truth_exactly(self):
        truth = breakdown_for("GTX285", 10)
        solved = solve_components(run_suite("GTX285", 10))
        for component in COMPONENT_ORDER:
            assert solved[component] == pytest.approx(
                truth.component(component), rel=1e-9
            )

    def test_robust_to_probe_noise(self):
        truth = breakdown_for("GTX480", 10)
        solved = solve_components(
            run_suite("GTX480", 10, noise_sigma=0.5, seed=1)
        )
        for component in COMPONENT_ORDER:
            assert solved[component] == pytest.approx(
                truth.component(component), abs=2.5
            )

    def test_rank_deficient_suite_rejected(self):
        # Without the power-gated idle stimuli, statics are inseparable
        # -- the very reason Figure 3 carries an "Unknown" bucket.
        degenerate = [
            mb
            for mb in STANDARD_SUITE
            if mb.name not in ("idle-cores-gated", "idle-uncore-gated")
        ]
        readings = run_suite("GTX285", 10, suite=degenerate)
        with pytest.raises(CalibrationError, match="rank"):
            solve_components(readings)

    def test_empty_readings_rejected(self):
        with pytest.raises(CalibrationError):
            solve_components([])

    def test_reading_type(self):
        reading = run_suite("ASIC", 10)[0]
        assert isinstance(reading, MicrobenchReading)
        assert reading.watts >= 0


class TestIsolateComputePower:
    def test_matches_breakdown_core_terms(self):
        truth = breakdown_for("GTX285", 10)
        isolated = isolate_compute_power("GTX285", 10)
        assert isolated == pytest.approx(
            truth.core_dynamic + truth.core_leakage, rel=1e-9
        )

    def test_compute_power_below_wall_power(self):
        for device in ("GTX285", "GTX480"):
            isolated = isolate_compute_power(device, 10)
            total = breakdown_for(device, 10).total
            assert 0 < isolated < total
