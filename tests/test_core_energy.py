"""Unit tests for repro.core.energy (Figure 10's model)."""

import pytest

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.energy import (
    design_energy,
    energy_of_point,
    parallel_energy,
    serial_energy,
)
from repro.core.optimizer import evaluate_design
from repro.core.constraints import Budget
from repro.core.ucore import UCore
from repro.errors import ModelError


class TestSerialEnergy:
    def test_bce_baseline(self, sym_chip):
        # All-serial run on a 1-BCE core costs exactly BCE energy.
        assert serial_energy(0.0, 1.0, 1.75, sym_chip) == pytest.approx(
            1.0
        )

    def test_closed_form(self, sym_chip):
        # (1-f) * r^((alpha-1)/2) under Pollack's law.
        f, r, alpha = 0.25, 9.0, 1.75
        expected = 0.75 * r ** ((alpha - 1) / 2)
        assert serial_energy(f, r, alpha, sym_chip) == pytest.approx(
            expected
        )

    def test_fully_parallel_run_has_no_serial_energy(self, sym_chip):
        assert serial_energy(1.0, 16.0, 1.75, sym_chip) == 0.0

    def test_bigger_core_wastes_energy(self, sym_chip):
        # alpha > 1 makes big sequential cores energy-inefficient.
        e_small = serial_energy(0.0, 1.0, 1.75, sym_chip)
        e_big = serial_energy(0.0, 16.0, 1.75, sym_chip)
        assert e_big > e_small


class TestParallelEnergy:
    def test_heterogeneous_is_phi_over_mu(self, gpu_like):
        # The paper's structural fact: n cancels out.
        chip = HeterogeneousChip(gpu_like)
        f = 0.8
        expected = f * gpu_like.phi / gpu_like.mu
        for n in (8.0, 64.0, 512.0):
            assert parallel_energy(
                f, n, 2.0, 1.75, chip
            ) == pytest.approx(expected)

    def test_symmetric_closed_form(self, sym_chip):
        f, n, r, alpha = 0.8, 32.0, 4.0, 1.75
        expected = f * r ** ((alpha - 1) / 2)
        assert parallel_energy(f, n, r, alpha, sym_chip) == pytest.approx(
            expected
        )

    def test_offload_parallel_energy_is_f(self, asym_chip):
        assert parallel_energy(
            0.7, 32.0, 4.0, 1.75, asym_chip
        ) == pytest.approx(0.7)

    def test_serial_run_has_no_parallel_energy(self, het_chip):
        assert parallel_energy(0.0, 32.0, 4.0, 1.75, het_chip) == 0.0

    def test_no_fabric_raises(self, gpu_like):
        chip = HeterogeneousChip(gpu_like)
        with pytest.raises(ModelError):
            parallel_energy(0.5, 4.0, 4.0, 1.75, chip)


class TestDesignEnergy:
    def test_bce_reference_is_one(self, sym_chip):
        assert design_energy(sym_chip, 0.5, 1.0, 1.0) == pytest.approx(1.0)

    def test_symmetric_energy_independent_of_f(self, sym_chip):
        # rel_power * r^((alpha-1)/2) regardless of f (Amdahl fixed work).
        energies = [
            design_energy(sym_chip, f, 32.0, 4.0) for f in (0.1, 0.5, 0.9)
        ]
        assert max(energies) == pytest.approx(min(energies))

    def test_rel_power_scales_linearly(self, het_chip):
        e1 = design_energy(het_chip, 0.9, 32.0, 2.0, rel_power=1.0)
        e2 = design_energy(het_chip, 0.9, 32.0, 2.0, rel_power=0.25)
        assert e2 == pytest.approx(0.25 * e1)

    def test_efficient_ucore_cuts_energy(self):
        efficient = HeterogeneousChip(UCore(name="a", mu=27.4, phi=0.79))
        inefficient = AsymmetricOffloadCMP()
        f, n, r = 0.99, 19.0, 2.0
        assert design_energy(efficient, f, n, r) < design_energy(
            inefficient, f, n, r
        )

    def test_rejects_nonpositive_rel_power(self, sym_chip):
        with pytest.raises(ModelError):
            design_energy(sym_chip, 0.5, 4.0, 2.0, rel_power=0.0)

    def test_energy_of_point_matches_design_energy(self, het_chip):
        budget = Budget(area=19.0, power=10.0, bandwidth=42.0)
        point = evaluate_design(het_chip, 0.9, budget, 2)
        assert energy_of_point(het_chip, point) == pytest.approx(
            design_energy(het_chip, 0.9, point.n, point.r)
        )
