"""The continuous profiling plane: sampler, folded profiles, diffs.

Covers the determinism contract (a seeded fake clock plus fake frame
chains produce bit-identical folded output), sampler lifecycle
(start/stop idempotence, daemon thread, global refcounting), phase
tagging, parent-side-only campaign sampling over a process pool, and
the differential profiler through ``check_rows`` -- the acceptance
path where a seeded 30% slowdown exits the gate naming the culprit
frame.
"""

import threading

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.obs import prof
from repro.obs.history import HISTORY_SCHEMA_VERSION
from repro.obs.prof import (
    DEFAULT_HZ,
    FoldedProfile,
    StackSampler,
    acquire_sampler,
    collect_stack,
    frame_label,
    get_sampler,
    parse_folded_line,
    release_sampler,
    strip_line,
)
from repro.obs.profdiff import (
    attribute_regression,
    diff_profiles,
    render_culprit,
)
from repro.obs.regress import check_rows


# -- fake frames (duck-typed like interpreter frame objects) ---------------


class _FakeCode:
    def __init__(self, name):
        self.co_name = name


class _FakeFrame:
    def __init__(self, module, func, line, back=None):
        self.f_code = _FakeCode(func)
        self.f_globals = {"__name__": module}
        self.f_lineno = line
        self.f_back = back


def _chain(*frames):
    """The leaf frame of a call chain given root-first ``frames``."""
    back = None
    for module, func, line in frames:
        back = _FakeFrame(module, func, line, back=back)
    return back


class _FakeClock:
    def __init__(self, start=100.0, step=0.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _profile_from(stacks, hz=DEFAULT_HZ):
    profile = FoldedProfile(hz=hz)
    for stack, count in stacks:
        profile.add_stack(stack, count)
        profile.samples += count
    return profile


# -- folded format ---------------------------------------------------------


class TestFoldedFormat:
    def test_frame_label_and_strip(self):
        frame = _chain(("repro.core.optimizer", "optimize", 42))
        assert frame_label(frame) == "repro.core.optimizer:optimize:42"
        assert (
            strip_line("repro.core.optimizer:optimize:42")
            == "repro.core.optimizer:optimize"
        )
        # Marker frames carry no line and pass through unchanged.
        assert strip_line("phase:optimize") == "phase:optimize"
        assert strip_line("worker:w1") == "worker:w1"

    def test_collect_stack_is_root_first(self):
        leaf = _chain(("m", "root", 1), ("m", "mid", 2), ("m", "leaf", 3))
        assert collect_stack(leaf) == (
            "m:root:1",
            "m:mid:2",
            "m:leaf:3",
        )

    def test_collect_stack_truncates_rootward(self):
        frames = [("m", f"f{i}", i) for i in range(10)]
        leaf = _chain(*frames)
        stack = collect_stack(leaf, max_depth=3)
        # The leaf survives truncation: self-time lives there.
        assert stack[-1] == "m:f9:9"
        assert len(stack) == 3

    def test_parse_folded_line_round_trip(self):
        profile = _profile_from(
            [(("m:a:1", "m:b:2"), 3), (("m:a:1",), 1)]
        )
        for line in profile.folded_lines():
            stack, count = parse_folded_line(line)
            assert profile.counts[stack] == count

    def test_parse_folded_line_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_folded_line("no-count-here")
        with pytest.raises(ValueError):
            parse_folded_line("m:a:1 0")
        with pytest.raises(ValueError):
            parse_folded_line(" 3")

    def test_merge_with_worker_prefix(self):
        w1 = _profile_from([(("m:a:1",), 2)])
        w2 = _profile_from([(("m:a:1",), 3)])
        merged = FoldedProfile(hz=w1.hz)
        merged.merge(w1, prefix="worker:w1")
        merged.merge(w2, prefix="worker:w2")
        assert merged.counts[("worker:w1", "m:a:1")] == 2
        assert merged.counts[("worker:w2", "m:a:1")] == 3
        assert merged.samples == 5

    def test_payload_round_trip(self):
        profile = _profile_from(
            [(("m:a:1", "m:b:2"), 4), (("phase:x", "m:a:1"), 1)]
        )
        profile.worker = "w1"
        profile.trace_id = "t" * 32
        clone = FoldedProfile.from_payload(profile.payload())
        assert clone.counts == profile.counts
        assert clone.worker == "w1"
        assert clone.trace_id == "t" * 32
        assert clone.folded_lines() == profile.folded_lines()

    def test_self_seconds_attributes_leaf_only(self):
        profile = _profile_from(
            [(("m:a:1", "m:b:10"), 5), (("m:a:1", "m:b:11"), 5)],
            hz=10.0,
        )
        self_s = profile.self_seconds()
        # Both stacks lead to m:b (different lines, same key after
        # stripping); the parent m:a gets no self-time.
        assert self_s == {"m:b": pytest.approx(1.0)}
        assert profile.total_seconds() == pytest.approx(1.0)
        top = profile.top_self(5)
        assert top[0]["frame"] == "m:b"
        assert top[0]["self_pct"] == pytest.approx(100.0)


# -- the sampler -----------------------------------------------------------


class TestSampler:
    def test_folded_output_is_deterministic(self):
        def frames():
            return {
                7001: _chain(("m", "root", 1), ("m", "hot", 9)),
                7002: _chain(("m", "root", 1), ("m", "cold", 5)),
            }

        outputs = []
        for _ in range(2):
            sampler = StackSampler(
                hz=100.0,
                clock=_FakeClock(start=50.0, step=0.01),
                frames_provider=frames,
            )
            for _ in range(25):
                sampler.sample_once()
            outputs.append(sampler.profile().to_text())
        assert outputs[0] == outputs[1]
        profile = FoldedProfile.from_text(outputs[0], hz=100.0)
        assert profile.counts[("m:root:1", "m:hot:9")] == 25

    def test_sample_once_skips_own_thread(self):
        own = threading.get_ident()

        def frames():
            return {own: _chain(("m", "me", 1))}

        sampler = StackSampler(
            hz=10.0, clock=_FakeClock(), frames_provider=frames
        )
        assert sampler.sample_once() == 0
        assert sampler.profile().counts == {}

    def test_phase_tag_prefixes_sampled_stack(self):
        ident = 424242

        def frames():
            return {ident: _chain(("m", "work", 3))}

        sampler = StackSampler(
            hz=10.0, clock=_FakeClock(), frames_provider=frames
        )
        prof._PHASES[ident] = ["optimize"]
        try:
            sampler.sample_once()
        finally:
            prof._PHASES.pop(ident, None)
        assert sampler.profile().counts == {
            ("phase:optimize", "m:work:3"): 1
        }

    def test_window_since_isolates_the_interval(self):
        def frames():
            return {1: _chain(("m", "f", 1))}

        clock = _FakeClock(start=10.0, step=0.0)
        sampler = StackSampler(
            hz=10.0, clock=clock, frames_provider=frames
        )
        sampler.sample_once()
        sampler.sample_once()
        marker = sampler.mark()
        clock.now = 12.5
        sampler.sample_once()
        window = sampler.window_since(marker, worker="w3")
        assert window.counts == {("m:f:1",): 1}
        assert window.samples == 1
        assert window.worker == "w3"
        assert window.duration_s == pytest.approx(2.5)

    def test_start_stop_idempotent_and_daemon(self):
        sampler = StackSampler(hz=200.0)
        assert sampler.stop() is False  # never started
        assert sampler.start() is True
        try:
            assert sampler.running
            assert sampler._thread.daemon is True
            assert sampler.start() is False  # already running
        finally:
            assert sampler.stop() is True
        assert not sampler.running
        assert sampler.stop() is False  # already stopped

    def test_real_thread_samples_this_process(self):
        sampler = StackSampler(hz=500.0)
        sampler.start()
        try:
            event = threading.Event()
            event.wait(0.2)
        finally:
            sampler.stop()
        profile = sampler.profile()
        assert profile.samples > 10
        # The waiting main thread shows up under threading.wait.
        assert any(
            "threading" in frame for stack in profile.counts
            for frame in stack
        )

    def test_tagging_flag_follows_lifecycle(self):
        sampler = StackSampler(hz=200.0)
        assert not prof.tagging_active()
        sampler.start()
        try:
            assert prof.tagging_active()
        finally:
            sampler.stop()
        assert not prof.tagging_active()


class TestGlobalSampler:
    def test_refcounted_acquire_release(self):
        assert get_sampler() is None
        first = acquire_sampler(hz=200.0)
        try:
            assert first.running
            second = acquire_sampler()
            assert second is first
            assert release_sampler() is False  # one ref remains
            assert get_sampler() is first
        finally:
            assert release_sampler() is True  # last ref stops it
        assert get_sampler() is None
        assert not first.running
        assert release_sampler() is False  # over-release is harmless


# -- campaign integration --------------------------------------------------


def _tiny_spec():
    return CampaignSpec(name="prof-test", figures=("F6",))


class TestCampaignProfiling:
    def test_serial_run_produces_tagged_window(self):
        runner = CampaignRunner(executor="serial", workers=1)
        report = runner.run(_tiny_spec())
        assert report.ok
        profile = runner.last_profile
        assert isinstance(profile, FoldedProfile)
        assert profile.trace_id is not None
        assert len(profile.trace_id) == 32
        # The runner's reference was released after the run.
        assert get_sampler() is None

    def test_profile_off_leaves_no_sampler(self):
        runner = CampaignRunner(
            executor="serial", workers=1, profile=False
        )
        report = runner.run(_tiny_spec())
        assert report.ok
        assert runner.last_profile is None
        assert get_sampler() is None

    def test_process_pool_campaign_samples_parent_side_only(self):
        # Spawn-pinned children must not inherit or crash on the
        # parent's sampler thread; the run completes and the window
        # exists (its stacks are the parent's own pool-wait frames).
        runner = CampaignRunner(executor="process", workers=2)
        report = runner.run(_tiny_spec())
        assert report.ok
        assert runner.last_profile is not None
        assert get_sampler() is None


# -- differential profiling ------------------------------------------------


def _folded_profile(hot_count, cold_count=50, hz=100.0):
    return _profile_from(
        [
            (("m:main:1", "repro.core.optimizer:optimize:77"), hot_count),
            (("m:main:1", "m:io:9"), cold_count),
        ],
        hz=hz,
    )


class TestProfDiff:
    def test_names_the_regressed_frame(self):
        baselines = [_folded_profile(100) for _ in range(3)]
        candidate = _folded_profile(130)  # +30% on the hot frame
        culprits = diff_profiles(candidate, baselines)
        assert culprits
        top = culprits[0]
        assert top["frame"] == "repro.core.optimizer:optimize"
        assert top["status"] == "regressed"
        assert top["delta_pct"] == pytest.approx(30.0, abs=0.2)
        line = render_culprit(top)
        assert "repro.core.optimizer:optimize" in line
        assert "% self-time" in line

    def test_new_frames_are_tagged_new(self):
        baselines = [_folded_profile(100)]
        candidate = _folded_profile(100)
        candidate.add_stack(("m:main:1", "m:fresh:5"), 40)
        culprits = diff_profiles(candidate, baselines)
        fresh = [c for c in culprits if c["frame"] == "m:fresh"]
        assert fresh and fresh[0]["status"] == "new"
        assert "new frame" in render_culprit(fresh[0])

    def test_noise_floor_filters_tiny_deltas(self):
        baselines = [_folded_profile(1000, hz=10000.0)]
        candidate = _folded_profile(1001, hz=10000.0)  # +0.1ms
        assert diff_profiles(candidate, baselines) == []

    def test_no_baselines_means_no_attribution(self):
        assert diff_profiles(_folded_profile(10), []) == []
        assert attribute_regression({"profile": None}, []) == []


# -- the acceptance path: bench-check names the culprit --------------------


def _history_row(run_id, best_s, hot_count):
    return {
        "benchmark": "bench_demo",
        "envelope": {
            "run_id": run_id,
            "host_fingerprint": "host-a",
            "schema_version": HISTORY_SCHEMA_VERSION,
            "topology": None,
        },
        "metrics": {"best_s": best_s},
        "profile": _folded_profile(hot_count).payload(),
    }


class TestRegressionAttribution:
    def test_seeded_slowdown_gates_and_names_the_frame(self):
        rows = [_history_row(i, 1.0, 100) for i in range(1, 6)]
        # Candidate: 30% slower, and the profile says exactly where.
        rows.append(_history_row(6, 1.3, 130))
        report = check_rows(rows, seed=2010)
        assert not report.ok
        assert any(
            v.metric == "best_s" and v.status == "regressed"
            for v in report.verdicts
        )
        culprits = report.attributions["bench_demo"]
        assert culprits[0]["frame"] == "repro.core.optimizer:optimize"
        rendered = report.render()
        assert "culprit frames (bench_demo)" in rendered
        assert "repro.core.optimizer:optimize" in rendered
        payload = report.payload()
        assert payload["attributions"]["bench_demo"][0]["frame"] == (
            "repro.core.optimizer:optimize"
        )

    def test_passing_run_attributes_nothing(self):
        rows = [_history_row(i, 1.0, 100) for i in range(1, 7)]
        report = check_rows(rows, seed=2010)
        assert report.ok
        assert report.attributions == {}

    def test_profileless_history_still_gates(self):
        rows = [_history_row(i, 1.0, 100) for i in range(1, 6)]
        rows.append(_history_row(6, 1.3, 130))
        for row in rows:
            del row["profile"]
        report = check_rows(rows, seed=2010)
        assert not report.ok  # the verdicts stand without attribution
        assert report.attributions == {}
