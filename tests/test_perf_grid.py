"""ProjectionGrid: campaign construction and executor equivalence."""

import pytest

from repro.errors import ModelError
from repro.perf.grid import (
    CAMPAIGN_FIGURES,
    GridTask,
    ProjectionGrid,
    figure_campaign,
    run_campaign,
    run_task,
)
from repro.projection.engine import PAPER_F_VALUES


class TestFigureCampaign:
    def test_default_campaign_shape(self):
        tasks = figure_campaign()
        assert len(tasks) == 14  # 4 + 4 + 2 + 4 panels
        assert [t.figure for t in tasks[:4]] == ["F6"] * 4
        assert {t.figure for t in tasks} == set(CAMPAIGN_FIGURES)

    def test_single_figure(self):
        tasks = figure_campaign(["F9"])
        assert all(t.figure == "F9" for t in tasks)
        assert all(t.scenario == "high-bandwidth" for t in tasks)
        assert tuple(t.f for t in tasks) == PAPER_F_VALUES

    def test_unknown_figure(self):
        with pytest.raises(ModelError, match="F11"):
            figure_campaign(["F6", "F11"])

    def test_tasks_are_hashable_and_descriptive(self):
        task = figure_campaign(["F6"])[0]
        assert task in {task}
        assert "fft-1024" in task.describe()


class TestProjectionGrid:
    def test_invalid_executor(self):
        with pytest.raises(ModelError, match="executor"):
            ProjectionGrid(executor="gpu")

    def test_invalid_jobs(self):
        with pytest.raises(ModelError, match="jobs"):
            ProjectionGrid(jobs=0)

    def test_empty_task_list(self):
        assert ProjectionGrid(executor="serial").run([]) == {}

    def test_serial_results_keyed_in_order(self):
        tasks = figure_campaign(["F8"])
        results = ProjectionGrid(executor="serial").run(tasks)
        assert list(results) == list(tasks)
        for task, result in results.items():
            assert result.workload == task.workload
            assert result.f == task.f
            assert result.scenario.name == task.scenario

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_matches_serial(self, executor):
        """Every executor produces the same ProjectionResults."""
        tasks = figure_campaign(["F8"])
        serial = ProjectionGrid(executor="serial").run(tasks)
        pooled = ProjectionGrid(jobs=2, executor=executor).run(tasks)
        for task in tasks:
            a, b = serial[task], pooled[task]
            for sa, sb in zip(a.series, b.series):
                assert [c.point for c in sa.cells] == [
                    c.point for c in sb.cells
                ]

    def test_jobs_one_is_serial(self):
        grid = ProjectionGrid(jobs=1, executor="process")
        tasks = figure_campaign(["F8"])[:1]
        assert len(grid.run(tasks)) == 1

    def test_scalar_method_matches_batch(self):
        task = GridTask(
            figure="F7", workload="mmm", f=0.99, scenario="baseline"
        )
        a, b = run_task(task, "batch"), run_task(task, "scalar")
        for sa, sb in zip(a.series, b.series):
            assert [c.point for c in sa.cells] == [
                c.point for c in sb.cells
            ]


def test_run_campaign_one_call():
    results = run_campaign(["F8"], executor="serial")
    assert len(results) == 2
    for result in results.values():
        assert result.winner() is not None


def test_all_projection_figures_matches_constructors():
    from repro.projection.paperfigs import (
        all_projection_figures,
        figure8_bs_projection,
    )

    figures = all_projection_figures()
    assert set(figures) == {"F6", "F7", "F8", "F9"}
    direct = figure8_bs_projection()
    for f, result in figures["F8"].items():
        for sa, sb in zip(result.series, direct[f].series):
            assert [c.point for c in sa.cells] == [
                c.point for c in sb.cells
            ]
