"""Quick performance smoke test (``make bench-quick``).

Deselected from the tier-1 suite by the ``perfbench`` marker (timing
assertions do not belong in correctness CI); the full benchmark with
the 5x acceptance floor lives in ``benchmarks/bench_perf_grid.py``.
This smoke variant finishes in seconds and uses a deliberately loose
threshold so scheduler noise cannot fail it.
"""

import time

import pytest

from repro.perf.cache import clear_caches
from repro.perf.grid import figure_campaign, run_task

pytestmark = pytest.mark.perfbench


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        clear_caches()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_batch_campaign_beats_scalar():
    tasks = figure_campaign()
    run_task(tasks[0], "batch")  # warm imports outside the timer

    scalar = _best_of(lambda: [run_task(t, "scalar") for t in tasks])
    batch = _best_of(lambda: [run_task(t, "batch") for t in tasks])

    # The full benchmark demands 5x; here 2x keeps the smoke test
    # immune to noisy shared machines while still catching any
    # regression that de-vectorizes the batch path.
    assert batch * 2 < scalar, (
        f"batched campaign ({batch * 1000:.1f} ms) is not at least 2x "
        f"faster than scalar ({scalar * 1000:.1f} ms)"
    )
