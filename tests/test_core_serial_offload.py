"""Tests for the Section 6.3 serial-phase U-core roles."""

import math

import pytest

from repro.core.chip import HeterogeneousChip
from repro.core.constraints import Budget
from repro.core.optimizer import optimize
from repro.core.power import seq_power
from repro.core.serial_offload import (
    iso_performance_design,
    serial_offload_power,
    speedup_with_serial_offload,
)
from repro.core.ucore import UCore, speedup_heterogeneous
from repro.errors import InfeasibleDesignError, ModelError


@pytest.fixture
def asic():
    return UCore(name="asic", mu=27.4, phi=0.79, kind="asic")


@pytest.fixture
def budget():
    return Budget(area=19.0, power=10.0, bandwidth=85.0)


class TestIsoPerformance:
    def test_floor_of_one_returns_fastest(self, asic, budget):
        chip = HeterogeneousChip(asic)
        result = iso_performance_design(chip, 0.9, budget, 1.0)
        assert result.chosen.speedup == pytest.approx(
            result.fastest.speedup
        )

    def test_small_sacrifice_big_power_saving(self, asic, budget):
        chip = HeterogeneousChip(asic)
        result = iso_performance_design(chip, 0.9, budget, 0.95)
        # Keeping >= 95% of speedup...
        assert result.chosen.speedup >= 0.95 * result.fastest.speedup
        # ...with a genuinely smaller core and meaningful serial-power
        # savings (super-linear power law makes this lopsided).
        assert result.chosen.r < result.fastest.r
        assert result.power_saving > 0
        assert result.energy_ratio < 1.0

    def test_power_saving_matches_power_law(self, asic, budget):
        chip = HeterogeneousChip(asic)
        result = iso_performance_design(chip, 0.9, budget, 0.9)
        expected = seq_power(result.fastest.r, budget.alpha) - seq_power(
            result.chosen.r, budget.alpha
        )
        assert result.power_saving == pytest.approx(expected)

    def test_lower_floor_never_larger_core(self, asic, budget):
        chip = HeterogeneousChip(asic)
        r_tight = iso_performance_design(chip, 0.9, budget, 0.99).chosen.r
        r_loose = iso_performance_design(chip, 0.9, budget, 0.80).chosen.r
        assert r_loose <= r_tight

    def test_floor_validation(self, asic, budget):
        chip = HeterogeneousChip(asic)
        with pytest.raises(ModelError):
            iso_performance_design(chip, 0.9, budget, 0.0)
        with pytest.raises(ModelError):
            iso_performance_design(chip, 0.9, budget, 1.5)

    def test_infeasible_budget(self, asic):
        chip = HeterogeneousChip(asic)
        with pytest.raises(InfeasibleDesignError):
            iso_performance_design(
                chip, 0.9, Budget(area=1.0, power=1e9), 0.9
            )


class TestSerialOffloadSpeedup:
    def test_zero_offload_matches_baseline(self, asic):
        f, n, r = 0.9, 19.0, 4.0
        assert speedup_with_serial_offload(
            f, n, r, asic, f_serial_offload=0.0
        ) == pytest.approx(speedup_heterogeneous(f, n, r, asic))

    def test_conservation_core_slows_run_slightly(self, asic):
        # mu_serial = 1 < perf_seq(r): offloaded serial code is slower,
        # the point is power, not time.
        f, n, r = 0.5, 19.0, 4.0
        base = speedup_with_serial_offload(f, n, r, asic, 0.0)
        offloaded = speedup_with_serial_offload(f, n, r, asic, 0.5)
        assert offloaded < base

    def test_fast_serial_ucore_helps(self, asic):
        # mu_serial > perf_seq(r): offload accelerates serial code
        # (the paper's "increasing sequential processor performance at
        # a lower energy cost").
        f, n, r = 0.5, 19.0, 4.0
        base = speedup_with_serial_offload(f, n, r, asic, 0.0)
        accelerated = speedup_with_serial_offload(
            f, n, r, asic, 0.5, mu_serial=8.0
        )
        assert accelerated > base

    def test_fully_serial_program(self, asic):
        # f = 0: pure serial with half the code on a mu_serial=2 core.
        speedup = speedup_with_serial_offload(
            0.0, 4.0, 4.0, asic, 0.5, mu_serial=2.0
        )
        expected = 1.0 / (0.5 / 2.0 + 0.5 / 2.0)
        assert speedup == pytest.approx(expected)

    def test_validation(self, asic):
        with pytest.raises(ModelError):
            speedup_with_serial_offload(0.5, 19, 4, asic, 1.5)
        with pytest.raises(ModelError):
            speedup_with_serial_offload(0.5, 19, 4, asic, 0.5,
                                        mu_serial=0.0)
        with pytest.raises(ModelError):
            speedup_with_serial_offload(0.5, 4, 4, asic, 0.5)


class TestSerialOffloadPower:
    def test_no_offload_is_core_power(self, asic):
        assert serial_offload_power(4.0, asic, 0.0) == pytest.approx(
            seq_power(4.0, 1.75)
        )

    def test_full_offload_is_ucore_power(self, asic):
        assert serial_offload_power(4.0, asic, 1.0) == pytest.approx(
            asic.phi
        )

    def test_low_phi_ucore_cuts_average_power(self):
        fpga = UCore(name="fpga", mu=2.0, phi=0.3)
        base = serial_offload_power(8.0, fpga, 0.0)
        half = serial_offload_power(8.0, fpga, 0.5)
        assert half < base

    def test_monotone_in_offload_fraction_for_cheap_ucore(self):
        fpga = UCore(name="fpga", mu=2.0, phi=0.3)
        values = [
            serial_offload_power(8.0, fpga, x)
            for x in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_validation(self, asic):
        with pytest.raises(ModelError):
            serial_offload_power(4.0, asic, 2.0)
        with pytest.raises(ModelError):
            serial_offload_power(4.0, asic, 0.5, mu_serial=-1.0)
