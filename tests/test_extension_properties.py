"""Property-based tests (hypothesis) for the extension modules.

Covers the inverse solvers, Pareto frontier, parallelism profiles, and
the serial-offload model with randomly drawn machines -- invariants
rather than fixed examples.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chip import HeterogeneousChip
from repro.core.constraints import Budget
from repro.core.inverse import required_f
from repro.core.optimizer import optimize
from repro.core.profiles import ParallelismProfile, profile_speedup
from repro.core.serial_offload import (
    serial_offload_power,
    speedup_with_serial_offload,
)
from repro.core.ucore import UCore, speedup_heterogeneous
from repro.errors import ModelError
from repro.projection.pareto import ParetoPoint, pareto_frontier
from repro.projection.designs import standard_designs

mus = st.floats(min_value=0.5, max_value=500.0)
phis = st.floats(min_value=0.1, max_value=5.0)
fractions = st.floats(min_value=0.0, max_value=1.0)


def _chip(mu, phi):
    return HeterogeneousChip(UCore(name="u", mu=mu, phi=phi))


class TestInverseProperties:
    @settings(max_examples=30, deadline=None)
    @given(mu=mus, phi=phis, target=st.floats(1.5, 30.0))
    def test_required_f_is_tight(self, mu, phi, target):
        chip = _chip(mu, phi)
        budget = Budget(area=75.0, power=20.0, bandwidth=110.0)
        try:
            f = required_f(chip, target, budget)
        except ModelError:
            # Target unreachable for this machine; fine.
            return
        achieved = optimize(chip, f, budget).speedup
        assert achieved >= target * (1 - 1e-6)
        if f > 1e-6:
            below = optimize(chip, f * 0.98, budget).speedup
            assert below <= achieved + 1e-9


class TestParetoProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seeds=st.lists(
            st.tuples(
                st.floats(1.0, 100.0), st.floats(0.01, 3.0)
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_frontier_nondominated_and_stable(self, seeds):
        design = standard_designs("mmm")[0]
        points = [
            ParetoPoint(design=design, r=1, n=10,
                        speedup=s, energy=e)
            for s, e in seeds
        ]
        frontier = pareto_frontier(points)
        # Non-domination.
        for fp in frontier:
            assert not any(p.dominates(fp) for p in points)
        # Every non-frontier point is dominated or duplicates one.
        frontier_set = {(p.speedup, p.energy) for p in frontier}
        for p in points:
            if (p.speedup, p.energy) in frontier_set:
                continue
            assert any(fp.dominates(p) for fp in frontier)
        # Adding dominated points never changes the frontier.
        worst = ParetoPoint(
            design=design, r=1, n=10,
            speedup=min(s for s, _ in seeds) / 2,
            energy=max(e for _, e in seeds) * 2,
        )
        again = pareto_frontier(points + [worst])
        assert {(p.speedup, p.energy) for p in again} == frontier_set


class TestProfileProperties:
    @settings(max_examples=30, deadline=None)
    @given(f=st.floats(0.05, 0.95), mu=mus, width=st.floats(1.0, 1e5))
    def test_bounded_width_never_beats_unbounded(self, f, mu, width):
        chip = _chip(mu, 1.0)
        n, r = 34.0, 2.0
        bounded = ParallelismProfile.from_pairs(
            [(1 - f, 1.0), (f, max(width, 1.0))]
        )
        unbounded = ParallelismProfile.two_phase(f)
        assert profile_speedup(
            chip, bounded, n, r
        ) <= profile_speedup(chip, unbounded, n, r) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(f=st.floats(0.05, 0.95), mu=mus)
    def test_unbounded_profile_equals_closed_form(self, f, mu):
        chip = _chip(mu, 1.0)
        n, r = 34.0, 2.0
        assert profile_speedup(
            chip, ParallelismProfile.two_phase(f), n, r
        ) == pytest.approx(
            speedup_heterogeneous(f, n, r, chip.ucore), rel=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(
        f=st.floats(0.05, 0.95),
        mu=mus,
        w1=st.floats(1.0, 1e4),
        w2=st.floats(1.0, 1e4),
    )
    def test_monotone_in_width(self, f, mu, w1, w2):
        chip = _chip(mu, 1.0)
        n, r = 34.0, 2.0
        lo, hi = sorted((w1, w2))
        s_lo = profile_speedup(
            chip,
            ParallelismProfile.from_pairs([(1 - f, 1.0), (f, lo)]),
            n, r,
        )
        s_hi = profile_speedup(
            chip,
            ParallelismProfile.from_pairs([(1 - f, 1.0), (f, hi)]),
            n, r,
        )
        assert s_hi + 1e-9 >= s_lo


class TestSerialOffloadProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        r=st.floats(1.0, 16.0),
        phi=st.floats(0.05, 0.95),
        x1=fractions,
        x2=fractions,
    )
    def test_power_monotone_for_cheap_ucore(self, r, phi, x1, x2):
        # Offloading more serial work to a sub-BCE-power U-core never
        # raises average serial power.
        ucore = UCore(name="u", mu=2.0, phi=phi)
        lo, hi = sorted((x1, x2))
        p_lo = serial_offload_power(r, ucore, lo)
        p_hi = serial_offload_power(r, ucore, hi)
        assert p_hi <= p_lo + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(r=st.floats(1.0, 16.0), mu=mus, offload=fractions)
    def test_offload_speedup_bounded_by_components(self, r, mu, offload):
        # With mu_serial = 1, the serial phase never runs faster than
        # the fast core alone nor slower than the U-core alone.
        ucore = UCore(name="u", mu=mu, phi=1.0)
        speedup = speedup_with_serial_offload(
            0.0, r + 8, r, ucore, offload
        )
        fast_only = math.sqrt(r)
        assert min(1.0, fast_only) - 1e-9 <= speedup
        assert speedup <= max(1.0, fast_only) + 1e-9
