"""The event bus (repro.obs.stream): cursors, replay, retention.

Pure in-process tests of the telemetry plane's spine -- no sockets.
The property under test throughout is the streaming contract the
service layer builds on: monotonic per-stream cursors, byte-identical
replay from any cursor, bounded retention that never blocks a
publisher, and ambient emission that is a no-op outside a campaign.
"""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import (
    EventBus,
    EventPublisher,
    bind_publisher,
    bound_publisher,
    emit,
    format_event_line,
    unbind_publisher,
)


def _bus(**kwargs):
    return EventBus(clock=lambda: 1234.5, **kwargs)


class TestCursorModel:
    def test_sequences_are_monotonic_from_zero(self):
        bus = _bus()
        seqs = [bus.publish("s", "k", data={"i": i}).seq for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert bus.cursor("s") == 5

    def test_read_from_cursor_is_a_suffix(self):
        bus = _bus()
        for i in range(6):
            bus.publish("s", "k", data={"i": i})
        full = bus.read("s", 0)
        suffix = bus.read("s", 4)
        assert [e.line for e in suffix.events] == [
            e.line for e in full.events
        ][4:]
        assert suffix.next_cursor == full.next_cursor == 6

    def test_next_cursor_resumes_with_no_gap_or_duplicate(self):
        bus = _bus()
        bus.publish("s", "a")
        first = bus.read("s", 0)
        bus.publish("s", "b")
        second = bus.read("s", first.next_cursor)
        assert [e.kind for e in second.events] == ["b"]

    def test_limit_caps_a_batch_and_keeps_the_cursor_honest(self):
        bus = _bus()
        for i in range(5):
            bus.publish("s", "k", data={"i": i})
        page = bus.read("s", 0, limit=2)
        assert len(page.events) == 2
        rest = bus.read("s", page.next_cursor)
        assert [e.payload["data"]["i"] for e in rest.events] == [2, 3, 4]

    def test_unknown_stream_reads_empty_and_unclosed(self):
        slice_ = _bus().read("nope", 0)
        assert slice_.events == () and not slice_.closed

    def test_negative_cursor_is_rejected(self):
        with pytest.raises(ValueError):
            _bus().read("s", -1)


class TestCanonicalLines:
    def test_line_is_compact_sorted_json(self):
        line = format_event_line(
            "s", 3, "k", 1.23456789, {"b": 1, "a": 2}, "t" * 32, "p" * 16
        )
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        doc = json.loads(line)
        assert doc["unix"] == 1.234568  # rounded to 6 places
        assert list(doc["data"]) == ["a", "b"]

    def test_replay_is_byte_identical(self):
        bus = _bus()
        lines = [
            bus.publish("s", "k", data={"i": i}).line for i in range(4)
        ]
        assert [e.line for e in bus.read("s", 0).events] == lines
        assert [e.line for e in bus.read("s", 2).events] == lines[2:]

    def test_trace_ids_ride_on_the_line(self):
        bus = _bus()
        event = bus.publish("s", "k", trace_id="ab" * 16, span_id="cd" * 8)
        assert event.payload["trace_id"] == "ab" * 16
        assert event.payload["span_id"] == "cd" * 8


class TestRetention:
    def test_overflow_trims_oldest_and_counts(self):
        registry = MetricsRegistry()
        bus = _bus(history_limit=3, registry=registry)
        for i in range(10):
            bus.publish("s", "k", data={"i": i})
        slice_ = bus.read("s", 0)
        # Publisher never blocked; the oldest 7 fell out of retention.
        assert [e.seq for e in slice_.events] == [7, 8, 9]
        assert slice_.dropped == 7
        assert bus.stats()["trimmed"] == 7
        assert registry.counter(
            "repro_stream_events_trimmed_total", ""
        ).value() == 7

    def test_durable_reader_reconstructs_the_trimmed_prefix(self):
        persisted = []
        bus = _bus(history_limit=2)
        bus.attach_store(
            "s",
            sink=persisted.append,
            reader=lambda cursor: [
                line
                for line in persisted
                if json.loads(line)["seq"] >= cursor
            ],
        )
        lines = [
            bus.publish("s", "k", data={"i": i}).line for i in range(6)
        ]
        replay = bus.read("s", 0)
        assert replay.dropped == 0
        assert [e.line for e in replay.events] == lines

    def test_partial_durable_coverage_reports_the_gap(self):
        persisted = []
        bus = _bus(history_limit=2)
        bus.attach_store(
            "s",
            sink=persisted.append,
            reader=lambda cursor: persisted[3:],  # first 3 lines lost
        )
        for i in range(6):
            bus.publish("s", "k", data={"i": i})
        replay = bus.read("s", 0)
        assert replay.dropped == 3
        assert [e.seq for e in replay.events] == [3, 4, 5]

    def test_failing_sink_never_breaks_the_publisher(self):
        def sink(line):
            raise OSError("disk gone")

        bus = _bus()
        bus.attach_store("s", sink=sink)
        assert bus.publish("s", "k").seq == 0

    def test_sink_preserves_publish_order_across_threads(self):
        persisted = []
        bus = EventBus()
        bus.attach_store("s", sink=persisted.append)

        def hammer():
            for _ in range(200):
                bus.publish("s", "k")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [json.loads(line)["seq"] for line in persisted]
        assert seqs == sorted(seqs) == list(range(800))


class TestLifecycle:
    def test_closed_stream_rejects_publishes_but_still_reads(self):
        bus = _bus()
        bus.publish("s", "k")
        bus.close("s")
        assert bus.closed("s")
        assert bus.read("s", 0).closed
        with pytest.raises(ValueError):
            bus.publish("s", "k")

    def test_ensure_stream_makes_an_empty_stream_known(self):
        bus = _bus()
        assert not bus.known("slo")
        bus.ensure_stream("slo")
        assert bus.known("slo")
        assert bus.read("slo", 0).events == ()

    def test_stats_count_streams_and_publishes(self):
        bus = _bus()
        bus.publish("a", "k")
        bus.publish("b", "k")
        bus.close("b")
        stats = bus.stats()
        assert stats == {
            "streams": 2, "published": 2, "trimmed": 0, "open": 1,
        }


class TestAmbientEmission:
    def test_unbound_emit_is_a_noop(self):
        assert bound_publisher() is None
        assert emit("k", {"x": 1}) is None

    def test_bound_emit_publishes_with_the_campaign_trace(self):
        bus = _bus()
        publisher = EventPublisher(bus, "job-1", trace_id="ef" * 16)
        token = bind_publisher(publisher)
        try:
            event = emit("dse.rung", {"rung_r": 2})
        finally:
            unbind_publisher(token)
        assert event.stream == "job-1"
        assert event.payload["trace_id"] == "ef" * 16
        assert event.payload["data"] == {"rung_r": 2}
        assert bound_publisher() is None

    def test_worker_threads_need_an_explicit_rebind(self):
        bus = _bus()
        publisher = EventPublisher(bus, "job-1")
        token = bind_publisher(publisher)
        seen = []

        def worker():
            # A fresh thread does not inherit the contextvar ...
            seen.append(emit("k"))
            # ... until it binds explicitly (what _bound_timed_run does).
            inner = bind_publisher(publisher)
            try:
                seen.append(emit("k"))
            finally:
                unbind_publisher(inner)

        try:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            unbind_publisher(token)
        assert seen[0] is None and seen[1] is not None
