"""Tests for the per-size FFT calibration curves."""

import pytest

from repro.errors import CalibrationError
from repro.measure.calibration import (
    DEVICE_FFT_LOG2_RANGES,
    FFT_SIZE_RANGE,
    fft_device_curve,
    fft_device_log2_sizes,
    fft_mu_phi,
    i7_fft_throughput,
)


class TestI7Curve:
    def test_anchor_values(self):
        assert i7_fft_throughput(6) == pytest.approx(15.0)
        assert i7_fft_throughput(10) == pytest.approx(19.0)
        assert i7_fft_throughput(14) == pytest.approx(24.0)

    def test_covers_figure2_sweep(self):
        for size in FFT_SIZE_RANGE:
            assert i7_fft_throughput(size.bit_length() - 1) > 0

    def test_out_of_range_rejected(self):
        with pytest.raises(CalibrationError):
            i7_fft_throughput(3)
        with pytest.raises(CalibrationError):
            i7_fft_throughput(21)

    def test_cache_rolloff_after_peak(self):
        assert i7_fft_throughput(20) < i7_fft_throughput(14)


class TestMuPhiInterpolation:
    def test_exact_at_anchors(self):
        mu, phi = fft_mu_phi("GTX285", 10)
        assert mu == pytest.approx(2.88)
        assert phi == pytest.approx(0.63)

    def test_interpolates_between_anchors(self):
        mu_6, _ = fft_mu_phi("GTX285", 6)
        mu_8, _ = fft_mu_phi("GTX285", 8)
        mu_10, _ = fft_mu_phi("GTX285", 10)
        assert mu_6 < mu_8 < mu_10
        assert mu_8 == pytest.approx((mu_6 + mu_10) / 2)

    def test_clamps_outside_anchor_range(self):
        assert fft_mu_phi("ASIC", 4) == fft_mu_phi("ASIC", 6)
        assert fft_mu_phi("ASIC", 20) == fft_mu_phi("ASIC", 14)

    def test_unknown_device(self):
        with pytest.raises(CalibrationError):
            fft_mu_phi("Core i9", 10)

    def test_device_without_fft_anchors(self):
        with pytest.raises(CalibrationError):
            fft_mu_phi("R5870", 10)


class TestDeviceCurves:
    def test_ranges_match_figure3(self):
        assert DEVICE_FFT_LOG2_RANGES["Core i7-960"] == (5, 19)
        assert DEVICE_FFT_LOG2_RANGES["ASIC"] == (5, 13)
        assert fft_device_log2_sizes("LX760") == list(range(4, 15))

    def test_i7_curve_passthrough(self):
        curve = fft_device_curve("Core i7-960", 10)
        assert curve["throughput"] == pytest.approx(19.0)
        assert curve["area_mm2"] == pytest.approx(193.0)
        assert curve["watts"] == pytest.approx(85.0)

    def test_asic_dominates_everyone_per_area(self):
        for log2_n in range(6, 14):
            asic = fft_device_curve("ASIC", log2_n)
            for other in ("Core i7-960", "GTX285", "GTX480", "LX760"):
                o = fft_device_curve(other, log2_n)
                assert (
                    asic["throughput"] / asic["area_mm2"]
                    > o["throughput"] / o["area_mm2"]
                )

    def test_ucore_curve_consistent_with_mu(self):
        # x_u / (x_i7 * sqrt(2)) must recover the interpolated mu.
        curve = fft_device_curve("GTX480", 12)
        i7 = fft_device_curve("Core i7-960", 12)
        x_u = curve["throughput"] / curve["area_mm2"]
        x_i7 = i7["throughput"] / i7["area_mm2"]
        mu, _ = fft_mu_phi("GTX480", 12)
        assert x_u / (x_i7 * 2**0.5) == pytest.approx(mu)

    def test_asic_area_grows_with_size(self):
        small = fft_device_curve("ASIC", 6)["area_mm2"]
        large = fft_device_curve("ASIC", 13)["area_mm2"]
        assert small < large

    def test_unknown_size_rejected(self):
        with pytest.raises(CalibrationError):
            fft_device_curve("GTX285", 25)
