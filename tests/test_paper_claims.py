"""Integration tests: the paper's qualitative claims, asserted.

Each test pins one sentence of Sections 6.1-6.3 / the conclusions to a
property of the projection output.  These are the "shape" acceptance
criteria of the reproduction: who wins, by roughly what factor, where
designs hit which wall -- not absolute numbers.
"""

import pytest

from repro.core.constraints import LimitingFactor
from repro.itrs.scenarios import get_scenario
from repro.projection.energyproj import project_energy
from repro.projection.engine import project


def final_speedups(result):
    """Design label -> speedup at the last (11nm) node."""
    return {
        s.design.short_label: s.cells[-1].speedup for s in result.series
    }


def first_speedups(result):
    """Design label -> speedup at the first (40nm) node."""
    return {
        s.design.short_label: s.cells[0].speedup for s in result.series
    }


def final_limiters(result):
    return {
        s.design.short_label: s.cells[-1].limiter for s in result.series
    }


def cmp_max(speedups):
    return max(speedups["SymCMP"], speedups["AsymCMP"])


def het_labels(result):
    return [
        s.design.short_label
        for s in result.series
        if s.design.index >= 2
    ]


class TestConclusion1SufficientParallelism:
    """(1) sufficient parallelism must exist before U-cores offer
    significant performance gains (f >= 0.90)."""

    @pytest.mark.parametrize("workload,size", [
        ("fft", 1024), ("mmm", None), ("bs", None),
    ])
    def test_no_significant_gain_at_f_half(self, workload, size):
        result = project(workload, 0.5, fft_size=size)
        speeds = final_speedups(result)
        best_het = max(speeds[label] for label in het_labels(result))
        assert best_het / cmp_max(speeds) < 2.0

    @pytest.mark.parametrize("workload,size", [
        ("fft", 1024), ("mmm", None), ("bs", None),
    ])
    def test_pronounced_gain_at_f_090(self, workload, size):
        # The gap is widest before the bandwidth ceiling flattens
        # everything (late nodes); assert it at 40nm, where Figures
        # 6-8 show HETs at ~2-4x the CMPs.
        result = project(workload, 0.9, fft_size=size)
        speeds = first_speedups(result)
        best_het = max(speeds[label] for label in het_labels(result))
        assert best_het / cmp_max(speeds) > 1.5

    def test_gap_widens_with_f(self):
        gaps = []
        for f in (0.5, 0.9, 0.99):
            speeds = final_speedups(project("mmm", f))
            gaps.append(speeds["ASIC"] / cmp_max(speeds))
        assert gaps[0] < gaps[1] < gaps[2]


class TestConclusion2BandwidthFirstOrder:
    """(2) off-chip bandwidth has a first-order effect: flexible
    U-cores keep up with custom logic when bandwidth limits."""

    def test_fft_asic_bandwidth_limited_everywhere(self):
        result = project("fft", 0.99)
        asic = result.by_label()["ASIC"]
        assert all(
            lim is LimitingFactor.BANDWIDTH for lim in asic.limiters()
        )

    def test_fft_flexible_cores_reach_asic_performance(self):
        # "the FPGA design reaches ASIC-like bandwidth-limited
        # performance as early as 32nm -- and similarly for the GPU
        # designs, around 22nm and 16nm."
        result = project("fft", 0.99)
        speeds = final_speedups(result)
        for flexible in ("LX760", "GTX285", "GTX480"):
            assert speeds[flexible] == pytest.approx(
                speeds["ASIC"], rel=1e-6
            ), flexible

    def test_fft_flexible_converge_by_22nm(self):
        result = project("fft", 0.99)
        by_label = result.by_label()
        asic_at = {
            cell.node.node_nm: cell.speedup
            for cell in by_label["ASIC"].cells
        }
        for flexible in ("LX760", "GTX285", "GTX480"):
            cell_22 = next(
                c for c in by_label[flexible].cells
                if c.node.node_nm == 22
            )
            assert cell_22.speedup == pytest.approx(
                asic_at[22], rel=1e-6
            ), flexible

    def test_bs_hets_converge_to_bandwidth_limit(self):
        result = project("bs", 0.9)
        limiters = final_limiters(result)
        for label in ("LX760", "GTX285", "ASIC"):
            assert limiters[label] is LimitingFactor.BANDWIDTH

    def test_mmm_asic_never_bandwidth_limited(self):
        # High arithmetic intensity (+ the paper's explicit exemption).
        for f in (0.5, 0.9, 0.99, 0.999):
            asic = project("mmm", f).by_label()["ASIC"]
            assert all(
                lim is not LimitingFactor.BANDWIDTH
                for lim in asic.limiters()
            )


class TestConclusion3FlexibleCompetitive:
    """(3) flexible U-cores are competitive with custom logic at
    moderate-to-high parallelism even when bandwidth is no concern."""

    def test_mmm_within_factor_two_to_five_below_f999(self):
        for f in (0.9, 0.99):
            speeds = final_speedups(project("mmm", f))
            best_flexible = max(
                speeds["LX760"], speeds["GTX285"], speeds["GTX480"],
                speeds["R5870"],
            )
            ratio = speeds["ASIC"] / best_flexible
            assert ratio < 5.0, f

    def test_mmm_asic_pulls_away_at_f999(self):
        speeds = final_speedups(project("mmm", 0.999))
        best_flexible = max(
            speeds["LX760"], speeds["GTX285"], speeds["GTX480"],
            speeds["R5870"],
        )
        assert speeds["ASIC"] / best_flexible > 5.0


class TestConclusion4EnergyGoal:
    """(4) U-cores, especially custom logic, are more broadly useful
    when energy is the goal."""

    def test_asic_energy_win_exceeds_speedup_win_at_f09(self):
        f = 0.9
        speeds = final_speedups(project("mmm", f))
        energies = {
            s.design.short_label: s.energies()[-1]
            for s in project_energy("mmm", f).series
        }
        speed_ratio = speeds["ASIC"] / speeds["GTX480"]
        energy_ratio = energies["GTX480"] / energies["ASIC"]
        assert energy_ratio > speed_ratio

    def test_asic_saves_energy_even_at_moderate_f(self):
        # "at even moderate levels of parallelism (f=0.9-0.99), the
        # ASIC still achieves a significant reduction in energy
        # relative to the other U-cores."
        for f in (0.9, 0.99):
            by_label = project_energy("mmm", f).by_label()
            asic = by_label["ASIC"].energies()[0]
            for other in ("LX760", "GTX285", "GTX480", "R5870"):
                assert asic < 0.8 * by_label[other].energies()[0]

    def test_energy_saving_limited_at_low_f(self):
        by_label = project_energy("mmm", 0.5).by_label()
        asic = by_label["ASIC"].energies()[0]
        sym = by_label["SymCMP"].energies()[0]
        assert asic > 0.3 * sym  # no order-of-magnitude win


class TestSection61Details:
    def test_mmm_area_to_power_transition(self):
        # "most designs are initially area-limited in 40nm ... but
        # transition to becoming power-limited 22nm and after."
        result = project("mmm", 0.99)
        at_40 = [s.cells[0].limiter for s in result.series
                 if s.design.index >= 2]
        at_11 = [s.cells[-1].limiter for s in result.series
                 if s.design.index >= 2]
        assert any(lim is LimitingFactor.AREA for lim in at_40)
        assert all(
            lim in (LimitingFactor.POWER, LimitingFactor.BANDWIDTH)
            for lim in at_11
        )

    def test_fft_f999_bandwidth_caps_everything(self):
        result = project("fft", 0.999)
        limiters = final_limiters(result)
        for label in ("LX760", "GTX285", "GTX480", "ASIC"):
            assert limiters[label] is LimitingFactor.BANDWIDTH

    def test_bs_cmps_within_2x_at_low_f(self):
        # "without sufficient parallelism (f <= 0.5), even the
        # conventional CMPs achieve speedups within a factor of two of
        # the ASIC."
        speeds = final_speedups(project("bs", 0.5))
        assert speeds["ASIC"] / cmp_max(speeds) < 2.0


class TestSection62Scenarios:
    def test_scenario1_fft_cmps_close_gap(self):
        # At 90 GB/s the bandwidth ceiling is so low that CMPs come
        # within ~2x of the ASIC by 22nm at any f.
        scenario = get_scenario("low-bandwidth")
        result = project("fft", 0.99, scenario)
        at_22 = {
            s.design.short_label: next(
                c.speedup for c in s.cells if c.node.node_nm == 22
            )
            for s in result.series
        }
        assert at_22["ASIC"] / max(
            at_22["SymCMP"], at_22["AsymCMP"]
        ) < 2.6

    def test_scenario1_bs_gap_persists(self):
        # "In BS, the large gap between HETs and CMPs still exists
        # because the CMPs are unable to achieve close to bandwidth-
        # limited performance" -- true while power still pins the CMPs
        # (early/mid nodes); by 11nm even CMP power reaches the low
        # ceiling.
        scenario = get_scenario("low-bandwidth")
        result = project("bs", 0.9, scenario)
        speeds = first_speedups(result)
        assert speeds["ASIC"] / cmp_max(speeds) > 1.5
        mid = {
            s.design.short_label: s.cells[2].speedup
            for s in result.series
        }
        assert mid["ASIC"] / max(mid["SymCMP"], mid["AsymCMP"]) > 1.3

    def test_scenario2_designs_go_power_limited(self):
        scenario = get_scenario("high-bandwidth")
        result = project("fft", 0.99, scenario)
        limiters = final_limiters(result)
        for label in ("LX760", "GTX285", "GTX480"):
            assert limiters[label] is LimitingFactor.POWER

    def test_scenario2_asic_still_bandwidth_limited(self):
        scenario = get_scenario("high-bandwidth")
        result = project("fft", 0.99, scenario)
        asic = result.by_label()["ASIC"]
        assert asic.cells[0].limiter is LimitingFactor.BANDWIDTH

    def test_scenario2_asic_2x_only_at_extreme_f(self):
        scenario = get_scenario("high-bandwidth")
        ratio_999 = None
        speeds = final_speedups(project("fft", 0.999, scenario))
        others = [speeds["LX760"], speeds["GTX285"], speeds["GTX480"]]
        ratio_999 = speeds["ASIC"] / max(others)
        speeds9 = final_speedups(project("fft", 0.9, scenario))
        others9 = [speeds9["LX760"], speeds9["GTX285"],
                   speeds9["GTX480"]]
        ratio_9 = speeds9["ASIC"] / max(others9)
        assert ratio_999 > 1.15
        assert ratio_999 > ratio_9

    def test_scenario3_later_nodes_unaffected(self):
        # "in the later nodes (<=22nm), most designs achieve similar
        # performance to the original area budget" (power-limited
        # anyway).
        base = project("mmm", 0.99)
        half = project("mmm", 0.99, get_scenario("half-area"))
        for label in ("GTX285", "GTX480", "ASIC"):
            base_final = base.by_label()[label].cells[-1].speedup
            half_final = half.by_label()[label].cells[-1].speedup
            assert half_final == pytest.approx(base_final, rel=0.05), label

    def test_scenario3_early_nodes_hurt(self):
        base = project("mmm", 0.99)
        half = project("mmm", 0.99, get_scenario("half-area"))
        for label in ("GTX285", "ASIC"):
            assert (
                half.by_label()[label].cells[0].speedup
                < base.by_label()[label].cells[0].speedup
            ), label

    def test_scenario4_cmps_close_gap_under_200w(self):
        base_speeds = final_speedups(project("fft", 0.9))
        rich_speeds = final_speedups(
            project("fft", 0.9, get_scenario("double-power"))
        )
        base_gap = max(
            base_speeds[lbl]
            for lbl in ("LX760", "GTX285", "GTX480", "ASIC")
        ) / cmp_max(base_speeds)
        rich_gap = max(
            rich_speeds[lbl]
            for lbl in ("LX760", "GTX285", "GTX480", "ASIC")
        ) / cmp_max(rich_speeds)
        assert rich_gap < base_gap

    def test_scenario5_asic_advantage_at_10w(self):
        # Only ASIC HETs approach bandwidth-limited performance under
        # a 10W budget.
        scenario = get_scenario("low-power")
        result = project("fft", 0.99, scenario)
        limiters = final_limiters(result)
        assert limiters["ASIC"] is LimitingFactor.BANDWIDTH
        for label in ("LX760", "GTX285", "GTX480"):
            assert limiters[label] is LimitingFactor.POWER
        speeds = final_speedups(result)
        assert speeds["ASIC"] > 1.5 * speeds["GTX285"]

    def test_scenario6_low_f_speedups_collapse(self):
        # alpha = 2.25 shrinks the affordable sequential core
        # (r <= P^(2/alpha)), hurting low-parallelism speedups.  The
        # squeeze is felt where the power budget is tight -- the early
        # nodes; by 11nm P has quadrupled and the serial bound clears
        # the r <= 16 sweep ceiling again.
        base = first_speedups(project("fft", 0.5))
        high = first_speedups(
            project("fft", 0.5, get_scenario("high-alpha"))
        )
        assert high["ASIC"] < 0.9 * base["ASIC"]
        assert high["SymCMP"] < 0.95 * base["SymCMP"]

    def test_scenario6_high_f_less_affected(self):
        base = final_speedups(project("fft", 0.999))
        high = final_speedups(
            project("fft", 0.999, get_scenario("high-alpha"))
        )
        assert high["ASIC"] > 0.9 * base["ASIC"]


class TestSection63SequentialPowerDiscussion:
    """§6.3: 'custom logic and other low-power U-cores could
    potentially be used to reduce sequential power or to efficiently
    improve sequential processing performance' -- made quantitative."""

    def test_iso_performance_power_reduction(self):
        # Giving up <=5% of the f=0.9 FFT speedup at 40nm budgets buys
        # a much smaller (cooler) sequential core.
        from repro.core.chip import HeterogeneousChip
        from repro.core.serial_offload import iso_performance_design
        from repro.devices.params import ucore_for
        from repro.itrs.roadmap import ITRS_2009
        from repro.projection.engine import node_budget

        chip = HeterogeneousChip(ucore_for("ASIC", "fft", 1024))
        budget = node_budget(ITRS_2009.node(40), "fft", 1024)
        result = iso_performance_design(chip, 0.9, budget, 0.95)
        assert result.chosen.r < result.fastest.r
        assert result.power_saving > 1.0  # more than a whole BCE
        assert result.energy_ratio < 1.0

    def test_conservation_core_serial_power(self):
        # Offloading half the serial phase to a low-phi FPGA slice cuts
        # the serial phase's average power substantially.
        from repro.core.serial_offload import serial_offload_power
        from repro.devices.params import ucore_for

        fpga = ucore_for("LX760", "fft", 1024)  # phi ~ 0.29
        full_core = serial_offload_power(13.0, fpga, 0.0)
        half_offloaded = serial_offload_power(13.0, fpga, 0.5)
        assert half_offloaded < 0.5 * full_core
