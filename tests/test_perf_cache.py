"""Memoization layer: hits on repeats, never a stale value.

The cache keys are frozen dataclasses (Budget, BCE, NodeParams,
Scenario), so "invalidation" is structural: any recalibration produces
a *different key*, and a stale hit is impossible by construction.
These tests pin that property, plus the registry plumbing
(clear_caches / cache_stats / the ``.uncached`` escape hatch).
"""

import dataclasses
import math

import pytest

from repro.devices.bce import BCE, DEFAULT_BCE
from repro.devices.measurements import get_measurement
from repro.itrs.scenarios import BASELINE, Scenario, get_scenario
from repro.perf.cache import (
    cache_stats,
    cached,
    clear_caches,
    registered_caches,
)
from repro.projection.engine import bandwidth_bce_units, node_budget


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts and ends with cold caches."""
    clear_caches()
    yield
    clear_caches()


def _node():
    return BASELINE.roadmap.nodes[0]


class TestCachedDecorator:
    def test_repeat_calls_hit(self):
        calls = []

        @cached(maxsize=8)
        def double(x):
            calls.append(x)
            return 2 * x

        assert double(3) == 6
        assert double(3) == 6
        assert calls == [3]

    def test_uncached_attribute_bypasses(self):
        calls = []

        @cached(maxsize=8)
        def double(x):
            calls.append(x)
            return 2 * x

        double(3)
        double.uncached(3)
        double.uncached(3)
        assert calls == [3, 3, 3]

    def test_registry_and_clear(self):
        @cached(maxsize=8)
        def triple(x):
            return 3 * x

        name = f"{triple.__module__}.{triple.__qualname__}"
        assert name in registered_caches()
        triple(1)
        assert cache_stats()[name]["currsize"] == 1
        clear_caches()
        assert cache_stats()[name]["currsize"] == 0


class TestProjectionCaches:
    def test_node_budget_hits_on_repeat(self):
        node = _node()
        before = cache_stats()
        a = node_budget(node, "mmm", None, BASELINE, DEFAULT_BCE, False)
        b = node_budget(node, "mmm", None, BASELINE, DEFAULT_BCE, False)
        after = cache_stats()
        key = next(
            k for k in after if k.endswith("node_budget")
        )
        assert a == b
        assert after[key]["hits"] == before[key]["hits"] + 1

    def test_uncached_matches_cached(self):
        node = _node()
        assert node_budget(
            node, "fft", 1024, BASELINE, DEFAULT_BCE, False
        ) == node_budget.uncached(
            node, "fft", 1024, BASELINE, DEFAULT_BCE, False
        )

    def test_modified_bce_is_a_fresh_key(self):
        """Recalibrating the BCE must never serve the old budget."""
        node = _node()
        base = node_budget(node, "mmm", None, BASELINE, DEFAULT_BCE,
                           False)
        hot_bce = dataclasses.replace(
            DEFAULT_BCE, power_w=DEFAULT_BCE.power_w * 2
        )
        hot = node_budget(node, "mmm", None, BASELINE, hot_bce, False)
        assert hot != base
        assert hot.power == pytest.approx(base.power / 2)
        # The original key still resolves to the original value.
        assert node_budget(
            node, "mmm", None, BASELINE, DEFAULT_BCE, False
        ) == base

    def test_modified_scenario_is_a_fresh_key(self):
        node = _node()
        base = node_budget(node, "mmm", None, BASELINE, DEFAULT_BCE,
                           False)
        hot = dataclasses.replace(BASELINE, alpha=2.5)
        assert node_budget(
            node, "mmm", None, hot, DEFAULT_BCE, False
        ).alpha == 2.5
        assert node_budget(
            node, "mmm", None, BASELINE, DEFAULT_BCE, False
        ).alpha == base.alpha

    def test_distinct_scenarios_distinct_budgets(self):
        node_40 = BASELINE.roadmap.nodes[0]
        low = get_scenario("low-power")
        low_node = low.roadmap.nodes[0]
        base = node_budget(node_40, "mmm", None, BASELINE)
        capped = node_budget(low_node, "mmm", None, low)
        assert capped.power < base.power

    def test_bandwidth_units_cache_counts(self):
        bandwidth_bce_units("mmm", None, 200.0)
        bandwidth_bce_units("mmm", None, 200.0)
        stats = cache_stats()
        key = next(
            k for k in stats if k.endswith("bandwidth_bce_units")
        )
        assert stats[key]["hits"] >= 1
        assert stats[key]["misses"] >= 1

    def test_get_measurement_cached_identity(self):
        a = get_measurement("ASIC", "mmm")
        b = get_measurement("ASIC", "mmm")
        assert a is b  # cache returns the identical record


class TestThreadSafety:
    """The serving layer hammers these caches from worker threads."""

    def test_concurrent_hits_and_misses_account_exactly(self):
        import threading

        n_threads, calls_per_thread, n_keys = 8, 200, 16
        total = n_threads * calls_per_thread

        @cached(maxsize=n_keys)
        def probe(x):
            return x * x

        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(seed):
            barrier.wait()
            try:
                for i in range(calls_per_thread):
                    key = (seed + i) % n_keys
                    assert probe(key) == key * key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,))
            for s in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        info = probe.cache_info()
        # Under the lock nothing is lost: every call is either a hit
        # or a miss, and the LRU never exceeds its capacity.
        assert info.hits + info.misses == total
        assert info.currsize <= n_keys
        # All keys fit, so at most one miss per distinct key survives
        # (no double-compute races leaking into the counters).
        assert info.misses <= n_keys * n_threads

    def test_concurrent_node_budget_consistent(self):
        import threading

        node = _node()
        results = []
        lock = threading.Lock()

        def worker():
            value = node_budget(
                node, "mmm", None, BASELINE, DEFAULT_BCE, False
            )
            with lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1

    def test_clear_during_concurrent_reads_is_safe(self):
        import threading

        @cached(maxsize=32)
        def probe(x):
            return -x

        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                if probe(7) != -7:  # pragma: no cover - failure path
                    errors.append(AssertionError("stale value"))
                    return

        def clearer():
            for _ in range(100):
                probe.cache_clear()
            stop.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_clear_waits_for_a_stats_sweep_in_flight(self):
        """A clear racing a stats sweep serialises behind it.

        Without the registry lock, ``clear_caches()`` landing in the
        middle of a ``cache_stats()`` sweep yields totals mixing
        pre-clear and post-clear caches -- hit counts no instant ever
        exhibited.  Here the sweep is held open on purpose; the clear
        must not complete until the sweep does, and the sweep must see
        the pre-clear counters.
        """
        import threading

        @cached(maxsize=8)
        def probe(x):
            return x + 1

        probe(1)
        probe(1)  # one miss, one hit on record
        name = next(
            n for n in registered_caches()
            if "test_clear_waits_for_a_stats_sweep_in_flight" in n
        )

        entered = threading.Event()
        release = threading.Event()
        real_info = probe.cache_info

        def slow_info():
            entered.set()
            assert release.wait(5.0)
            return real_info()

        snapshots = []
        cleared = threading.Event()

        def read_stats():
            snapshots.append(cache_stats())

        def clear_all():
            clear_caches()
            cleared.set()

        probe.cache_info = slow_info
        try:
            reader = threading.Thread(target=read_stats)
            reader.start()
            assert entered.wait(5.0)
            clearer = threading.Thread(target=clear_all)
            clearer.start()
            # The sweep holds the registry lock; the clear must block.
            assert not cleared.wait(0.2)
            release.set()
            reader.join(5.0)
            clearer.join(5.0)
        finally:
            probe.cache_info = real_info
            release.set()
        assert cleared.is_set()
        stats = snapshots[0][name]
        # The sweep completed against pre-clear state, atomically.
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        post = cache_stats()[name]
        assert post["hits"] == 0 and post["misses"] == 0

    def test_summary_totals_never_mix_under_clear_storm(self):
        """Registry sweeps under concurrent serving + clears stay sane:
        totals are never negative and always internally consistent."""
        import threading

        from repro.perf.cache import cache_summary

        @cached(maxsize=16)
        def probe_a(x):
            return x

        @cached(maxsize=16)
        def probe_b(x):
            return -x

        stop = threading.Event()
        errors = []

        def server():
            i = 0
            while not stop.is_set():
                probe_a(i % 8)
                probe_b(i % 8)
                i += 1

        def clearer():
            for _ in range(200):
                clear_caches()
            stop.set()

        def reader():
            while not stop.is_set():
                totals = cache_summary()
                if any(v < 0 for v in totals.values()):
                    errors.append(  # pragma: no cover - failure path
                        AssertionError(f"negative totals: {totals}")
                    )
                    return

        threads = [threading.Thread(target=server) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestKeyHygiene:
    def test_budget_nan_rejected_before_caching(self):
        """NaN keys break lru_cache reflexivity; Budget refuses them."""
        from repro.core.constraints import Budget
        from repro.errors import ModelError

        for field in ("area", "power", "bandwidth", "alpha"):
            kwargs = dict(area=10.0, power=5.0, bandwidth=3.0,
                          alpha=1.75)
            kwargs[field] = math.nan
            with pytest.raises(ModelError):
                Budget(**kwargs)

    def test_cache_key_dataclasses_hashable(self):
        from repro.core.constraints import BoundSet, Budget

        node = _node()
        for obj in (
            Budget(area=1.0, power=1.0),
            BoundSet(n_area=1.0, n_power=2.0, n_bandwidth=3.0),
            DEFAULT_BCE,
            BASELINE,
            node,
        ):
            assert hash(obj) == hash(obj)

    def test_equal_budgets_share_a_cache_slot(self):
        from repro.core.constraints import Budget

        a = Budget(area=10.0, power=5.0, bandwidth=3.0)
        b = Budget(area=10.0, power=5.0, bandwidth=3.0)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
