"""The append-only benchmark history (``repro.obs.history``):
envelopes, run-id monotonicity, corrupt-line tolerance, and the
snapshot/history join performed by :func:`record_benchmark`.
"""

import json

import pytest

from repro._version import __version__
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryStore,
    envelope,
    extract_metrics,
    git_sha,
    host_fingerprint,
    record_benchmark,
)


class TestHostFingerprint:
    def test_stable_and_short(self):
        first, second = host_fingerprint(), host_fingerprint()
        assert first == second
        assert len(first) == 12
        int(first, 16)  # hex


class TestGitSha:
    def test_resolves_loose_ref(self, tmp_path):
        git = tmp_path / ".git"
        (git / "refs" / "heads").mkdir(parents=True)
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "refs" / "heads" / "main").write_text("a" * 40 + "\n")
        assert git_sha(tmp_path) == "a" * 40

    def test_resolves_packed_ref(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled fully-peeled sorted\n"
            + "b" * 40
            + " refs/heads/main\n"
        )
        assert git_sha(tmp_path) == "b" * 40

    def test_detached_head(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("c" * 40 + "\n")
        assert git_sha(tmp_path) == "c" * 40

    def test_walks_up_from_subdirectory(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("d" * 40 + "\n")
        nested = tmp_path / "src" / "deep"
        nested.mkdir(parents=True)
        assert git_sha(nested) == "d" * 40

    def test_no_repository_is_none(self, tmp_path):
        assert git_sha(tmp_path) is None

    def test_this_checkout_resolves(self):
        sha = git_sha()
        assert sha is not None and len(sha) == 40


class TestEnvelope:
    def test_fields(self):
        env = envelope(timestamp=1754380000.5)
        assert env["schema_version"] == HISTORY_SCHEMA_VERSION
        assert env["model_version"] == __version__
        assert env["host_fingerprint"] == host_fingerprint()
        assert env["timestamp_unix"] == 1754380000.5
        assert env["run_id"] is None

    def test_timestamp_is_caller_supplied(self):
        # Backfilled runs keep their wall-clock: the envelope never
        # samples the clock itself.
        assert envelope(timestamp=42)["timestamp_unix"] == 42.0


class TestExtractMetrics:
    PAYLOAD = {
        "schema_version": 2,
        "model_version": "1.0.0",
        "best_speedup": 7.5,
        "repeats": 5,
        "modes": {
            "batch_serial": {
                "best_s": 0.12,
                "times_s": [0.12, 0.13],
                "jobs": 1,
            },
        },
        "machine": {"cpus": 8},
        "config": {"batch_window_ms": 2.0},
        "envelope": {"run_id": 3},
        "ok": True,
    }

    def test_flattens_numeric_leaves(self):
        metrics = extract_metrics(self.PAYLOAD)
        assert metrics["best_speedup"] == 7.5
        assert metrics["modes.batch_serial.best_s"] == 0.12

    def test_excludes_provenance_and_machine(self):
        metrics = extract_metrics(self.PAYLOAD)
        for absent in (
            "schema_version",
            "model_version",
            "repeats",
            "modes.batch_serial.jobs",  # config leaf, not a measurement
            "machine.cpus",
            "config.batch_window_ms",
            "envelope.run_id",
        ):
            assert absent not in metrics

    def test_skips_bools_and_lists(self):
        metrics = extract_metrics(self.PAYLOAD)
        assert "ok" not in metrics
        assert "modes.batch_serial.times_s" not in metrics


class TestHistoryStore:
    def test_missing_file_reads_empty(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        assert store.rows() == []
        assert store.last_run_id() == 0

    def test_append_assigns_monotonic_ids(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        ids = [
            store.append({"benchmark": "b", "envelope": {}})["envelope"][
                "run_id"
            ]
            for _ in range(3)
        ]
        assert ids == [1, 2, 3]

    def test_stale_preassigned_id_is_bumped(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        store.append({"benchmark": "b", "envelope": {"run_id": 5}})
        row = store.append({"benchmark": "b", "envelope": {"run_id": 2}})
        assert row["envelope"]["run_id"] == 6

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = HistoryStore(path)
        store.append({"benchmark": "b", "envelope": {}})
        with open(path, "a") as handle:
            handle.write("{truncated\n")
            handle.write("[1, 2]\n")
        store.append({"benchmark": "b", "envelope": {}})
        rows = store.rows()
        assert len(rows) == 2
        assert store.corrupt_lines == 2
        assert rows[-1]["envelope"]["run_id"] == 2

    def test_filters(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        store.append(
            {"benchmark": "a", "envelope": {"host_fingerprint": "f1"}}
        )
        store.append(
            {"benchmark": "b", "envelope": {"host_fingerprint": "f2"}}
        )
        assert len(store.rows(benchmark="a")) == 1
        assert len(store.rows(fingerprint="f2")) == 1
        assert store.rows(benchmark="a", fingerprint="f2") == []


class TestRecordBenchmark:
    def test_snapshot_and_row_share_envelope(self, tmp_path):
        snapshot = tmp_path / "BENCH_x.json"
        history = tmp_path / "BENCH_history.jsonl"
        payload = {"schema_version": 1, "best_s": 0.5}
        row = record_benchmark(
            payload,
            benchmark="x",
            snapshot_path=snapshot,
            history_path=history,
            timestamp=123.0,
        )
        written = json.loads(snapshot.read_text())
        assert written["envelope"] == row["envelope"]
        assert row["envelope"]["run_id"] == 1
        assert row["envelope"]["timestamp_unix"] == 123.0
        assert row["metrics"] == {"best_s": 0.5}
        assert HistoryStore(history).rows()[0]["benchmark"] == "x"

    def test_run_ids_advance_across_runs(self, tmp_path):
        snapshot = tmp_path / "BENCH_x.json"
        history = tmp_path / "BENCH_history.jsonl"
        for expected in (1, 2, 3):
            row = record_benchmark(
                {"best_s": 0.5},
                benchmark="x",
                snapshot_path=snapshot,
                history_path=history,
                timestamp=float(expected),
            )
            assert row["envelope"]["run_id"] == expected

    def test_benchmark_writers_share_one_id_sequence(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        a = record_benchmark(
            {"best_s": 1.0}, benchmark="a",
            snapshot_path=tmp_path / "a.json",
            history_path=history, timestamp=1.0,
        )
        b = record_benchmark(
            {"best_s": 2.0}, benchmark="b",
            snapshot_path=tmp_path / "b.json",
            history_path=history, timestamp=2.0,
        )
        assert (a["envelope"]["run_id"], b["envelope"]["run_id"]) == (1, 2)
