"""Property-based tests (hypothesis) for the core analytical models.

These pin down the structural invariants the paper's reasoning relies
on: monotonicity of every speedup formula in its resources, Amdahl
ceilings, bound consistency at the constraint surfaces, and the
n-independence of heterogeneous parallel energy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from pytest import approx as pytest_approx

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget
from repro.core.energy import design_energy, parallel_energy
from repro.core.hill_marty import (
    speedup_asymmetric,
    speedup_asymmetric_offload,
    speedup_dynamic,
    speedup_symmetric,
)
from repro.core.optimizer import optimize, sweep_designs
from repro.core.power import pollack_perf, seq_power
from repro.core.ucore import UCore, speedup_heterogeneous

fractions = st.floats(min_value=0.0, max_value=1.0)
open_fractions = st.floats(min_value=0.01, max_value=0.999)
r_sizes = st.floats(min_value=1.0, max_value=16.0)
mus = st.floats(min_value=0.05, max_value=1000.0)
phis = st.floats(min_value=0.05, max_value=10.0)
budget_areas = st.floats(min_value=4.0, max_value=512.0)
budget_powers = st.floats(min_value=2.0, max_value=200.0)
budget_bandwidths = st.floats(min_value=4.0, max_value=2000.0)


def _ucore(mu, phi):
    return UCore(name="u", mu=mu, phi=phi)


class TestSpeedupInvariants:
    @given(f=fractions, r=r_sizes, extra=st.floats(1.0, 100.0))
    def test_symmetric_monotone_in_n(self, f, r, extra):
        n = r * 4
        assert speedup_symmetric(f, n + extra, r) >= speedup_symmetric(
            f, n, r
        ) - 1e-12

    @given(f=fractions, r=r_sizes, mu=mus)
    def test_heterogeneous_ge_one_with_unit_ucore_floor(self, f, r, mu):
        # With mu >= 1 and n - r >= 1 the het chip never loses to a BCE.
        u = _ucore(max(mu, 1.0), 1.0)
        assert speedup_heterogeneous(f, r + 4, r, u) >= 1.0 - 1e-12

    @given(f=open_fractions, r=r_sizes, mu=mus)
    def test_heterogeneous_amdahl_ceiling(self, f, r, mu):
        u = _ucore(mu, 1.0)
        ceiling = pollack_perf(r) / (1.0 - f)
        assert speedup_heterogeneous(f, r + 1e6, r, u) <= ceiling + 1e-6

    @given(f=fractions, r=r_sizes)
    def test_dynamic_dominates_static_models(self, f, r):
        n = r + 8
        dyn = speedup_dynamic(f, n, r)
        assert dyn + 1e-9 >= speedup_symmetric(f, n, r)
        assert dyn + 1e-9 >= speedup_asymmetric(f, n, r)

    @given(f=open_fractions, r=r_sizes)
    def test_asymmetric_beats_offload(self, f, r):
        n = r + 8
        assert speedup_asymmetric(f, n, r) >= speedup_asymmetric_offload(
            f, n, r
        )

    @given(f=open_fractions, r=r_sizes, mu1=mus, mu2=mus)
    def test_heterogeneous_monotone_in_mu(self, f, r, mu1, mu2):
        lo, hi = sorted((mu1, mu2))
        n = r + 8
        assert speedup_heterogeneous(
            f, n, r, _ucore(hi, 1.0)
        ) + 1e-9 >= speedup_heterogeneous(f, n, r, _ucore(lo, 1.0))

    @given(f1=fractions, f2=fractions, r=r_sizes, mu=mus)
    def test_heterogeneous_monotone_in_f_when_fabric_faster(
        self, f1, f2, r, mu
    ):
        # If the fabric outruns the serial core, more parallelism helps.
        u = _ucore(mu, 1.0)
        n = r + 8
        if u.mu * (n - r) < pollack_perf(r):
            return
        lo, hi = sorted((f1, f2))
        assert speedup_heterogeneous(
            hi, n, r, u
        ) + 1e-9 >= speedup_heterogeneous(lo, n, r, u)


class TestBoundConsistency:
    @given(
        r=r_sizes,
        area=budget_areas,
        power=budget_powers,
        bw=budget_bandwidths,
        mu=mus,
        phi=phis,
    )
    def test_het_bounds_exhaust_budgets(self, r, area, power, bw, mu, phi):
        chip = HeterogeneousChip(_ucore(mu, phi))
        budget = Budget(area=area, power=power, bandwidth=bw)
        n_pow = chip.bound_power(budget, r)
        n_bw = chip.bound_bandwidth(budget, r)
        assert chip.parallel_power(
            max(n_pow, r), r, budget.alpha
        ) <= power * (1 + 1e-9)
        # mu*(n_bw - r) == bw
        assert mu * (n_bw - r) <= bw * (1 + 1e-9)

    @given(r=r_sizes, power=budget_powers)
    def test_symmetric_power_bound_exhausts_budget(self, r, power):
        chip = SymmetricCMP()
        budget = Budget(area=1e9, power=power)
        n = chip.bound_power(budget, r)
        if n < r:
            # The bound can fall below a single core; the optimizer
            # rejects such r via serial feasibility, nothing to check.
            return
        assert chip.parallel_power(n, r, budget.alpha) == pytest_approx(
            power
        )

    @given(r=r_sizes)
    def test_serial_power_monotone_in_r(self, r):
        assert seq_power(r + 1) > seq_power(r)


class TestOptimizerInvariants:
    @settings(max_examples=40)
    @given(
        f=fractions,
        area=budget_areas,
        power=budget_powers,
        bw=budget_bandwidths,
        mu=mus,
        phi=phis,
    )
    def test_optimize_is_sweep_max(self, f, area, power, bw, mu, phi):
        chip = HeterogeneousChip(_ucore(mu, phi))
        budget = Budget(area=area, power=power, bandwidth=bw)
        points = sweep_designs(chip, f, budget)
        if not points:
            return
        assert optimize(chip, f, budget).speedup == max(
            p.speedup for p in points
        )

    @settings(max_examples=40)
    @given(
        f=fractions,
        area=budget_areas,
        power=budget_powers,
        mu=mus,
        phi=phis,
        boost=st.floats(1.0, 8.0),
    )
    def test_speedup_monotone_in_power_budget(
        self, f, area, power, mu, phi, boost
    ):
        chip = HeterogeneousChip(_ucore(mu, phi))
        small = Budget(area=area, power=power)
        large = Budget(area=area, power=power * boost)
        small_points = sweep_designs(chip, f, small)
        if not small_points:
            return
        assert optimize(chip, f, large).speedup + 1e-9 >= optimize(
            chip, f, small
        ).speedup

    @settings(max_examples=40)
    @given(f=fractions, area=budget_areas, power=budget_powers)
    def test_resolved_n_within_budget(self, f, area, power):
        chip = AsymmetricOffloadCMP()
        budget = Budget(area=area, power=power)
        points = sweep_designs(chip, f, budget)
        for p in points:
            assert p.n <= area * (1 + 1e-12)
            assert p.n >= p.r


class TestEnergyInvariants:
    @given(
        f=open_fractions,
        mu=mus,
        phi=phis,
        n1=st.floats(10.0, 100.0),
        n2=st.floats(101.0, 10000.0),
    )
    def test_het_parallel_energy_independent_of_n(
        self, f, mu, phi, n1, n2
    ):
        chip = HeterogeneousChip(_ucore(mu, phi))
        e1 = parallel_energy(f, n1, 2.0, 1.75, chip)
        e2 = parallel_energy(f, n2, 2.0, 1.75, chip)
        assert e1 == e2 or abs(e1 - e2) < 1e-12 * max(e1, e2)

    @given(f=fractions, r=r_sizes, rel=st.floats(0.1, 1.0))
    def test_energy_scales_with_rel_power(self, f, r, rel):
        chip = SymmetricCMP()
        base = design_energy(chip, f, r + 8, r, rel_power=1.0)
        scaled = design_energy(chip, f, r + 8, r, rel_power=rel)
        assert scaled == rel * base or abs(
            scaled - rel * base
        ) < 1e-12 * base

    @given(f=open_fractions, r=r_sizes, mu=mus, phi=phis)
    def test_energy_positive(self, f, r, mu, phi):
        chip = HeterogeneousChip(_ucore(mu, phi))
        assert design_energy(chip, f, r + 8, r) > 0.0
