"""Unit tests for repro.core.ucore."""

import math

import pytest

from repro.core.hill_marty import speedup_asymmetric_offload
from repro.core.ucore import UCore, speedup_heterogeneous
from repro.errors import ModelError


class TestUCore:
    def test_construction(self):
        u = UCore(name="asic", mu=27.4, phi=0.79, kind="asic",
                  workload="mmm")
        assert u.name == "asic"
        assert u.mu == 27.4
        assert u.phi == 0.79

    @pytest.mark.parametrize("mu,phi", [(0.0, 1.0), (-1.0, 1.0),
                                        (1.0, 0.0), (1.0, -2.0)])
    def test_rejects_nonpositive_parameters(self, mu, phi):
        with pytest.raises(ModelError):
            UCore(name="bad", mu=mu, phi=phi)

    def test_efficiency_gain(self):
        u = UCore(name="u", mu=10.0, phi=0.5)
        assert u.efficiency_gain == pytest.approx(20.0)

    def test_frozen(self):
        u = UCore(name="u", mu=1.0, phi=1.0)
        with pytest.raises(AttributeError):
            u.mu = 2.0

    def test_scaled_returns_new_ucore(self):
        u = UCore(name="fpga", mu=2.0, phi=0.3)
        faster = u.scaled(perf_factor=4.0)
        assert faster.mu == pytest.approx(8.0)
        assert faster.phi == pytest.approx(0.3)
        assert u.mu == 2.0  # original untouched

    def test_scaled_rejects_nonpositive(self):
        u = UCore(name="u", mu=1.0, phi=1.0)
        with pytest.raises(ModelError):
            u.scaled(perf_factor=0.0)

    def test_describe_mentions_parameters(self):
        u = UCore(name="gpu", mu=3.41, phi=0.74, workload="mmm")
        text = u.describe()
        assert "gpu" in text
        assert "mmm" in text
        assert "3.41" in text


class TestHeterogeneousSpeedup:
    def test_paper_formula_exact(self):
        u = UCore(name="u", mu=5.0, phi=1.0)
        f, n, r = 0.99, 32, 4
        expected = 1.0 / ((1 - f) / 2.0 + f / (5.0 * 28.0))
        assert speedup_heterogeneous(f, n, r, u) == pytest.approx(expected)

    def test_mu_one_equals_asymmetric_offload(self):
        # A mu=1 U-core is exactly a sea of BCEs with the fast core off.
        u = UCore(name="bce-fabric", mu=1.0, phi=1.0)
        f, n, r = 0.9, 64, 4
        assert speedup_heterogeneous(f, n, r, u) == pytest.approx(
            speedup_asymmetric_offload(f, n, r)
        )

    def test_serial_only_ignores_ucore(self):
        u = UCore(name="u", mu=100.0, phi=1.0)
        assert speedup_heterogeneous(0.0, 16, 9, u) == pytest.approx(3.0)

    def test_all_parallel(self):
        u = UCore(name="u", mu=10.0, phi=1.0)
        assert speedup_heterogeneous(1.0, 11, 1, u) == pytest.approx(100.0)

    def test_needs_fabric_when_parallel(self):
        u = UCore(name="u", mu=10.0, phi=1.0)
        with pytest.raises(ModelError):
            speedup_heterogeneous(0.5, 4, 4, u)

    def test_speedup_monotonic_in_mu(self):
        f, n, r = 0.95, 32, 2
        speeds = [
            speedup_heterogeneous(
                f, n, r, UCore(name="u", mu=mu, phi=1.0)
            )
            for mu in (1.0, 2.0, 8.0, 64.0)
        ]
        assert speeds == sorted(speeds)
        assert speeds[0] < speeds[-1]

    def test_amdahl_ceiling(self):
        # No mu can beat the serial-fraction ceiling f -> 1/(1-f)*perf.
        u = UCore(name="u", mu=1e12, phi=1.0)
        f, n, r = 0.9, 1e6, 4
        ceiling = math.sqrt(r) / (1 - f)
        assert speedup_heterogeneous(f, n, r, u) <= ceiling + 1e-6
