"""Tests for the FFT algorithm variants (radix-4, real-input)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.workloads.fft import FFTWorkload, fft_radix2
from repro.workloads.fft_variants import (
    fft_radix4,
    rfft_bytes,
    rfft_ops,
    rfft_packed,
)

pow2 = st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512, 1024])


class TestRadix4:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024, 2048])
    def test_matches_numpy(self, n, rng):
        x = (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ).astype(np.complex64)
        np.testing.assert_allclose(
            fft_radix4(x),
            np.fft.fft(x.astype(np.complex128)),
            rtol=5e-3,
            atol=5e-3,
        )

    @pytest.mark.parametrize("n", [8, 32, 128, 512, 2048])
    def test_odd_log2_sizes_use_radix2_peel(self, n, rng):
        # These sizes are not powers of four; the fallback must agree
        # with the radix-2 kernel bit for bit (same arithmetic order is
        # not guaranteed, so compare numerically).
        x = (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ).astype(np.complex64)
        np.testing.assert_allclose(
            fft_radix4(x), fft_radix2(x), rtol=5e-3, atol=5e-3
        )

    def test_impulse(self):
        x = np.zeros(64, dtype=np.complex64)
        x[0] = 1.0
        np.testing.assert_allclose(
            fft_radix4(x), np.ones(64), atol=1e-5
        )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ModelError):
            fft_radix4(np.zeros(12))

    @settings(max_examples=20, deadline=None)
    @given(n=pow2, seed=st.integers(0, 2**31 - 1))
    def test_agrees_with_radix2_property(self, n, seed):
        rng = np.random.default_rng(seed)
        x = (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ).astype(np.complex64)
        np.testing.assert_allclose(
            fft_radix4(x), fft_radix2(x), rtol=1e-2, atol=1e-2
        )


class TestRealFFT:
    @pytest.mark.parametrize("n", [4, 8, 16, 64, 256, 1024])
    def test_matches_numpy_rfft(self, n, rng):
        x = rng.standard_normal(n).astype(np.float32)
        np.testing.assert_allclose(
            rfft_packed(x),
            np.fft.rfft(x.astype(np.float64)),
            rtol=5e-3,
            atol=5e-3,
        )

    def test_output_length(self, rng):
        x = rng.standard_normal(64).astype(np.float32)
        assert len(rfft_packed(x)) == 33

    def test_dc_and_nyquist_are_real(self, rng):
        x = rng.standard_normal(128).astype(np.float32)
        out = rfft_packed(x)
        assert abs(out[0].imag) < 1e-4
        assert abs(out[-1].imag) < 1e-4

    def test_too_small_rejected(self):
        with pytest.raises(ModelError):
            rfft_packed(np.zeros(2, dtype=np.float32))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ModelError):
            rfft_packed(np.zeros(24, dtype=np.float32))


class TestRealTransformCosts:
    def test_half_the_complex_work(self):
        wl = FFTWorkload()
        for n in (64, 1024):
            assert rfft_ops(n) == pytest.approx(0.5 * wl.ops(n))

    def test_traffic_roughly_halved(self):
        wl = FFTWorkload()
        for n in (64, 1024, 16384):
            assert rfft_bytes(n) < 0.6 * wl.compulsory_bytes(n)

    def test_intensity_close_to_complex(self):
        # Work and traffic halve together: intensity stays comparable.
        wl = FFTWorkload()
        for n in (256, 4096):
            real_ai = rfft_ops(n) / rfft_bytes(n)
            complex_ai = wl.arithmetic_intensity(n)
            assert real_ai == pytest.approx(complex_ai, rel=0.25)

    def test_validation(self):
        with pytest.raises(ModelError):
            rfft_ops(2)
        with pytest.raises(ModelError):
            rfft_bytes(100)
