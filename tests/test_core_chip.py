"""Unit tests for repro.core.chip (Table 1 bounds per chip model)."""

import math

import pytest

from repro.core.chip import (
    AsymmetricCMP,
    AsymmetricOffloadCMP,
    DynamicCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget, LimitingFactor
from repro.core.ucore import UCore


@pytest.fixture
def budget():
    return Budget(area=19.0, power=10.0, bandwidth=42.0)


class TestSymmetricBounds:
    def test_area_bound(self, budget, sym_chip):
        assert sym_chip.bound_area(budget, 4) == pytest.approx(19.0)

    def test_power_bound_formula(self, budget, sym_chip):
        # n <= P / r^(alpha/2 - 1)
        r = 4.0
        expected = 10.0 / r ** (1.75 / 2 - 1)
        assert sym_chip.bound_power(budget, r) == pytest.approx(expected)

    def test_power_bound_r1_equals_p(self, budget, sym_chip):
        assert sym_chip.bound_power(budget, 1) == pytest.approx(10.0)

    def test_bandwidth_bound_formula(self, budget, sym_chip):
        assert sym_chip.bound_bandwidth(budget, 4) == pytest.approx(
            42.0 * 2.0
        )

    def test_bandwidth_infinite(self, sym_chip):
        b = Budget(area=19.0, power=10.0)
        assert math.isinf(sym_chip.bound_bandwidth(b, 4))

    def test_parallel_power_consistency(self, sym_chip):
        # At the power bound, aggregate parallel power equals P.
        budget = Budget(area=1e9, power=10.0)
        r = 4.0
        n = sym_chip.bound_power(budget, r)
        assert sym_chip.parallel_power(n, r, 1.75) == pytest.approx(10.0)

    def test_parallel_perf(self, sym_chip):
        assert sym_chip.parallel_perf(16, 4) == pytest.approx(8.0)


class TestOffloadBounds:
    def test_power_bound(self, budget, asym_chip):
        assert asym_chip.bound_power(budget, 4) == pytest.approx(14.0)

    def test_bandwidth_bound(self, budget, asym_chip):
        assert asym_chip.bound_bandwidth(budget, 4) == pytest.approx(46.0)

    def test_parallel_power_is_bce_count(self, asym_chip):
        assert asym_chip.parallel_power(20, 4, 1.75) == pytest.approx(16.0)

    def test_parallel_power_consistency(self, asym_chip):
        budget = Budget(area=1e9, power=10.0)
        n = asym_chip.bound_power(budget, 4)
        assert asym_chip.parallel_power(n, 4, 1.75) == pytest.approx(10.0)


class TestAsymmetricNonOffload:
    def test_parallel_power_includes_fast_core(self):
        chip = AsymmetricCMP()
        expected = 16.0 + 4.0**0.875
        assert chip.parallel_power(20, 4, 1.75) == pytest.approx(expected)

    def test_power_bound_tighter_than_offload(self, budget):
        on = AsymmetricCMP()
        off = AsymmetricOffloadCMP()
        assert on.bound_power(budget, 4) < off.bound_power(budget, 4)

    def test_parallel_perf_includes_fast_core(self):
        chip = AsymmetricCMP()
        assert chip.parallel_perf(20, 4) == pytest.approx(18.0)


class TestHeterogeneousBounds:
    def test_power_bound(self, budget):
        chip = HeterogeneousChip(UCore(name="u", mu=4.0, phi=0.5))
        assert chip.bound_power(budget, 4) == pytest.approx(24.0)

    def test_bandwidth_bound(self, budget):
        chip = HeterogeneousChip(UCore(name="u", mu=4.0, phi=0.5))
        assert chip.bound_bandwidth(budget, 4) == pytest.approx(14.5)

    def test_low_phi_relaxes_power(self, budget):
        tight = HeterogeneousChip(UCore(name="a", mu=4.0, phi=1.0))
        loose = HeterogeneousChip(UCore(name="b", mu=4.0, phi=0.25))
        assert loose.bound_power(budget, 4) > tight.bound_power(budget, 4)

    def test_high_mu_tightens_bandwidth(self, budget):
        slow = HeterogeneousChip(UCore(name="a", mu=2.0, phi=0.5))
        fast = HeterogeneousChip(UCore(name="b", mu=500.0, phi=0.5))
        assert fast.bound_bandwidth(budget, 4) < slow.bound_bandwidth(
            budget, 4
        )

    def test_parallel_power_consistency(self, budget):
        chip = HeterogeneousChip(UCore(name="u", mu=4.0, phi=0.5))
        n = chip.bound_power(budget, 4)
        assert chip.parallel_power(n, 4, 1.75) == pytest.approx(10.0)

    def test_parallel_bandwidth_consistency(self, budget):
        chip = HeterogeneousChip(UCore(name="u", mu=4.0, phi=0.5))
        n = chip.bound_bandwidth(budget, 4)
        # mu * (n - r) should equal the bandwidth budget.
        assert chip.ucore.mu * (n - 4) == pytest.approx(42.0)

    def test_label_is_ucore_name(self):
        chip = HeterogeneousChip(UCore(name="ASIC", mu=27.4, phi=0.79))
        assert chip.label == "ASIC"


class TestDynamic:
    def test_bounds_are_budget_values(self, budget):
        chip = DynamicCMP()
        assert chip.bound_power(budget, 4) == pytest.approx(10.0)
        assert chip.bound_bandwidth(budget, 4) == pytest.approx(42.0)

    def test_parallel_power_perf(self):
        chip = DynamicCMP()
        assert chip.parallel_power(32, 1, 1.75) == pytest.approx(32.0)
        assert chip.parallel_perf(32, 1) == pytest.approx(32.0)


class TestSerialFeasibility:
    def test_max_serial_r_combines_bounds(self, budget, sym_chip):
        expected = min(10.0 ** (2 / 1.75), 42.0**2, 19.0)
        assert sym_chip.max_serial_r(budget) == pytest.approx(expected)

    def test_serial_feasible_boundary(self, budget, sym_chip):
        r_max = sym_chip.max_serial_r(budget)
        assert sym_chip.serial_feasible(budget, r_max)
        assert not sym_chip.serial_feasible(budget, r_max + 0.01)

    def test_tight_bandwidth_limits_r(self, sym_chip):
        # B = 2 -> r <= 4 even with lavish power.
        b = Budget(area=100.0, power=1e9, bandwidth=2.0)
        assert sym_chip.max_serial_r(b) == pytest.approx(4.0)

    def test_area_caps_r(self, sym_chip):
        b = Budget(area=3.0, power=1e9)
        assert sym_chip.max_serial_r(b) == pytest.approx(3.0)

    def test_bounds_returns_boundset(self, budget, sym_chip):
        bs = sym_chip.bounds(budget, 2)
        assert bs.n_effective <= 19.0
        assert bs.limiter in LimitingFactor


class TestHeterogeneousAssisted:
    """The fast-core-stays-on variant (ablation of the paper's §3.3
    assumption)."""

    def _chips(self, mu=4.0, phi=0.5):
        from repro.core.chip import HeterogeneousAssistedChip

        ucore = UCore(name="u", mu=mu, phi=phi)
        return (
            HeterogeneousChip(ucore),
            HeterogeneousAssistedChip(ucore),
        )

    def test_speedup_includes_fast_core(self):
        off, on = self._chips()
        f, n, r = 0.9, 20.0, 4.0
        # Parallel rate gains perf_seq(r) = 2.
        expected = 1.0 / (0.1 / 2.0 + 0.9 / (4.0 * 16.0 + 2.0))
        assert on.speedup(f, n, r) == pytest.approx(expected)
        assert on.speedup(f, n, r) > off.speedup(f, n, r)

    def test_power_bound_subtracts_fast_core(self, budget):
        off, on = self._chips()
        # off: P/phi + r; on: (P - r^(alpha/2))/phi + r.
        r = 4.0
        expected = (10.0 - 4.0**0.875) / 0.5 + 4.0
        assert on.bound_power(budget, r) == pytest.approx(expected)
        assert on.bound_power(budget, r) < off.bound_power(budget, r)

    def test_bandwidth_bound_subtracts_fast_core(self, budget):
        _, on = self._chips()
        expected = (42.0 - 2.0) / 4.0 + 4.0
        assert on.bound_bandwidth(budget, 4.0) == pytest.approx(expected)

    def test_power_exhausted_by_core_alone(self):
        _, on = self._chips()
        tiny = Budget(area=19.0, power=1.5)
        # r = 4 costs 4^0.875 ~ 3.36 > 1.5: no fabric headroom at all.
        assert on.bound_power(tiny, 4.0) == pytest.approx(4.0)

    def test_parallel_power_and_perf(self):
        _, on = self._chips()
        assert on.parallel_power(20.0, 4.0, 1.75) == pytest.approx(
            0.5 * 16.0 + 4.0**0.875
        )
        assert on.parallel_perf(20.0, 4.0) == pytest.approx(
            4.0 * 16.0 + 2.0
        )

    def test_label(self):
        _, on = self._chips()
        assert on.label == "u+core"

    def test_serial_only(self):
        _, on = self._chips()
        assert on.speedup(0.0, 20.0, 4.0) == pytest.approx(2.0)
