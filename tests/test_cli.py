"""Tests for the command-line interface."""

import sys

import pytest

from repro.cli import build_parser, exit_code_for, main
from repro.errors import (
    CalibrationError,
    InfeasibleDesignError,
    ModelError,
    ReproError,
    ServiceTimeoutError,
    UnknownExperimentError,
    UnknownWorkloadError,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_speedup_arguments(self):
        args = build_parser().parse_args(
            ["speedup", "--workload", "fft", "--f", "0.99"]
        )
        assert args.workload == "fft"
        assert args.f == 0.99
        assert args.fft_size == 1024
        assert args.scenario == "baseline"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.figures == ["F6", "F7", "F8", "F9"]
        assert args.jobs is None
        assert args.executor == "process"
        assert args.method == "batch"

    def test_campaign_rejects_bad_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--executor", "gpu"])

    def test_campaign_store_flags(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers is None
        assert args.store_dir is None
        assert args.resume is False
        assert args.retries == 2
        args = build_parser().parse_args(
            ["campaign", "--workers", "3", "--store-dir", "/tmp/s",
             "--resume", "--retries", "0"]
        )
        assert args.workers == 3
        assert args.store_dir == "/tmp/s"
        assert args.resume is True
        assert args.retries == 0

    def test_serve_store_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.store_dir is None
        assert args.drain_timeout_s == 5.0
        args = build_parser().parse_args(
            ["serve", "--store-dir", "/tmp/s", "--drain-timeout-s", "2"]
        )
        assert args.store_dir == "/tmp/s"
        assert args.drain_timeout_s == 2.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.batch_window_ms == 2.0
        assert args.max_inflight == 8
        assert args.queue_depth == 64
        assert args.timeout_s == 10.0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9999", "--batch-window-ms", "5",
             "--max-inflight", "2"]
        )
        assert args.port == 9999
        assert args.batch_window_ms == 5.0
        assert args.max_inflight == 2

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestExitCodes:
    """ReproError subclasses map to stable exit codes (no tracebacks)."""

    @pytest.mark.parametrize("exc, code", [
        (ModelError("bad f"), 2),
        (UnknownWorkloadError("nope"), 2),
        (UnknownExperimentError("F99"), 2),
        (ServiceTimeoutError("deadline"), 2),
        (InfeasibleDesignError("no design"), 3),
        (CalibrationError("inconsistent"), 4),
        (ReproError("anything else"), 1),
    ])
    def test_mapping(self, exc, code):
        assert exit_code_for(exc) == code

    def test_validation_error_exits_2_via_entrypoint(self, capsys):
        """The console entry point raises SystemExit with the code."""
        with pytest.raises(SystemExit) as excinfo:
            sys.exit(main(["speedup", "--workload", "fft", "--f", "2"]))
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_one_line_message_not_traceback(self, capsys):
        assert main(["run", "F99"]) == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T5" in out
        assert "F10" in out

    def test_run_single(self, capsys):
        assert main(["run", "T6"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "T1", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out

    def test_run_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "F99"]) == 2
        err = capsys.readouterr().err
        assert "error" in err

    def test_speedup_command(self, capsys):
        code = main(
            ["speedup", "--workload", "bs", "--f", "0.9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ASIC" in out
        assert "(ba)" in out

    def test_speedup_with_scenario(self, capsys):
        code = main(
            [
                "speedup", "--workload", "fft", "--f", "0.99",
                "--scenario", "high-bandwidth",
            ]
        )
        assert code == 0
        assert "scenario=high-bandwidth" in capsys.readouterr().out

    def test_bad_f_value_fails_cleanly(self, capsys):
        assert main(["speedup", "--workload", "fft", "--f", "1.5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--workload", "fft", "--f", "0.5",
                  "--scenario", "utopia"])

    def test_campaign_serial(self, capsys):
        code = main(
            ["campaign", "--figures", "F8", "--executor", "serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 panels" in out
        assert "ASIC" in out

    def test_campaign_jobs_flag(self, capsys):
        code = main(
            ["campaign", "--figures", "F6", "--jobs", "2"]
        )
        assert code == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_campaign_unknown_figure_fails_cleanly(self, capsys):
        assert main(["campaign", "--figures", "F42"]) == 2
        assert "F42" in capsys.readouterr().err

    def test_campaign_resume_roundtrip(self, tmp_path, capsys):
        """A second --resume run serves every panel from the store."""
        store = str(tmp_path / "store")
        argv = ["campaign", "--figures", "F8", "--executor", "serial",
                "--store-dir", store]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 resumed" in first
        assert store in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 resumed" in second
        assert "cached" in second


class TestFullRun:
    def test_all_experiments_via_cli(self, capsys):
        """`repro-hetsim all` regenerates every artefact cleanly."""
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 5", "Figure 6", "Figure 10",
                       "Roofline", "chip models"):
            assert marker in out


class TestMaterializeCommand:
    def test_parser_accepts_actions_and_flags(self):
        args = build_parser().parse_args(
            ["materialize", "build", "--dir", "tensors",
             "--scenario", "baseline", "--jobs", "2",
             "--executor", "thread", "--store-dir", "results"]
        )
        assert args.action == "build"
        assert args.tensor_dir == "tensors"
        assert args.store_dir == "results"

    def test_parser_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["materialize", "rebuild", "--dir", "x"]
            )

    def test_serve_accepts_tensor_dir(self):
        args = build_parser().parse_args(
            ["serve", "--tensor-dir", "tensors"]
        )
        assert args.tensor_dir == "tensors"
        assert build_parser().parse_args(["serve"]).tensor_dir is None

    def test_verify_missing_store_exits_1(self, tmp_path, capsys):
        code = main(
            ["materialize", "verify", "--dir", str(tmp_path / "nope")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: no tensor store")
