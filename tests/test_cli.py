"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_speedup_arguments(self):
        args = build_parser().parse_args(
            ["speedup", "--workload", "fft", "--f", "0.99"]
        )
        assert args.workload == "fft"
        assert args.f == 0.99
        assert args.fft_size == 1024
        assert args.scenario == "baseline"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.figures == ["F6", "F7", "F8", "F9"]
        assert args.jobs is None
        assert args.executor == "process"
        assert args.method == "batch"

    def test_campaign_rejects_bad_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--executor", "gpu"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T5" in out
        assert "F10" in out

    def test_run_single(self, capsys):
        assert main(["run", "T6"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "T1", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out

    def test_run_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "F99"]) == 1
        err = capsys.readouterr().err
        assert "error" in err

    def test_speedup_command(self, capsys):
        code = main(
            ["speedup", "--workload", "bs", "--f", "0.9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ASIC" in out
        assert "(ba)" in out

    def test_speedup_with_scenario(self, capsys):
        code = main(
            [
                "speedup", "--workload", "fft", "--f", "0.99",
                "--scenario", "high-bandwidth",
            ]
        )
        assert code == 0
        assert "scenario=high-bandwidth" in capsys.readouterr().out

    def test_bad_f_value_fails_cleanly(self, capsys):
        assert main(["speedup", "--workload", "fft", "--f", "1.5"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--workload", "fft", "--f", "0.5",
                  "--scenario", "utopia"])

    def test_campaign_serial(self, capsys):
        code = main(
            ["campaign", "--figures", "F8", "--executor", "serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 panels" in out
        assert "ASIC" in out

    def test_campaign_jobs_flag(self, capsys):
        code = main(
            ["campaign", "--figures", "F6", "--jobs", "2"]
        )
        assert code == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_campaign_unknown_figure_fails_cleanly(self, capsys):
        assert main(["campaign", "--figures", "F42"]) == 1
        assert "F42" in capsys.readouterr().err


class TestFullRun:
    def test_all_experiments_via_cli(self, capsys):
        """`repro-hetsim all` regenerates every artefact cleanly."""
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 5", "Figure 6", "Figure 10",
                       "Roofline", "chip models"):
            assert marker in out
