"""Tests for the device catalogue and spec types (Table 2)."""

import pytest

from repro.devices.catalog import (
    DEVICES,
    FPGA_MM2_PER_LUT,
    LX760_TOTAL_LUTS,
    device_names,
    fpga_area_mm2,
    get_device,
)
from repro.devices.specs import DeviceKind, DeviceSpec, Measurement
from repro.errors import ModelError, UnknownDeviceError


class TestCatalog:
    def test_table2_devices_present(self):
        assert device_names() == [
            "Core i7-960", "GTX285", "GTX480", "R5870", "LX760", "ASIC",
        ]

    def test_core_i7_row(self):
        i7 = get_device("Core i7-960")
        assert i7.node_nm == 45
        assert i7.die_area_mm2 == 263.0
        assert i7.core_area_mm2 == 193.0
        assert i7.cores == 4
        assert i7.clock_ghz == 3.2
        assert i7.peak_bandwidth_gbps == 32.0

    def test_gtx480_row(self):
        gpu = get_device("GTX480")
        assert gpu.node_nm == 40
        assert gpu.core_area_mm2 == 422.0
        assert gpu.peak_bandwidth_gbps == pytest.approx(177.4)

    def test_r5870_noncompute_assumption(self):
        # 25% non-compute overhead assumed by the paper.
        r5870 = get_device("R5870")
        assert r5870.core_area_mm2 == pytest.approx(334.0 * 0.75)

    def test_kinds(self):
        assert get_device("Core i7-960").kind == DeviceKind.CPU
        assert get_device("GTX285").kind == DeviceKind.GPU
        assert get_device("LX760").kind == DeviceKind.FPGA
        assert get_device("ASIC").kind == DeviceKind.ASIC

    def test_unknown_device(self):
        with pytest.raises(UnknownDeviceError):
            get_device("GTX580")

    def test_noncompute_area(self):
        i7 = get_device("Core i7-960")
        assert i7.noncompute_area_mm2 == pytest.approx(70.0)
        assert get_device("ASIC").noncompute_area_mm2 is None


class TestFPGAAreaModel:
    def test_per_lut_constant(self):
        assert FPGA_MM2_PER_LUT == pytest.approx(0.00191)

    def test_full_device_area(self):
        assert get_device("LX760").core_area_mm2 == pytest.approx(
            LX760_TOTAL_LUTS * FPGA_MM2_PER_LUT
        )

    def test_design_area(self):
        assert fpga_area_mm2(100_000) == pytest.approx(191.0)

    def test_rejects_zero_luts(self):
        with pytest.raises(UnknownDeviceError):
            fpga_area_mm2(0)


class TestSpecValidation:
    def test_bad_kind(self):
        with pytest.raises(ModelError):
            DeviceSpec(name="x", vendor="v", kind="quantum", year=2020,
                       node_nm=40)

    def test_bad_area(self):
        with pytest.raises(ModelError):
            DeviceSpec(name="x", vendor="v", kind="cpu", year=2020,
                       node_nm=40, die_area_mm2=-1.0)


class TestMeasurementType:
    def test_derived_ratios(self):
        m = Measurement(device="d", workload="mmm", throughput=100.0,
                        area_mm2=50.0, watts=20.0, unit="GFLOP/s")
        assert m.perf_per_mm2 == pytest.approx(2.0)
        assert m.perf_per_joule == pytest.approx(5.0)

    def test_key(self):
        m = Measurement(device="d", workload="fft", throughput=1.0,
                        area_mm2=1.0, watts=1.0, unit="GFLOP/s",
                        size=1024)
        assert m.key() == ("d", "fft", 1024)

    @pytest.mark.parametrize("field,value", [
        ("throughput", 0.0), ("area_mm2", -1.0), ("watts", 0.0),
    ])
    def test_validation(self, field, value):
        kwargs = dict(device="d", workload="mmm", throughput=1.0,
                      area_mm2=1.0, watts=1.0, unit="GFLOP/s")
        kwargs[field] = value
        with pytest.raises(ModelError):
            Measurement(**kwargs)
