"""Tests for uncertainty propagation and alternative perf laws."""

import math

import numpy as np
import pytest

from repro.core.chip import HeterogeneousChip, SymmetricCMP
from repro.core.constraints import Budget
from repro.core.optimizer import optimize
from repro.core.perflaws import (
    linear,
    logarithmic,
    pollack,
    power_law,
    tabulated,
    validate_law,
)
from repro.core.ucore import UCore
from repro.devices.measurements import get_measurement
from repro.devices.uncertainty import (
    MeasurementError,
    propagate_errors,
)
from repro.errors import CalibrationError, ModelError


class TestMeasurementError:
    def test_x_and_e_combination(self):
        err = MeasurementError(throughput=0.03, area=0.04, power=0.12)
        assert err.x_rel == pytest.approx(0.05)
        assert err.e_rel == pytest.approx(math.hypot(0.03, 0.12))

    def test_validation(self):
        with pytest.raises(CalibrationError):
            MeasurementError(throughput=-0.1)


class TestPropagation:
    @pytest.fixture
    def pair(self):
        return (
            get_measurement("GTX285", "mmm"),
            get_measurement("Core i7-960", "mmm"),
        )

    def test_central_values_match_derivation(self, pair):
        ucore_meas, fast_meas = pair
        result = propagate_errors(
            ucore_meas, fast_meas,
            MeasurementError(0.02, 0.05, 0.1),
            MeasurementError(0.02, 0.05, 0.1),
        )
        assert result.mu == pytest.approx(3.394, rel=1e-3)
        assert result.phi == pytest.approx(0.74, rel=1e-2)

    def test_zero_error_in_zero_error_out(self, pair):
        result = propagate_errors(
            *pair, MeasurementError(), MeasurementError()
        )
        assert result.mu_rel_error == 0.0
        assert result.phi_rel_error == 0.0

    def test_phi_immune_to_throughput_error(self, pair):
        # Structural fact: phi is a pure power-per-area ratio --
        # throughput cancels out of its error budget entirely.
        result = propagate_errors(
            *pair,
            MeasurementError(throughput=0.5),
            MeasurementError(throughput=0.5),
        )
        assert result.phi_rel_error == 0.0
        assert result.mu_rel_error > 0.0

    def test_monte_carlo_cross_check(self, pair):
        """Analytic propagation agrees with sampling (small errors)."""
        ucore_meas, fast_meas = pair
        err = MeasurementError(throughput=0.03, area=0.05, power=0.04)
        analytic = propagate_errors(ucore_meas, fast_meas, err, err)
        rng = np.random.default_rng(0)
        samples_mu, samples_phi = [], []
        from repro.devices.params import derive_mu, derive_phi

        for _ in range(4000):
            def draw(meas):
                thr = meas.throughput * rng.lognormal(0, err.throughput)
                area = meas.area_mm2 * rng.lognormal(0, err.area)
                watts = meas.watts * rng.lognormal(0, err.power)
                return thr / area, thr / watts

            x_u, e_u = draw(ucore_meas)
            x_f, e_f = draw(fast_meas)
            mu = derive_mu(x_u, x_f, 2)
            samples_mu.append(mu)
            samples_phi.append(derive_phi(mu, e_f, e_u, 2, 1.75))
        mc_mu_rel = np.std(samples_mu) / np.mean(samples_mu)
        mc_phi_rel = np.std(samples_phi) / np.mean(samples_phi)
        assert mc_mu_rel == pytest.approx(
            analytic.mu_rel_error, rel=0.15
        )
        assert mc_phi_rel == pytest.approx(
            analytic.phi_rel_error, rel=0.15
        )

    def test_intervals_and_describe(self, pair):
        result = propagate_errors(
            *pair,
            MeasurementError(0.0, 0.1, 0.0),
            MeasurementError(),
        )
        lo, hi = result.mu_interval
        assert lo < result.mu < hi
        assert "%" in result.describe()


class TestPerfLaws:
    def test_pollack_matches_core_default(self):
        from repro.core.power import pollack_perf

        for r in (1.0, 2.0, 9.0):
            assert pollack(r) == pollack_perf(r)

    def test_power_law_family(self):
        assert power_law(0.5)(4.0) == pytest.approx(2.0)
        assert power_law(1.0)(4.0) == pytest.approx(4.0)
        with pytest.raises(ModelError):
            power_law(0.0)
        with pytest.raises(ModelError):
            power_law(1.5)

    def test_logarithmic(self):
        assert logarithmic(1.0) == pytest.approx(1.0)
        assert logarithmic(8.0) == pytest.approx(4.0)

    def test_all_builtin_laws_validate(self):
        for law in (pollack, logarithmic, linear, power_law(0.3)):
            validate_law(law)

    def test_validate_rejects_broken_anchor(self):
        with pytest.raises(ModelError, match="r=1"):
            validate_law(lambda r: 2 * r)

    def test_validate_rejects_decreasing(self):
        with pytest.raises(ModelError, match="decreases"):
            validate_law(lambda r: 1.0 if r < 2 else 0.5)

    def test_tabulated_interpolation(self):
        law = tabulated([(1.0, 1.0), (4.0, 1.8), (16.0, 3.0)])
        assert law(1.0) == pytest.approx(1.0)
        assert law(4.0) == pytest.approx(1.8)
        # Log-linear midpoint between r=4 and r=16 at r=8.
        assert law(8.0) == pytest.approx(
            1.8 * (3.0 / 1.8) ** 0.5
        )
        # Clamped beyond the table.
        assert law(64.0) == pytest.approx(3.0)
        validate_law(law)

    def test_tabulated_validation(self):
        with pytest.raises(ModelError):
            tabulated([(2.0, 2.0)])
        with pytest.raises(ModelError):
            tabulated([(1.0, 1.0), (4.0, 0.9)])


class TestLawsInsideChips:
    def test_pessimistic_law_devalues_big_cores(self):
        budget = Budget(area=64.0, power=1e9)
        optimistic = SymmetricCMP(perf_seq=linear)
        pessimistic = SymmetricCMP(perf_seq=logarithmic)
        r_opt = optimize(optimistic, 0.5, budget).r
        r_pes = optimize(pessimistic, 0.5, budget).r
        assert r_pes <= r_opt

    def test_het_chip_with_custom_law(self):
        chip = HeterogeneousChip(
            UCore(name="u", mu=30.0, phi=0.8), perf_seq=power_law(0.3)
        )
        budget = Budget(area=19.0, power=10.0)
        point = optimize(chip, 0.5, budget)
        assert point.speedup > 1.0
        # The weaker serial law lowers low-f speedups vs Pollack.
        pollack_chip = HeterogeneousChip(
            UCore(name="u", mu=30.0, phi=0.8)
        )
        assert point.speedup < optimize(
            pollack_chip, 0.5, budget
        ).speedup
