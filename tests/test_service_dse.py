"""``POST /v1/dse``: submission, eager validation, DSE metrics."""

import asyncio
import json

import pytest

from repro.dse.front import points_from_payload
from repro.service.app import ModelService, ServiceConfig
from repro.service.schemas import parse_dse
from repro.errors import BadRequestError


def run(coro):
    return asyncio.run(coro)


def _body(**fields):
    return json.dumps(fields).encode()


async def _await_job(service, job_id, deadline_s=60.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + deadline_s
    while loop.time() < deadline:
        status, payload = await service.handle(
            "GET", f"/v1/jobs/{job_id}"
        )
        assert status == 200
        if payload["state"] in ("succeeded", "failed"):
            return payload
        await asyncio.sleep(0.02)
    raise AssertionError("job did not finish in time")


class TestParseDse:
    def test_builtin_scenario_defaults(self):
        spec = parse_dse({"scenario": "baseline"})
        assert spec.name == "dse-baseline"
        assert len(spec.dse_pareto) == 1
        assert not spec.dse_halving

    def test_sharded_pareto(self):
        spec = parse_dse({"scenario": "baseline", "shards": 3})
        assert [t.shard for t in spec.dse_pareto] == [0, 1, 2]
        assert all(t.shards == 3 for t in spec.dse_pareto)

    def test_halving_with_rungs(self):
        spec = parse_dse(
            {
                "scenario": "baseline",
                "mode": "halving",
                "rungs": [2, 4, 8],
            }
        )
        assert spec.dse_halving[0].rungs == (2, 4, 8)

    @pytest.mark.parametrize(
        "body, message",
        [
            ({"scenario": "warp-speed"}, "scenario"),
            ({"scenario": 42}, "'scenario'"),
            ({"scenario": {"name": "x", "alpha": 0}}, "alpha"),
            ({"scenario": {"name": "x", "chipz": []}}, "chipz"),
            ({"mode": "genetic"}, "'mode'"),
            ({"area_scale_grid": []}, "area_scale_grid"),
            ({"area_scale_grid": [1.0, "a"]}, "area_scale_grid"),
            ({"area_scale_grid": [2.0, 1.0]}, "area_scale_grid"),
            ({"rungs": [2, 4]}, "rungs"),
            ({"mode": "halving", "shards": 2}, "shards"),
            ({"mode": "halving", "rungs": [4, 2]}, "rungs"),
            ({"r_max": 0}, "r_max"),
            ({"unknown_knob": 1}, "unknown_knob"),
        ],
    )
    def test_eager_400_names_the_offending_field(
        self, body, message
    ):
        with pytest.raises(BadRequestError, match=message):
            parse_dse(body)

    def test_inline_scenario_payload(self):
        spec = parse_dse(
            {
                "scenario": {
                    "name": "inline",
                    "f_values": [0.99],
                    "chips": [
                        {"kind": "single", "device": "ASIC"}
                    ],
                },
            }
        )
        payload = json.loads(
            spec.dse_pareto[0].scenario_json
        )
        assert payload["name"] == "inline"


class TestEndpoint:
    @pytest.fixture()
    def service(self, tmp_path):
        svc = ModelService(
            ServiceConfig(store_dir=str(tmp_path))
        )
        yield svc
        svc.close()

    def test_submit_poll_and_front(self, service):
        async def main():
            status, payload = await service.handle(
                "POST",
                "/v1/dse",
                _body(
                    scenario={
                        "name": "smoke",
                        "f_values": [0.99],
                        "chips": [
                            {"kind": "single", "device": "ASIC"},
                            {"kind": "single", "device": "GTX480"},
                        ],
                    },
                    mode="halving",
                ),
            )
            assert status == 202
            final = await _await_job(service, payload["job_id"])
            assert final["state"] == "succeeded"
            (result,) = final["results"]
            assert result["kind"] == "dse-halving"
            front = points_from_payload(result)
            assert front
            assert all(p.scenario == "smoke" for p in front)

        run(main())

    def test_invalid_body_is_eager_400(self, service):
        async def main():
            status, payload = await service.handle(
                "POST",
                "/v1/dse",
                _body(scenario={"name": "x", "provider": "magic"}),
            )
            assert status == 400
            assert "provider" in payload["message"]
            # nothing was queued
            status, listing = await service.handle(
                "GET", "/v1/jobs"
            )
            assert listing["jobs"] == []

        run(main())

    def test_method_guard(self, service):
        async def main():
            status, payload = await service.handle("GET", "/v1/dse")
            assert status == 405

        run(main())

    def test_dse_metrics_families(self, service):
        async def main():
            await service.handle(
                "POST", "/v1/dse", _body(scenario="baseline")
            )
            await service.handle("POST", "/v1/dse", b"{}1")
            # wait for the job so the evaluation counter moves
            assert service.jobs.join(timeout=60)
            status, snap = await service.handle("GET", "/metrics")
            assert snap["dse"]["accepted"] == 1
            assert snap["dse"]["rejected"] == 1
            status, text = await service.handle(
                "GET", "/metrics?format=prom"
            )
            assert "repro_dse_requests_total" in text
            assert (
                'repro_dse_requests_total{mode="pareto",'
                'outcome="accepted"} 1' in text
            )
            assert "repro_dse_configs_evaluated_total" in text

        run(main())
