"""The regression sentinel (``repro.obs.regress``): direction
classes, bootstrap determinism, baseline selection over mixed
histories, and end-to-end verdicts including the injected-slowdown
acceptance scenario.
"""

import pytest

from repro.obs.history import HISTORY_SCHEMA_VERSION
from repro.obs.regress import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    TWO_SIDED,
    TWO_SIDED_NOISY,
    bootstrap_ci,
    check_rows,
    classify_metric,
    select_baseline,
)

FINGERPRINT = "f" * 12


def _row(run_id, metrics, benchmark="projection",
         fingerprint=FINGERPRINT, schema=HISTORY_SCHEMA_VERSION):
    return {
        "benchmark": benchmark,
        "envelope": {
            "run_id": run_id,
            "host_fingerprint": fingerprint,
            "schema_version": schema,
            "git_sha": "a" * 40,
            "timestamp_unix": float(run_id),
        },
        "metrics": dict(metrics),
    }


#: Five stable baseline runs of a time-like metric (~1.0 s) plus a
#: deterministic model output that must stay bit-identical.
BASELINE_TIMES = (1.00, 0.98, 1.02, 0.99, 1.01)


def _history(candidate_metrics, n_baseline=5):
    rows = [
        _row(i + 1, {
            "modes.batch.best_s": BASELINE_TIMES[i % len(BASELINE_TIMES)],
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        })
        for i in range(n_baseline)
    ]
    rows.append(_row(n_baseline + 1, candidate_metrics))
    return rows


class TestClassifyMetric:
    @pytest.mark.parametrize("name", [
        "modes.batch_serial.best_s",
        "phases.cold.p99_ms",
        "cold.mean_s",
        "wall_seconds",
        "request_latency",
    ])
    def test_time_like_is_lower(self, name):
        assert classify_metric(name) == LOWER_IS_BETTER

    @pytest.mark.parametrize("name", [
        "best_speedup",
        "speedup_vs_scalar.batch_serial",
        "batching.efficiency",
        "phases.cold.throughput_rps",
        "cache.hit_rate",
    ])
    def test_rate_like_is_higher(self, name):
        assert classify_metric(name) == HIGHER_IS_BETTER

    def test_rate_hint_beats_time_suffix(self):
        # "resume_speedup" would match "_s"-ish leaf rules badly;
        # the rate hint must win.
        assert classify_metric("resume_speedup") == HIGHER_IS_BETTER

    def test_model_outputs_are_two_sided(self):
        assert classify_metric("paper.f8.asic_speedup") == HIGHER_IS_BETTER
        assert classify_metric("paper.f8.energy_ratio") == TWO_SIDED

    def test_load_shape_counters_are_noisy_two_sided(self):
        for name in ("batching.dispatches", "batching.items",
                     "cache.hits", "cache.misses",
                     "batching.max_batch"):
            assert classify_metric(name) == TWO_SIDED_NOISY


class TestBootstrapCI:
    def test_deterministic_under_fixed_seed(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_interval_brackets_median(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95]
        lo, hi = bootstrap_ci(values, seed=7)
        assert lo <= 1.0 <= hi
        assert min(values) <= lo <= hi <= max(values)

    def test_single_value_is_point_interval(self):
        assert bootstrap_ci([2.5], seed=0) == (2.5, 2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=0)


class TestSelectBaseline:
    def test_needs_min_runs(self):
        rows = _history({"modes.batch.best_s": 1.0}, n_baseline=2)
        assert select_baseline(rows, rows[-1], min_runs=3) == []

    def test_other_fingerprints_excluded(self):
        rows = [
            _row(i + 1, {"m": 1.0},
                 fingerprint=FINGERPRINT if i % 2 else "other")
            for i in range(6)
        ]
        candidate = _row(7, {"m": 1.0})
        baseline = select_baseline(rows, candidate, min_runs=1)
        assert len(baseline) == 3
        assert all(
            r["envelope"]["host_fingerprint"] == FINGERPRINT
            for r in baseline
        )

    def test_old_schema_rows_excluded(self):
        rows = [
            _row(i + 1, {"m": 1.0},
                 schema=HISTORY_SCHEMA_VERSION if i % 2 else 0)
            for i in range(6)
        ]
        baseline = select_baseline(rows, _row(7, {"m": 1.0}), min_runs=1)
        assert len(baseline) == 3

    def test_only_strictly_older_runs(self):
        rows = [_row(i + 1, {"m": 1.0}) for i in range(5)]
        baseline = select_baseline(rows, rows[2], min_runs=1)
        assert [r["envelope"]["run_id"] for r in baseline] == [1, 2]

    def test_window_keeps_newest(self):
        rows = [_row(i + 1, {"m": 1.0}) for i in range(10)]
        baseline = select_baseline(rows, rows[-1], window=4, min_runs=1)
        assert [r["envelope"]["run_id"] for r in baseline] == [6, 7, 8, 9]


class TestCheckRows:
    def test_stable_history_passes(self):
        report = check_rows(_history({
            "modes.batch.best_s": 1.0,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        }))
        assert report.ok
        assert "PASS" in report.render()

    def test_injected_slowdown_fails_and_names_metric(self):
        # The acceptance scenario: a 30% slowdown on a time metric
        # must exit non-zero and name the offending metric.
        report = check_rows(_history({
            "modes.batch.best_s": 1.3,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        }))
        assert not report.ok
        assert [v.metric for v in report.failures] == [
            "modes.batch.best_s"
        ]
        rendered = report.render()
        assert "FAIL" in rendered
        assert "modes.batch.best_s" in rendered

    def test_speedup_drop_fails(self):
        report = check_rows(_history({
            "modes.batch.best_s": 1.0,
            "best_speedup": 4.0,
            "paper.f8.asic_speedup": 46.75,
        }))
        assert [v.metric for v in report.failures] == ["best_speedup"]
        assert report.failures[0].direction == HIGHER_IS_BETTER

    def test_faster_run_is_improved_not_failed(self):
        report = check_rows(_history({
            "modes.batch.best_s": 0.5,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        }))
        assert report.ok
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["modes.batch.best_s"] == "improved"

    def test_bit_drift_in_model_output_gates(self):
        # asic_speedup carries a rate hint, so use a genuinely
        # two-sided deterministic output: identical across baseline,
        # then off by 0.1% -- far outside epsilon.
        rows = [
            _row(i + 1, {"paper.f8.energy_ratio": 0.25})
            for i in range(5)
        ]
        rows.append(_row(6, {"paper.f8.energy_ratio": 0.25025}))
        report = check_rows(rows)
        assert [v.status for v in report.failures] == ["drift"]

    def test_noisy_counter_gets_tolerance_slack(self):
        # A batch count moving a few percent between concurrent runs
        # passes; only a step change drifts.
        rows = [
            _row(i + 1, {"batching.dispatches": 50.0 + i})
            for i in range(5)
        ]
        rows.append(_row(6, {"batching.dispatches": 56.0}))
        assert check_rows(rows).ok
        rows[-1] = _row(6, {"batching.dispatches": 90.0})
        report = check_rows(rows)
        assert [v.status for v in report.failures] == ["drift"]
        assert report.failures[0].direction == TWO_SIDED_NOISY

    def test_noise_within_tolerance_passes(self):
        report = check_rows(_history({
            "modes.batch.best_s": 1.05,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        }))
        assert report.ok

    def test_new_metric_is_no_baseline(self):
        rows = _history({
            "modes.batch.best_s": 1.0,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
            "brand.new_metric": 3.0,
        })
        report = check_rows(rows)
        assert report.ok
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["brand.new_metric"] == "no-baseline"

    def test_lost_metric_is_missing_but_warn_only(self):
        rows = _history({"modes.batch.best_s": 1.0})
        report = check_rows(rows)
        assert report.ok  # missing never gates
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["best_speedup"] == "missing"

    def test_short_history_is_all_no_baseline(self):
        report = check_rows(
            _history({"modes.batch.best_s": 1.3}, n_baseline=2)
        )
        assert report.ok
        assert {v.status for v in report.verdicts} == {"no-baseline"}

    def test_deterministic_report(self):
        rows = _history({
            "modes.batch.best_s": 1.3,
            "best_speedup": 7.5,
            "paper.f8.asic_speedup": 46.75,
        })
        first = check_rows(rows, seed=2010).payload()
        second = check_rows(rows, seed=2010).payload()
        assert first == second

    def test_benchmark_filter(self):
        rows = _history({"modes.batch.best_s": 1.3,
                         "best_speedup": 7.5,
                         "paper.f8.asic_speedup": 46.75})
        rows += [
            _row(100 + i, {"cold.best_s": 1.0}, benchmark="campaign")
            for i in range(4)
        ]
        report = check_rows(rows, benchmark="campaign")
        assert report.ok
        assert {v.benchmark for v in report.verdicts} == {"campaign"}

    def test_empty_history(self):
        report = check_rows([])
        assert report.ok
        assert "no candidate runs" in report.render()
