"""The materialized tensor store: build, verify, lookup, interpolate.

The contract under test is the serving fast path's foundation:

* exact grid hits are **bit-identical** to a live
  :func:`~repro.perf.batch.optimize_batch` call (every channel,
  including non-finite bounds);
* harmonic interpolation between bracketing ``f`` grid points stays
  within the documented :data:`~repro.perf.tensorstore.REL_ERROR_BOUND`
  and is refused (``miss``) whenever it could be wrong -- infeasible
  corners, brackets that disagree on the optimal ``r``, anything
  outside the materialized range (the store never extrapolates);
* integrity: a corrupted channel file or tampered manifest raises
  :class:`~repro.errors.TensorStoreError` at load/verify time, and the
  atomic-rename publish means a store without its manifest does not
  exist.
"""

import json
import math
import shutil

import pytest

from repro.errors import TensorStoreError
from repro.perf.batch import optimize_batch
from repro.perf.tensorstore import (
    MANIFEST_NAME,
    REL_ERROR_BOUND,
    TensorStore,
    build_tensor_store,
    materialize_spec,
)
from repro.itrs.scenarios import get_scenario
from repro.projection.designs import standard_designs
from repro.projection.engine import node_budget

#: Small but representative grids keep the module-scoped build fast.
F_GRID = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)
R_GRID = tuple(range(1, 17))
WORKLOADS = (("mmm", None), ("bs", None))


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tensors")
    build_tensor_store(
        directory,
        spec=materialize_spec(workloads=WORKLOADS, f_grid=F_GRID,
                              r_grid=R_GRID),
        executor="serial",
    )
    return directory


@pytest.fixture(scope="module")
def store(store_dir):
    return TensorStore.load(store_dir)


def _live_point(workload, design_label, node_nm, f, r_max):
    scenario = get_scenario("baseline")
    design = next(
        d for d in standard_designs(workload, None)
        if d.short_label == design_label
    )
    node = next(
        n for n in scenario.roadmap.nodes if n.node_nm == node_nm
    )
    budget = node_budget(
        node, workload, None, scenario,
        bandwidth_exempt=design.bandwidth_exempt,
    )
    [point] = optimize_batch(design.chip, f, [budget], r_max=r_max)
    return point


class TestBuildAndLoad:
    def test_manifest_is_checksummed_and_described(self, store):
        described = store.describe()
        assert described["groups"] == len(WORKLOADS)
        assert described["f_points"] == len(F_GRID)
        assert described["r_max"] == len(R_GRID)
        assert described["cells"] > 0
        assert store.verify()["status"] == "ok"

    def test_missing_manifest_means_no_store(self, tmp_path):
        with pytest.raises(TensorStoreError, match="no tensor store"):
            TensorStore.load(tmp_path)

    def test_corrupted_channel_fails_checksum(self, store_dir,
                                              tmp_path):
        copy = tmp_path / "corrupt"
        shutil.copytree(store_dir, copy)
        victim = next(copy.glob("*speedup*.f64"))
        blob = bytearray(victim.read_bytes())
        blob[64] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(TensorStoreError, match="checksum"):
            TensorStore.load(copy)

    def test_truncated_channel_fails_on_size(self, store_dir,
                                             tmp_path):
        copy = tmp_path / "truncated"
        shutil.copytree(store_dir, copy)
        victim = next(copy.glob("*.f64"))
        victim.write_bytes(victim.read_bytes()[:-8])
        # Size is checked even with verify=False -- cheap and load-
        # bearing, since memmap would otherwise fail or alias.
        with pytest.raises(TensorStoreError, match="bytes"):
            TensorStore.load(copy, verify=False)

    def test_tampered_manifest_fails_self_checksum(self, store_dir,
                                                   tmp_path):
        copy = tmp_path / "tampered"
        shutil.copytree(store_dir, copy)
        path = copy / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["f_grid"][0] = 0.001
        path.write_text(json.dumps(manifest))
        with pytest.raises(TensorStoreError, match="self-checksum"):
            TensorStore.load(copy)

    def test_foreign_model_version_rejected(self, store_dir, tmp_path):
        from repro.campaign.spec import canonical_json, sha256_text

        copy = tmp_path / "foreign"
        shutil.copytree(store_dir, copy)
        path = copy / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["envelope"]["model_version"] = "0.0.1"
        body = {k: v for k, v in manifest.items() if k != "checksum"}
        manifest["checksum"] = sha256_text(canonical_json(body))
        path.write_text(json.dumps(manifest))
        with pytest.raises(TensorStoreError, match="model version"):
            TensorStore.load(copy)

    def test_empty_workload_set_rejected(self, tmp_path):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="empty campaign"):
            materialize_spec(workloads=())


class TestExactLookup:
    @pytest.mark.parametrize("workload", ("mmm", "bs"))
    @pytest.mark.parametrize("f", F_GRID)
    def test_hits_are_bit_identical_to_live(self, store, workload, f):
        scenario = get_scenario("baseline")
        for design in standard_designs(workload, None):
            for node in scenario.roadmap.nodes:
                for r_max in (1, 7, 16):
                    cell = store.lookup(
                        "baseline", workload, None,
                        design.short_label, node.node_nm, f, r_max,
                    )
                    assert cell.outcome == "hit"
                    live = _live_point(
                        workload, design.short_label, node.node_nm,
                        f, r_max,
                    )
                    if live is None:
                        assert not cell.feasible
                        continue
                    assert cell.feasible
                    assert cell.values["r"] == live.r
                    assert cell.values["n"] == live.n
                    assert cell.values["speedup"] == live.speedup
                    assert cell.values["n_area"] == live.bounds.n_area
                    assert (
                        cell.values["n_power"] == live.bounds.n_power
                    )
                    assert (
                        cell.values["n_bandwidth"]
                        == live.bounds.n_bandwidth
                    )

    def test_bandwidth_exempt_inf_survives_round_trip(self, store):
        cell = store.lookup(
            "baseline", "mmm", None, "ASIC", 40, 0.99, 16
        )
        assert cell.outcome == "hit" and cell.feasible
        assert math.isinf(cell.values["n_bandwidth"])

    def test_unknown_names_miss(self, store):
        assert store.lookup(
            "baseline", "fft", 1024, "ASIC", 40, 0.5, 16
        ).outcome == "miss"  # workload group not materialized
        assert store.lookup(
            "baseline", "mmm", None, "NotADesign", 40, 0.5, 16
        ).outcome == "miss"
        assert store.lookup(
            "baseline", "mmm", None, "ASIC", 13, 0.5, 16
        ).outcome == "miss"  # node not on the roadmap
        assert store.lookup(
            "dark-silicon", "mmm", None, "ASIC", 40, 0.5, 16
        ).outcome == "miss"  # scenario not materialized

    def test_r_max_outside_grid_misses(self, store):
        assert store.lookup(
            "baseline", "mmm", None, "ASIC", 40, 0.5, 0
        ).outcome == "miss"
        assert store.lookup(
            "baseline", "mmm", None, "ASIC", 40, 0.5, 17
        ).outcome == "miss"


class TestInterpolation:
    def test_boundary_f_values_are_exact_hits(self, store):
        for f in (F_GRID[0], F_GRID[-1]):
            cell = store.lookup(
                "baseline", "mmm", None, "SymCMP", 40, f, 16
            )
            assert cell.outcome == "hit"
            assert cell.interpolation is None

    @pytest.mark.parametrize("f", (0.3, 0.62, 0.93, 0.995))
    @pytest.mark.parametrize("r_max", (1, 16))
    def test_interp_within_documented_bound(self, store, f, r_max):
        """Off-grid f: when the store answers, r/n/bounds are exact
        and the speedup is within REL_ERROR_BOUND of live compute."""
        answered = 0
        for design in ("SymCMP", "GTX480", "ASIC"):
            cell = store.lookup(
                "baseline", "mmm", None, design, 22, f, r_max
            )
            if cell.outcome == "miss":
                # Legal refusal (bracket disagreement/infeasibility);
                # the serving layer falls back to live compute.
                assert cell.reason
                continue
            assert cell.outcome == "interp"
            answered += 1
            live = _live_point("mmm", design, 22, f, r_max)
            assert live is not None
            assert cell.values["r"] == live.r
            assert cell.values["n"] == live.n
            assert cell.values["n_area"] == live.bounds.n_area
            rel = abs(cell.values["speedup"] - live.speedup) / (
                live.speedup
            )
            assert rel <= REL_ERROR_BOUND
            interp = cell.interpolation
            assert interp["kind"] == "harmonic-f"
            f0, f1 = interp["f_bracket"]
            assert f0 < f < f1
            assert interp["rel_error_bound"] == REL_ERROR_BOUND
        assert answered, f"every lookup refused at f={f}"

    def test_disagreeing_brackets_refuse(self, store):
        """Somewhere in (0, 1) the optimal r switches between grid
        points; the store must refuse rather than blend regimes."""
        reasons = set()
        for design in ("SymCMP", "AsymCMP", "GTX480"):
            for f in (0.3, 0.62, 0.8, 0.93):
                cell = store.lookup(
                    "baseline", "mmm", None, design, 40, f, 16
                )
                if cell.outcome == "miss":
                    reasons.add(cell.reason)
        assert "bracketing grid points disagree on r" in reasons

    def test_never_extrapolates_outside_hull(self, tmp_path):
        """A store materialized over [0.4, 0.6] refuses f outside it
        -- fall back, never extrapolate."""
        directory = tmp_path / "narrow"
        build_tensor_store(
            directory,
            spec=materialize_spec(
                workloads=(("mmm", None),),
                f_grid=(0.4, 0.5, 0.6),
                r_grid=R_GRID,
            ),
            executor="serial",
        )
        narrow = TensorStore.load(directory)
        for f in (0.1, 0.39, 0.61, 0.99):
            cell = narrow.lookup(
                "baseline", "mmm", None, "SymCMP", 40, f, 16
            )
            assert cell.outcome == "miss"
            assert cell.reason == "f outside materialized range"
        assert narrow.lookup(
            "baseline", "mmm", None, "SymCMP", 40, 0.45, 16
        ).outcome == "interp"

    def test_non_finite_f_refused(self, store):
        for f in (float("nan"), float("inf"), float("-inf")):
            cell = store.lookup(
                "baseline", "mmm", None, "ASIC", 40, f, 16
            )
            assert cell.outcome == "miss"
            assert cell.reason == "non-finite f"
