"""Tests for the peak-throughput models and rooflines."""

import pytest

from repro.archmodels.peaks import (
    DEVICE_PEAKS,
    ComputePeak,
    efficiency_table,
    measured_efficiency,
    peak_gflops,
    sanity_check_device,
)
from repro.archmodels.roofline import render_roofline, roofline_points
from repro.errors import CalibrationError, ModelError


class TestPeaks:
    def test_i7_sse_peak(self):
        # 4 cores x 4-wide SSE x (add + mul) x 3.2 GHz = 102.4 GFLOP/s.
        assert peak_gflops("Core i7-960") == pytest.approx(102.4)

    def test_gtx285_peak(self):
        # 30 SMs x 8 lanes x 3 flops x 1.476 GHz ~ 1063 GFLOP/s.
        assert peak_gflops("GTX285") == pytest.approx(1062.7, rel=1e-3)

    def test_gtx480_peak(self):
        assert peak_gflops("GTX480") == pytest.approx(1344.0)

    def test_unknown_device(self):
        with pytest.raises(CalibrationError):
            peak_gflops("LX760")  # FPGA peak is design-dependent

    def test_validation(self):
        with pytest.raises(ModelError):
            ComputePeak(device="x", units=0, lanes=4,
                        flops_per_lane_cycle=2.0, clock_ghz=1.0)


class TestEfficiency:
    def test_no_measurement_exceeds_peak(self):
        for device in DEVICE_PEAKS:
            sanity_check_device(device)

    def test_mkl_near_peak(self):
        # MKL SGEMM on Nehalem famously runs >90% of SSE peak.
        assert measured_efficiency("Core i7-960", "mmm") > 0.90

    def test_cublas_era_efficiency(self):
        # 2009-2010 CUBLAS SGEMM: 40-60% of theoretical GPU peak.
        for device in ("GTX285", "GTX480", "R5870"):
            eff = measured_efficiency(device, "mmm")
            assert 0.3 < eff < 0.7, (device, eff)

    def test_table_covers_all_modelled_devices(self):
        table = efficiency_table()
        assert set(table) == set(DEVICE_PEAKS)
        assert all(0 < v <= 1 for v in table.values())

    def test_non_flop_workload_rejected(self):
        with pytest.raises(CalibrationError):
            measured_efficiency("GTX285", "bs")


class TestRoofline:
    def test_mmm_compute_bound_everywhere(self):
        # Block-128 MMM clears every modelled ridge point.
        for device in DEVICE_PEAKS:
            points = {
                p.workload: p for p in roofline_points(device)
            }
            assert points["mmm"].compute_bound, device

    def test_fft_bandwidth_bound_on_gpus(self):
        # At 3.1 flops/byte, FFT-1024 sits under the slanted roof on
        # every GPU (their ridges are at 6.7-17.7 flops/byte).
        for device in ("GTX285", "GTX480", "R5870"):
            points = {
                p.workload: p for p in roofline_points(device)
            }
            assert not points["fft"].compute_bound, device

    def test_attainable_is_min_of_roofs(self):
        from repro.devices.catalog import get_device

        points = {
            p.workload: p for p in roofline_points("GTX285")
        }
        fft = points["fft"]
        bw = get_device("GTX285").peak_bandwidth_gbps
        assert fft.attainable_gflops == pytest.approx(
            fft.intensity_flops_per_byte * bw
        )

    def test_measured_below_attainable(self):
        for device in DEVICE_PEAKS:
            for point in roofline_points(device):
                if point.measured_gflops is None:
                    continue
                assert point.measured_gflops <= (
                    point.attainable_gflops * (1 + 1e-9)
                ), (device, point.workload)

    def test_render(self):
        text = render_roofline("GTX480")
        assert "ridge" in text
        assert "compute-bound" in text
        assert "bandwidth-bound" in text

    def test_no_bandwidth_device_rejected(self):
        with pytest.raises(CalibrationError):
            roofline_points("LX760")

    def test_size_override(self):
        # Tiny MMM (N=16 < block) drops the intensity to N/4.
        points = {
            p.workload: p
            for p in roofline_points("GTX285", sizes={"mmm": 16})
        }
        assert points["mmm"].intensity_flops_per_byte == pytest.approx(
            4.0
        )
