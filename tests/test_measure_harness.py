"""Tests for the end-to-end measurement harness."""

import pytest

from repro.devices.measurements import TABLE4, TABLE5_PUBLISHED
from repro.errors import CalibrationError
from repro.measure.harness import MeasurementHarness


@pytest.fixture(scope="module")
def harness():
    return MeasurementHarness()


class TestTable4Reproduction:
    def test_row_count(self, harness):
        rows = harness.table4()
        expected = sum(len(v) for v in TABLE4.values())
        assert len(rows) == expected

    def test_all_rows_match_published(self, harness):
        published = harness.table4_published()
        for row in harness.table4():
            thr, x, e = published[row.workload][row.device]
            assert row.throughput == pytest.approx(thr)
            assert row.per_mm2 == pytest.approx(x, rel=1e-6)
            assert row.per_joule == pytest.approx(e, rel=1e-6)

    def test_r5870_wins_absolute_mmm(self, harness):
        # "For MMM, the R5870 GPU performed the best, achieving nearly
        # 1.5 TeraFLOPs."
        mmm = [r for r in harness.table4() if r.workload == "mmm"]
        best = max(mmm, key=lambda r: r.throughput)
        assert best.device == "R5870"
        assert best.throughput == pytest.approx(1491.0)

    def test_asic_wins_normalised_columns(self, harness):
        for workload in ("mmm", "bs"):
            rows = [r for r in harness.table4() if r.workload == workload]
            assert max(rows, key=lambda r: r.per_mm2).device == "ASIC"
            assert max(rows, key=lambda r: r.per_joule).device == "ASIC"


class TestFFTSeries:
    def test_series_devices(self, harness):
        series = harness.fft_all_series()
        assert set(series) == {
            "Core i7-960", "LX760", "GTX285", "GTX480", "ASIC",
        }

    def test_asic_100x_per_area_over_flexible(self, harness):
        # "the ASIC FFT cores achieve nearly 100X improvement over the
        # flexible cores (FPGA, GPU), and nearly 1000X over the Core i7"
        series = harness.fft_all_series()
        at_1024 = {
            dev: next(p for p in pts if p.log2_n == 10)
            for dev, pts in series.items()
        }
        asic = at_1024["ASIC"].per_mm2
        assert asic / at_1024["GTX285"].per_mm2 > 50
        assert asic / at_1024["Core i7-960"].per_mm2 > 500

    def test_asic_energy_efficiency_order(self, harness):
        # Figure 4 top: ASIC ~2 orders over the i7, ~10x over GPUs/FPGA.
        series = harness.fft_all_series()
        at_1024 = {
            dev: next(p for p in pts if p.log2_n == 10)
            for dev, pts in series.items()
        }
        asic = at_1024["ASIC"].per_joule
        assert asic / at_1024["Core i7-960"].per_joule > 50
        assert asic / at_1024["GTX285"].per_joule > 5


class TestDerivationLoop:
    @pytest.mark.parametrize("device,workload,size,key", [
        ("ASIC", "mmm", None, "mmm"),
        ("GTX285", "bs", None, "bs"),
        ("LX760", "fft", 1024, "fft-1024"),
        ("GTX480", "fft", 64, "fft-64"),
    ])
    def test_simulated_runs_reproduce_table5(
        self, harness, device, workload, size, key
    ):
        ucore = harness.derive_ucore_from_runs(device, workload, size)
        phi_pub, mu_pub = TABLE5_PUBLISHED[device][key]
        assert ucore.mu == pytest.approx(mu_pub, rel=0.02)
        assert ucore.phi == pytest.approx(phi_pub, rel=0.02)


class TestValidation:
    def test_unknown_workload_devices(self, harness):
        with pytest.raises(CalibrationError):
            harness.devices_for("spmv")

    def test_observe_needs_size_for_fft(self, harness):
        with pytest.raises(CalibrationError):
            harness.observe("GTX285", "fft")

    def test_kernel_execution_mode(self):
        h = MeasurementHarness(execute_kernels=True)
        run = h.observe("Core i7-960", "fft", 64)
        assert run.kernel.output is not None
