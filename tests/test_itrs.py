"""Tests for the ITRS roadmap (Table 6, Figure 5) and scenarios."""

import pytest

from repro.errors import ModelError
from repro.itrs.roadmap import ITRS_2009, NodeParams, Roadmap, figure5_series
from repro.itrs.scenarios import (
    BASELINE,
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_names,
)


class TestTable6:
    def test_five_nodes(self):
        assert ITRS_2009.node_labels() == [
            "40nm", "32nm", "22nm", "16nm", "11nm",
        ]

    def test_years(self):
        assert [n.year for n in ITRS_2009.nodes] == [
            2011, 2013, 2016, 2019, 2022,
        ]

    def test_constant_budgets(self):
        for node in ITRS_2009.nodes:
            assert node.core_area_budget_mm2 == 432.0
            assert node.core_power_budget_w == 100.0

    def test_bce_capacity_column(self):
        assert [n.max_area_bce for n in ITRS_2009.nodes] == [
            19.0, 37.0, 75.0, 149.0, 298.0,
        ]

    def test_rel_power_column(self):
        assert [n.rel_power for n in ITRS_2009.nodes] == [
            1.0, 0.75, 0.5, 0.36, 0.25,
        ]

    def test_bandwidth_column_is_180_times_rel(self):
        for node in ITRS_2009.nodes:
            assert node.bandwidth_gbps == pytest.approx(
                180.0 * node.rel_bandwidth
            )

    def test_bandwidth_values(self):
        assert [n.bandwidth_gbps for n in ITRS_2009.nodes] == [
            180.0, 198.0, 234.0, 234.0, 252.0,
        ]

    def test_node_lookup(self):
        assert ITRS_2009.node(22).year == 2016
        with pytest.raises(ModelError):
            ITRS_2009.node(28)

    def test_node_validation(self):
        with pytest.raises(ModelError):
            NodeParams(2011, 40, -1.0, 100.0, 180.0, 19.0, 1.0, 1.0)

    def test_paper_headline_trends(self):
        # Power per transistor falls only ~4-5x while density rises
        # ~16x; bandwidth grows < 1.5x.
        first, last = ITRS_2009.nodes[0], ITRS_2009.nodes[-1]
        assert last.max_area_bce / first.max_area_bce > 15
        assert first.rel_power / last.rel_power <= 5
        assert last.rel_bandwidth < 1.5


class TestOverrides:
    def test_bandwidth_override_keeps_growth(self):
        roadmap = ITRS_2009.with_overrides(bandwidth_gbps_at_start=1000.0)
        assert [n.bandwidth_gbps for n in roadmap.nodes] == [
            pytest.approx(1000.0 * rel)
            for rel in (1.0, 1.1, 1.3, 1.3, 1.4)
        ]

    def test_power_override(self):
        roadmap = ITRS_2009.with_overrides(power_budget_w=10.0)
        assert all(
            n.core_power_budget_w == 10.0 for n in roadmap.nodes
        )

    def test_area_factor_scales_bce(self):
        roadmap = ITRS_2009.with_overrides(area_factor=0.5)
        assert roadmap.nodes[0].max_area_bce == pytest.approx(9.5)
        assert roadmap.nodes[0].core_area_budget_mm2 == pytest.approx(216.0)

    def test_original_untouched(self):
        ITRS_2009.with_overrides(power_budget_w=1.0)
        assert ITRS_2009.nodes[0].core_power_budget_w == 100.0

    def test_validation(self):
        with pytest.raises(ModelError):
            ITRS_2009.with_overrides(area_factor=0.0)
        with pytest.raises(ModelError):
            ITRS_2009.with_overrides(bandwidth_gbps_at_start=-5.0)
        with pytest.raises(ModelError):
            Roadmap(())


class TestFigure5:
    def test_series_present(self):
        series = figure5_series()
        assert set(series) == {
            "pins", "vdd", "gate_capacitance", "combined_power",
        }

    def test_normalised_to_2011(self):
        series = figure5_series()
        for name, values in series.items():
            assert values[2011] == pytest.approx(1.0), name

    def test_combined_power_identity(self):
        # combined = vdd^2 * cgate, by construction and physics.
        series = figure5_series()
        for year in series["vdd"]:
            assert series["combined_power"][year] == pytest.approx(
                series["vdd"][year] ** 2
                * series["gate_capacitance"][year]
            )

    def test_combined_matches_table6_rel_power(self):
        series = figure5_series()
        for node in ITRS_2009.nodes:
            assert series["combined_power"][node.year] == pytest.approx(
                node.rel_power, rel=1e-3
            )

    def test_pins_grow_slowly(self):
        pins = figure5_series()["pins"]
        values = [pins[y] for y in sorted(pins)]
        assert values == sorted(values)
        assert values[-1] < 1.5

    def test_vdd_and_cgate_decline(self):
        series = figure5_series()
        for name in ("vdd", "gate_capacitance", "combined_power"):
            values = [series[name][y] for y in sorted(series[name])]
            assert values == sorted(values, reverse=True), name


class TestScenarios:
    def test_registry_names(self):
        assert scenario_names() == [
            "baseline", "low-bandwidth", "high-bandwidth", "half-area",
            "double-power", "low-power", "high-alpha",
        ]

    def test_baseline_is_table6(self):
        assert BASELINE.roadmap.nodes == ITRS_2009.nodes
        assert BASELINE.alpha == 1.75

    def test_scenario1_low_bandwidth(self):
        s = get_scenario("low-bandwidth")
        assert s.roadmap.nodes[0].bandwidth_gbps == pytest.approx(90.0)

    def test_scenario2_high_bandwidth(self):
        s = get_scenario("high-bandwidth")
        assert s.roadmap.nodes[0].bandwidth_gbps == pytest.approx(1000.0)

    def test_scenario3_half_area(self):
        s = get_scenario("half-area")
        assert s.roadmap.nodes[0].core_area_budget_mm2 == pytest.approx(
            216.0
        )

    def test_scenarios_4_and_5_power(self):
        assert get_scenario(
            "double-power"
        ).roadmap.nodes[0].core_power_budget_w == 200.0
        assert get_scenario(
            "low-power"
        ).roadmap.nodes[0].core_power_budget_w == 10.0

    def test_scenario6_alpha(self):
        s = get_scenario("high-alpha")
        assert s.alpha == 2.25
        assert s.roadmap.nodes == ITRS_2009.nodes

    def test_unknown_scenario(self):
        with pytest.raises(ModelError):
            get_scenario("free-lunch")

    def test_scenario_validation(self):
        with pytest.raises(ModelError):
            Scenario(name="bad", description="", alpha=0.5)

    def test_all_scenarios_registered(self):
        assert len(SCENARIOS) == 7
