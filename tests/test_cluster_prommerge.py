"""Cross-worker Prometheus text merge (repro.cluster.prommerge)."""

from repro.cluster.prommerge import label_samples, merge_expositions
from repro.obs.metrics import MetricsRegistry, validate_prometheus

W1 = """\
# HELP repro_requests_total Requests served
# TYPE repro_requests_total counter
repro_requests_total{path="/v1/speedup",status="200"} 7
repro_requests_total 3
# HELP repro_latency_seconds Request latency
# TYPE repro_latency_seconds histogram
repro_latency_seconds_count 10
repro_latency_seconds_sum 1.25
repro_latency_seconds_bucket{le="+Inf"} 10
"""

W2 = """\
# HELP repro_requests_total Requests served
# TYPE repro_requests_total counter
repro_requests_total{path="/v1/speedup",status="200"} 2
"""


class TestLabelSamples:
    def test_injects_worker_as_first_label(self):
        _, samples = label_samples(W1, "w1")
        lines = samples["repro_requests_total"]
        assert (
            'repro_requests_total{worker="w1",path="/v1/speedup",'
            'status="200"} 7' in lines
        )
        assert 'repro_requests_total{worker="w1"} 3' in lines

    def test_histogram_suffixes_attach_to_base_family(self):
        families, samples = label_samples(W1, "w1")
        assert "repro_latency_seconds" in families
        assert "repro_latency_seconds_count" not in families
        assert len(samples["repro_latency_seconds"]) == 3

    def test_garbage_lines_are_dropped(self):
        text = "!!! not a sample\n# EOF\nrepro_ok 1\n"
        families, samples = label_samples(text, "w1")
        assert list(samples) == ["repro_ok"]
        assert samples["repro_ok"] == ['repro_ok{worker="w1"} 1']
        assert "untyped" in families["repro_ok"][1]


class TestMerge:
    def test_one_header_per_family(self):
        merged = merge_expositions({"w1": W1, "w2": W2})
        assert (
            merged.count("# TYPE repro_requests_total counter") == 1
        )
        assert merged.count("# HELP repro_requests_total") == 1

    def test_every_worker_series_survives(self):
        merged = merge_expositions({"w1": W1, "w2": W2})
        assert 'worker="w1"' in merged and 'worker="w2"' in merged
        assert (
            'repro_requests_total{worker="w2",path="/v1/speedup",'
            'status="200"} 2' in merged
        )

    def test_merge_is_deterministic(self):
        forward = merge_expositions({"w1": W1, "w2": W2})
        reverse = merge_expositions({"w2": W2, "w1": W1})
        assert forward == reverse

    def test_empty_input(self):
        assert merge_expositions({}) == ""

    def test_merged_real_registries_validate(self):
        """The end-to-end property CI relies on: two real registries
        merged under worker labels still pass validate_prometheus."""
        expositions = {}
        for worker in ("w1", "w2"):
            registry = MetricsRegistry()
            registry.counter(
                "repro_cluster_requests_total", "Routed requests"
            ).inc(worker=worker, outcome="ok")
            registry.histogram(
                "repro_request_seconds", "Latency", window=16
            ).observe(0.01)
            expositions[worker] = registry.render_prometheus()
        merged = merge_expositions(expositions)
        validate_prometheus(
            merged, required=("repro_cluster_requests_total",)
        )
