"""Tests for inverse model queries (required_f / crossover / bandwidth)."""

import math

import pytest

from repro.core.chip import (
    AsymmetricOffloadCMP,
    HeterogeneousChip,
    SymmetricCMP,
)
from repro.core.constraints import Budget
from repro.core.inverse import (
    crossover_f,
    required_bandwidth,
    required_f,
)
from repro.core.optimizer import optimize
from repro.core.ucore import UCore
from repro.errors import ModelError


@pytest.fixture
def asic_chip():
    return HeterogeneousChip(UCore(name="asic", mu=27.4, phi=0.79))


@pytest.fixture
def budget():
    return Budget(area=75.0, power=20.0, bandwidth=110.0)


class TestRequiredF:
    def test_solution_achieves_target(self, asic_chip, budget):
        f = required_f(asic_chip, 50.0, budget)
        assert optimize(asic_chip, f, budget).speedup == pytest.approx(
            50.0, rel=1e-6
        )

    def test_slightly_less_f_misses_target(self, asic_chip, budget):
        f = required_f(asic_chip, 50.0, budget)
        assert optimize(
            asic_chip, max(f - 1e-3, 0.0), budget
        ).speedup < 50.0

    def test_trivial_target(self, asic_chip, budget):
        assert required_f(asic_chip, 1.0, budget) == 0.0

    def test_paper_conclusion1_magnitude(self, asic_chip, budget):
        # Getting a 5x edge over the f=0.9 CMP out of U-cores needs
        # parallelism well above 0.9 (conclusion 1, inverted).
        cmp_best = optimize(AsymmetricOffloadCMP(), 0.9, budget).speedup
        f = required_f(asic_chip, 5 * cmp_best, budget)
        assert f > 0.9

    def test_unreachable_target(self, asic_chip, budget):
        with pytest.raises(ModelError, match="cannot reach"):
            required_f(asic_chip, 1e9, budget)

    def test_bad_target(self, asic_chip, budget):
        with pytest.raises(ModelError):
            required_f(asic_chip, 0.0, budget)

    def test_monotone_in_target(self, asic_chip, budget):
        f_small = required_f(asic_chip, 10.0, budget)
        f_large = required_f(asic_chip, 60.0, budget)
        assert f_small < f_large


class TestCrossoverF:
    def test_challenger_leads_at_solution(self, asic_chip, budget):
        incumbent = AsymmetricOffloadCMP()
        f = crossover_f(asic_chip, incumbent, budget, advantage=2.0)
        assert 0 < f < 1
        lead = (
            optimize(asic_chip, f, budget).speedup
            / optimize(incumbent, f, budget).speedup
        )
        assert lead == pytest.approx(2.0, rel=1e-3)

    def test_self_crossover_at_zero(self, asic_chip, budget):
        assert crossover_f(asic_chip, asic_chip, budget) == 0.0

    def test_higher_advantage_needs_more_f(self, asic_chip, budget):
        incumbent = SymmetricCMP()
        f1 = crossover_f(asic_chip, incumbent, budget, advantage=1.5)
        f2 = crossover_f(asic_chip, incumbent, budget, advantage=3.0)
        assert f1 < f2

    def test_never_leads(self, budget):
        slow = HeterogeneousChip(UCore(name="slow", mu=0.2, phi=1.0))
        with pytest.raises(ModelError, match="never leads"):
            crossover_f(slow, AsymmetricOffloadCMP(), budget,
                        advantage=2.0)

    def test_separate_budgets(self, asic_chip, budget):
        # A bandwidth-exempt challenger crosses earlier.
        incumbent = AsymmetricOffloadCMP()
        f_shared = crossover_f(
            asic_chip, incumbent, budget, advantage=3.0
        )
        f_exempt = crossover_f(
            asic_chip,
            incumbent,
            budget,
            advantage=3.0,
            challenger_budget=budget.without_bandwidth(),
        )
        assert f_exempt <= f_shared

    def test_bad_advantage(self, asic_chip, budget):
        with pytest.raises(ModelError):
            crossover_f(asic_chip, asic_chip, budget, advantage=0.0)


class TestRequiredBandwidth:
    def test_solution_achieves_target(self, asic_chip):
        tight = Budget(area=75.0, power=20.0, bandwidth=10.0)
        target = 100.0
        needed = required_bandwidth(asic_chip, 0.99, target, tight)
        assert needed > tight.bandwidth
        scaled = tight.scaled(bandwidth=needed / tight.bandwidth)
        assert optimize(
            asic_chip, 0.99, scaled
        ).speedup == pytest.approx(target, rel=1e-4)

    def test_already_sufficient(self, asic_chip, budget):
        needed = required_bandwidth(asic_chip, 0.99, 2.0, budget)
        assert needed < budget.bandwidth

    def test_power_wall_unreachable(self, asic_chip):
        # Beyond the power-bound plateau no bandwidth helps.
        tight = Budget(area=75.0, power=5.0, bandwidth=10.0)
        ceiling = optimize(
            asic_chip, 0.99, tight.scaled(bandwidth=1e6)
        ).speedup
        with pytest.raises(ModelError, match="power or area binds"):
            required_bandwidth(asic_chip, 0.99, 2 * ceiling, tight)

    def test_infinite_bandwidth_rejected(self, asic_chip):
        with pytest.raises(ModelError):
            required_bandwidth(
                asic_chip, 0.99, 10.0, Budget(area=75.0, power=20.0)
            )

    def test_monotone_in_target(self, asic_chip):
        tight = Budget(area=75.0, power=20.0, bandwidth=10.0)
        b1 = required_bandwidth(asic_chip, 0.99, 30.0, tight)
        b2 = required_bandwidth(asic_chip, 0.99, 90.0, tight)
        assert b1 < b2
        assert math.isfinite(b2)
