"""``repro-hetsim dse``: parser wiring, exit codes, output shapes."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dse.dsl import builtin_scenario_names


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["dse", "run"])
        assert args.action == "run"
        assert args.scenario == "baseline"
        assert args.scenario_file is None
        assert args.mode == "exhaustive"
        assert args.area_scale == [1.0]
        assert args.power_scale == [1.0]
        assert args.rungs is None
        assert args.r_max == 16
        assert args.as_json is False

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "mutate"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dse", "run", "--mode", "genetic"]
            )

    def test_grid_and_rung_flags(self):
        args = build_parser().parse_args(
            [
                "dse", "pareto",
                "--mode", "halving",
                "--area-scale", "0.5", "1.0",
                "--power-scale", "0.5", "1.0", "2.0",
                "--rungs", "2", "4", "8",
                "--r-max", "8",
            ]
        )
        assert args.area_scale == [0.5, 1.0]
        assert args.power_scale == [0.5, 1.0, 2.0]
        assert args.rungs == [2, 4, 8]
        assert args.r_max == 8


class TestListScenarios:
    def test_table_lists_every_builtin(self, capsys):
        assert main(["dse", "list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in builtin_scenario_names():
            assert name in out

    def test_json_output_parses(self, capsys):
        assert main(["dse", "list-scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in payload]
        assert names == list(builtin_scenario_names())
        assert all(s["source"] == "builtin" for s in payload)

    def test_json_includes_directory_scenarios(
        self, capsys, tmp_path
    ):
        (tmp_path / "mine.json").write_text(
            json.dumps({"name": "mine", "f_values": [0.99]})
        )
        assert main(
            ["dse", "list-scenarios", "--dir", str(tmp_path),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {s["name"]: s for s in payload}
        assert by_name["mine"]["source"] != "builtin"


class TestRunAndPareto:
    def test_run_prints_front_and_stats(self, capsys):
        assert main(
            ["dse", "run", "--scenario", "baseline",
             "--limit", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "chip" in out and "speedup" in out
        assert "configs" in out

    def test_pareto_json_is_a_front_payload(self, capsys):
        assert main(
            ["dse", "pareto", "--mode", "halving", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "baseline"
        assert payload["mode"] == "halving"
        assert payload["size"] == len(payload["points"])

    def test_scenario_file_wins_over_name(self, capsys, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps({
            "name": "tiny",
            "f_values": [0.99],
            "chips": [{"kind": "single", "device": "ASIC"}],
        }))
        assert main(
            ["dse", "pareto", "--scenario-file", str(path),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "tiny"


class TestErrors:
    def test_unknown_scenario_exits_2(self, capsys):
        assert main(
            ["dse", "run", "--scenario", "warp-speed"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "warp-speed" in err

    def test_missing_scenario_file_exits_2(self, capsys, tmp_path):
        assert main(
            ["dse", "run", "--scenario-file",
             str(tmp_path / "nope.json")]
        ) == 2
        assert "nope.json" in capsys.readouterr().err

    def test_rungs_require_halving_mode(self, capsys):
        assert main(["dse", "run", "--rungs", "2", "4"]) == 2
        assert "halving" in capsys.readouterr().err
