"""Tests for the units helpers and the exception hierarchy."""

import pytest

from repro import errors, units


class TestUnits:
    def test_prefixes(self):
        assert units.GIGA == 1e9
        assert units.MEGA == 1e6
        assert units.TERA == 1e12

    def test_gflops(self):
        assert units.gflops(5e9, 1.0) == pytest.approx(5.0)
        assert units.gflops(1e9, 0.5) == pytest.approx(2.0)

    def test_gbytes_per_sec(self):
        assert units.gbytes_per_sec(32e9, 2.0) == pytest.approx(16.0)

    def test_seconds_per_op(self):
        assert units.seconds_per_op(4.0) == pytest.approx(0.25)

    @pytest.mark.parametrize("func,args", [
        (units.gflops, (1.0, 0.0)),
        (units.gbytes_per_sec, (1.0, -1.0)),
        (units.seconds_per_op, (0.0,)),
    ])
    def test_validation(self, func, args):
        with pytest.raises(errors.ModelError):
            func(*args)

    def test_known_nodes(self):
        assert units.KNOWN_NODES_NM == (65, 55, 45, 40, 32, 22, 16, 11)
        assert set(units.RELATIVE_POWER_PER_TRANSISTOR) == set(
            units.KNOWN_NODES_NM
        )

    def test_area_scale_validation(self):
        with pytest.raises(errors.ModelError):
            units.area_scale_factor(0, 40)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ModelError,
        errors.CalibrationError,
        errors.InfeasibleDesignError,
        errors.UnknownDeviceError,
        errors.UnknownWorkloadError,
        errors.UnknownExperimentError,
    ])
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_lookup_errors_are_keyerrors(self):
        # API ergonomics: dict-style lookups can be caught as KeyError.
        for exc in (
            errors.UnknownDeviceError,
            errors.UnknownWorkloadError,
            errors.UnknownExperimentError,
        ):
            assert issubclass(exc, KeyError)

    def test_one_catch_all_boundary(self):
        # A caller can guard an API boundary with one except clause.
        from repro.devices import get_device
        from repro.workloads import get_workload

        for call in (
            lambda: get_device("nonexistent"),
            lambda: get_workload("nonexistent"),
        ):
            with pytest.raises(errors.ReproError):
                call()
