"""Energy-aware design selection (the Section 6.3 argument, runnable).

The paper argues U-cores -- custom logic above all -- are "more broadly
useful when power or energy reduction is the goal rather than increased
performance."  This example makes that concrete: for MMM at several
parallelism levels it selects design points under four different
objectives (max speedup, min energy, min energy-delay, max perf/W) and
shows how the optimal sequential-core size and the ASIC's advantage
move with the objective.

Run:  python examples/energy_aware_design.py
"""

from repro.core import (
    HeterogeneousChip,
    Objective,
    energy_metric,
    optimize_for,
)
from repro.devices import ucore_for
from repro.itrs.roadmap import ITRS_2009
from repro.projection import project_energy
from repro.projection.engine import node_budget
from repro.reporting import format_table

OBJECTIVES = (
    Objective.MAX_SPEEDUP,
    Objective.MIN_ENERGY,
    Objective.MIN_ENERGY_DELAY,
    Objective.MAX_PERF_PER_WATT,
)


def objective_table(f: float):
    node = ITRS_2009.node(40)
    budget = node_budget(node, "mmm", None, bandwidth_exempt=True)
    chip = HeterogeneousChip(ucore_for("ASIC", "mmm"))
    rows = []
    for objective in OBJECTIVES:
        point = optimize_for(chip, f, budget, objective)
        rows.append(
            (
                objective.value,
                f"{point.r:g}",
                f"{point.speedup:.1f}x",
                f"{energy_metric(chip, point):.3f}",
            )
        )
    return format_table(
        ["objective", "serial core r", "speedup", "energy (BCE=1)"],
        rows,
        title=f"ASIC-MMM design points at 40nm, f={f}",
    )


def main() -> None:
    for f in (0.5, 0.9, 0.99):
        print(objective_table(f))
        print()

    # The Figure 10 view: who saves the most energy by 11nm?
    print("MMM energy at 11nm (normalised to BCE at 40nm), f=0.99:")
    result = project_energy("mmm", 0.99)
    for series in sorted(
        result.series, key=lambda s: s.energies()[-1]
    ):
        print(f"  {series.label:<12} {series.energies()[-1]:.4f}")
    by_label = result.by_label()
    saving = (
        by_label["AsymCMP"].energies()[-1]
        / by_label["ASIC"].energies()[-1]
    )
    print(
        f"\nCustom logic cuts energy {saving:.0f}x relative to the "
        f"asymmetric CMP -- a far larger factor than its speedup edge."
    )


if __name__ == "__main__":
    main()
