"""Parallelism profiles: when is custom logic actually 'suitable'?

Section 7 of the paper calls for models that "incorporate varying
degrees of parallelism in an application, in order to capture how
'suitable' certain types of U-cores might be under a given parallelism
profile."  This example answers that question with the library's
profile extension: for programs whose parallel work has bounded width,
it finds the width at which each U-core's advantage actually appears.

Run:  python examples/parallelism_profiles.py
"""

from repro.core import HeterogeneousChip, ParallelismProfile
from repro.core.chip import AsymmetricOffloadCMP
from repro.core.profiles import optimize_profile
from repro.devices import ucore_for
from repro.itrs.roadmap import ITRS_2009
from repro.projection.engine import node_budget
from repro.reporting import format_table

WIDTHS = (4, 16, 64, 256, 1024, 8192)


def build_machines():
    return {
        "AsymCMP": AsymmetricOffloadCMP(),
        "LX760": HeterogeneousChip(ucore_for("LX760", "mmm")),
        "GTX285": HeterogeneousChip(ucore_for("GTX285", "mmm")),
        "ASIC": HeterogeneousChip(ucore_for("ASIC", "mmm")),
    }


def main() -> None:
    budget = node_budget(
        ITRS_2009.node(11), "mmm", None, bandwidth_exempt=True
    )
    machines = build_machines()

    rows = []
    crossover = {}
    for width in WIDTHS:
        profile = ParallelismProfile.from_pairs(
            [(0.05, 1.0), (0.95, float(width))]
        )
        cells = []
        speeds = {}
        for name, chip in machines.items():
            speedup, _, _ = optimize_profile(chip, profile, budget)
            speeds[name] = speedup
            cells.append(f"{speedup:8.1f}x")
        rows.append([f"width {width}"] + cells)
        for name in ("LX760", "GTX285", "ASIC"):
            if name not in crossover and speeds[name] > 1.2 * speeds[
                "AsymCMP"
            ]:
                crossover[name] = width
        if "ASIC>GPU" not in crossover and speeds["ASIC"] > 1.2 * speeds[
            "GTX285"
        ]:
            crossover["ASIC>GPU"] = width
    print(
        format_table(
            ["profile"] + list(machines),
            rows,
            title=(
                "MMM-parameter machines at 11nm on a 5% serial / 95% "
                "width-bounded program"
            ),
        )
    )

    print("\nCrossover widths (first >20% advantage):")
    for name, width in crossover.items():
        print(f"  {name:<8} width >= {width}")
    print(
        "\nReading: below width ~16 every machine just matches the"
        "\nprogram's own parallelism; the U-cores separate from the CMP"
        "\nonce widths pass the CMP's power-bound core count (~64); and"
        "\ncustom logic only separates from the GPU when hundreds of"
        "\nindependent work items exist -- the quantitative version of"
        "\nthe paper's 'suitability' remark."
    )


if __name__ == "__main__":
    main()
