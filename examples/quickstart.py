"""Quickstart: model one heterogeneous chip and project it forward.

Builds the paper's headline object -- a chip with a Pollack-law
sequential core plus ASIC U-cores calibrated from real FFT
measurements -- evaluates it under the 2011 budgets, and then projects
the whole design space (Figure 6's panel at f = 0.99) across the ITRS
road map.

Run:  python examples/quickstart.py
"""

from repro import Budget, HeterogeneousChip, optimize, project, ucore_for
from repro.reporting import render_projection_panel


def main() -> None:
    # 1. U-core parameters from the calibrated measurement pipeline.
    asic = ucore_for("ASIC", "fft", 1024)
    print("U-core:", asic.describe())

    # 2. One design point under the 40nm Table 6 budgets
    #    (19 BCE of area, 10 BCE of power, ~42 BCE of bandwidth).
    chip = HeterogeneousChip(asic)
    budget = Budget(area=19, power=10, bandwidth=41.9)
    best = optimize(chip, f=0.99, budget=budget)
    print("\nBest 40nm design point:")
    print(" ", best.describe())
    print(
        f"  ({best.parallel_resources:.2f} BCE of U-core fabric; "
        f"the {best.limiter.value} budget binds)"
    )

    # 3. The full Figure-6-style projection at f = 0.99.
    result = project("fft", f=0.99)
    print("\nProjection across the ITRS road map:")
    print(render_projection_panel(result))

    winner = result.winner()
    print(
        f"\nWinner at 11nm: {winner.design.label} at "
        f"{winner.final_speedup():.1f}x over one BCE core."
    )


if __name__ == "__main__":
    main()
