"""Mix-and-match heterogeneous dies (the paper's Section 6.3 prospect).

"With the abundance of area (but shortage of power) in the future, a
compelling prospect is to fabricate different U-cores that are powered
on-demand for suitable tasks ... a high arithmetic intensity kernel
such as MMM could be fabricated as custom logic alongside GPU- or
FPGA-based U-cores used to accelerate bandwidth-limited kernels such
as FFTs."

This example builds exactly that chip at the 11 nm node, runs a
three-phase application (serial / MMM-like / FFT-like) against
single-fabric alternatives, and prints the speedup and energy verdict.

Run:  python examples/mixed_chip.py
"""

from repro.devices import ucore_for
from repro.itrs.roadmap import ITRS_2009
from repro.projection import MixedChip, MixPhase
from repro.projection.engine import node_budget
from repro.reporting import format_table

#: Application: 5% serial, 60% dense linear algebra, 35% spectral.
PHASES = [
    MixPhase(0.05, "serial"),
    MixPhase(0.60, "mmm-fabric"),
    MixPhase(0.35, "fft-fabric"),
]


def build_chips(area_for_fabric: float):
    """Candidate dies with the same silicon budget, different fabrics."""
    half = area_for_fabric / 2
    return {
        "ASIC-MMM + GPU-FFT (paper's mix)": MixedChip(
            r=4.0,
            fabrics={
                "mmm-fabric": (ucore_for("ASIC", "mmm"), half),
                "fft-fabric": (ucore_for("GTX285", "fft", 1024), half),
            },
        ),
        "ASIC-MMM + ASIC-FFT": MixedChip(
            r=4.0,
            fabrics={
                "mmm-fabric": (ucore_for("ASIC", "mmm"), half),
                "fft-fabric": (ucore_for("ASIC", "fft", 1024), half),
            },
        ),
        "GPU-only fabric": MixedChip(
            r=4.0,
            fabrics={
                "mmm-fabric": (ucore_for("GTX285", "mmm"), half),
                "fft-fabric": (ucore_for("GTX285", "fft", 1024), half),
            },
        ),
        "FPGA-only fabric": MixedChip(
            r=4.0,
            fabrics={
                "mmm-fabric": (ucore_for("LX760", "mmm"), half),
                "fft-fabric": (ucore_for("LX760", "fft", 1024), half),
            },
        ),
    }


def main() -> None:
    node = ITRS_2009.node(11)
    # The FFT phase sets the chip-wide bandwidth unit; the MMM fabrics
    # below are intensity-rich enough that this is the tight case.
    budget = node_budget(node, "fft", 1024)
    chips = build_chips(area_for_fabric=budget.area - 4.0)

    rows = []
    for name, chip in chips.items():
        speedup, outcomes = chip.execute(PHASES, budget)
        energy = chip.energy(PHASES, budget, rel_power=node.rel_power)
        limits = "/".join(o.limiter.value[:2] for o in outcomes)
        rows.append(
            (name, f"{speedup:.1f}x", f"{energy:.4f}", limits)
        )
    print(
        format_table(
            ["die", "speedup", "energy (BCE=1)", "phase limits"],
            rows,
            title=(
                "Three-phase app (5% serial / 60% MMM / 35% FFT) "
                f"at {node.label}, on-demand powered fabrics"
            ),
        )
    )

    best = max(rows, key=lambda row: float(row[1][:-1]))
    print(f"\nBest die: {best[0]} at {best[1]}")
    print(
        "The mixed die matches all-ASIC speed (the FFT phase is "
        "bandwidth-pinned either way) while using a programmable "
        "fabric where custom logic would buy nothing."
    )


if __name__ == "__main__":
    main()
