"""Trace a campaign end to end and render its span timeline.

Runs a small projection campaign (one Figure 8 panel, one Pareto
sweep, one Monte-Carlo sensitivity batch) on a thread pool with
tracing on, then draws the resulting span tree as a text timeline:
indentation shows parentage, bars show when each span ran relative
to the campaign, and queue wait shows up as the gap the pool imposed
between submit and start.

This is the same instrumentation `repro-hetsim serve` and
`repro-hetsim campaign --trace-file` use; here we read the spans
straight out of the in-process ring buffer.

Run:  python examples/trace_timeline.py
"""

import tempfile

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ParetoTask,
    ResultStore,
    SensitivityTask,
)
from repro.obs.trace import get_tracer

#: Width of the timeline bar column, in characters.
BAR_WIDTH = 40


def render_timeline(spans) -> str:
    """The span tree as indented rows with proportional time bars."""
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span["parent_id"], []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s["start_unix"])

    t0 = min(s["start_unix"] for s in spans)
    t1 = max(
        s["start_unix"] + (s["duration_ms"] or 0) / 1e3 for s in spans
    )
    scale = BAR_WIDTH / max(t1 - t0, 1e-9)

    lines = [
        f"{'span':<44} {'start':>8} {'dur':>9}  timeline",
        "-" * (44 + 1 + 8 + 1 + 9 + 2 + BAR_WIDTH),
    ]

    def walk(parent_id, depth):
        for span in by_parent.get(parent_id, []):
            start_s = span["start_unix"] - t0
            dur_ms = span["duration_ms"] or 0.0
            left = int(start_s * scale)
            width = max(1, int(dur_ms / 1e3 * scale))
            bar = " " * left + "#" * min(width, BAR_WIDTH - left)
            label = "  " * depth + span["name"]
            extra = ""
            wait = span["attributes"].get("queue_wait_ms")
            if wait is not None:
                extra = f"  (queue wait {wait:.1f}ms)"
            lines.append(
                f"{label:<44} {start_s * 1e3:7.1f}ms {dur_ms:7.1f}ms"
                f"  {bar}{extra}"
            )
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def main() -> None:
    spec = CampaignSpec(
        name="timeline-demo",
        figures=("F8",),
        pareto=(ParetoTask(workload="mmm", f=0.99, node_nm=22),),
        sensitivity=(
            SensitivityTask(
                workload="mmm", f=0.99, node_nm=11, trials=25, seed=7
            ),
        ),
    )

    tracer = get_tracer()
    tracer.clear()
    with tempfile.TemporaryDirectory() as store_dir:
        runner = CampaignRunner(
            store=ResultStore(store_dir), executor="thread", workers=2
        )
        report = runner.run(spec)

    print(
        f"campaign: {report.executed} executed, "
        f"{report.cached} cached, {report.failed} failed "
        f"in {report.elapsed_s * 1e3:.0f}ms\n"
    )
    spans = tracer.spans()
    print(render_timeline(spans))
    print(
        f"\n{len(spans)} spans; the same tree is served by "
        "GET /v1/traces and written as JSONL by --trace-file."
    )


if __name__ == "__main__":
    main()
