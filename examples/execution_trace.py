"""Execution traces: watch a design point actually run.

The projection figures compress everything into one speedup number.
This example uses the timeline simulator to *run* a mixed program on
three 22 nm designs and draws their power traces over time -- making
visible what the model's bounds mean operationally: the CMP's long
parallel phase, the GPU fabric's steadier draw, and the ASIC racing
through parallel work and idling at the bandwidth ceiling.

Run:  python examples/execution_trace.py
"""

from repro.core.chip import AsymmetricOffloadCMP, HeterogeneousChip
from repro.core.optimizer import optimize
from repro.devices import ucore_for
from repro.itrs.roadmap import ITRS_2009
from repro.projection.engine import node_budget
from repro.sim import ChipSimulator, WorkPhase

#: 10% serial setup, 60% bulk parallel, 5% serial reduction, 25% tail.
PROGRAM = [
    WorkPhase(0.10, serial=True),
    WorkPhase(0.60, serial=False),
    WorkPhase(0.05, serial=True),
    WorkPhase(0.25, serial=False),
]

_BAR_WIDTH = 60


def draw_trace(name: str, trace) -> None:
    print(f"\n{name}: speedup {trace.speedup:.1f}x, "
          f"energy {trace.total_energy:.3f} (BCE=1), "
          f"avg power {trace.average_power:.1f} BCE")
    scale = _BAR_WIDTH / trace.total_time
    for event in trace.events:
        width = max(1, int(round(event.duration * scale)))
        kind = "serial  " if event.phase.serial else "parallel"
        stall = " [bandwidth-capped]" if event.bandwidth_stalled else ""
        bar = ("S" if event.phase.serial else "P") * width
        print(
            f"  {kind} |{bar:<{_BAR_WIDTH}}| "
            f"{event.duration:.4f}t @ {event.power:5.1f} BCE-power"
            f"{stall}"
        )


def main() -> None:
    node = ITRS_2009.node(22)
    budget = node_budget(node, "fft", 1024)
    designs = {
        "AsymCMP": AsymmetricOffloadCMP(),
        "GTX285 HET": HeterogeneousChip(ucore_for("GTX285", "fft", 1024)),
        "ASIC HET": HeterogeneousChip(ucore_for("ASIC", "fft", 1024)),
    }
    f_equiv = sum(p.work for p in PROGRAM if not p.serial)
    print(
        f"Program: {len(PROGRAM)} phases, parallel fraction "
        f"{f_equiv:.2f}; budgets at {node.label}: "
        f"area {budget.area:g} BCE, power {budget.power:g} BCE, "
        f"bandwidth {budget.bandwidth:.1f} BCE"
    )
    for name, chip in designs.items():
        point = optimize(chip, f_equiv, budget)
        trace = ChipSimulator(
            chip, point, budget, rel_power=node.rel_power
        ).run(PROGRAM)
        draw_trace(f"{name} (r={point.r:g}, n={point.n:.1f})", trace)

    print(
        "\nNote how both HETs finish the parallel phases at the same "
        "wall-clock rate\n(the bandwidth ceiling), but the serial "
        "phases -- identical for all three --\ncome to dominate the "
        "accelerated timelines: Amdahl in action."
    )


if __name__ == "__main__":
    main()
