"""The bandwidth wall: how off-chip bandwidth reshapes the U-core race.

Sweeps the starting bandwidth from 45 GB/s to 2 TB/s (spanning the
paper's 90 GB/s and 1 TB/s scenarios) for FFT-1024 at f = 0.99, and
reports each design's 11 nm speedup and binding constraint.  The
paper's second conclusion falls straight out: below ~1 TB/s the
bandwidth ceiling equalises the ASIC with the GPUs and FPGA, and only
once bandwidth is abundant does custom logic's efficiency edge
reappear (and then power becomes the wall).

Run:  python examples/bandwidth_wall.py
"""

from repro.itrs.roadmap import ITRS_2009
from repro.itrs.scenarios import Scenario
from repro.projection import project
from repro.reporting import format_table

BANDWIDTH_SWEEP_GBPS = (45, 90, 180, 360, 1000, 2000)


def sweep():
    rows = []
    for gbps in BANDWIDTH_SWEEP_GBPS:
        scenario = Scenario(
            name=f"bw-{gbps}",
            description=f"{gbps} GB/s starting bandwidth",
            roadmap=ITRS_2009.with_overrides(
                bandwidth_gbps_at_start=float(gbps)
            ),
        )
        result = project("fft", 0.99, scenario, fft_size=1024)
        final = {
            s.design.short_label: s.cells[-1] for s in result.series
        }
        cells = []
        for label in ("SymCMP", "AsymCMP", "LX760", "GTX285", "ASIC"):
            cell = final[label]
            cells.append(
                f"{cell.speedup:7.1f} ({cell.limiter.value[:2]})"
            )
        rows.append([f"{gbps:>5} GB/s"] + cells)
    return format_table(
        ["bandwidth", "SymCMP", "AsymCMP", "LX760", "GTX285", "ASIC"],
        rows,
        title=(
            "FFT-1024, f=0.99, 11nm speedups vs starting bandwidth "
            "(ar=area, po=power, ba=bandwidth limited)"
        ),
    )


def main() -> None:
    print(sweep())
    print()
    # Quantify the equalisation the paper describes.
    for gbps, label in ((180, "baseline"), (1000, "1 TB/s")):
        scenario = Scenario(
            name=f"bw-{gbps}",
            description="",
            roadmap=ITRS_2009.with_overrides(
                bandwidth_gbps_at_start=float(gbps)
            ),
        )
        final = {
            s.design.short_label: s.final_speedup()
            for s in project("fft", 0.99, scenario).series
        }
        gap = final["ASIC"] / final["GTX285"]
        print(
            f"At {label}: ASIC leads the GTX285 by {gap:.2f}x "
            f"({'bandwidth equalised' if gap < 1.1 else 'efficiency shows'})"
        )


if __name__ == "__main__":
    main()
