"""Calibrate your own accelerator and project it (the Section 5 recipe).

The paper's methodology is reusable: measure your accelerator's
throughput, silicon area, and power next to a known fast core, derive
its (mu, phi) with the Section 5.1 formulas, and drop it into the
projection model.  This example walks that pipeline with a hypothetical
"TensorUnit" NPU measured on an MMM-like kernel, first normalising the
raw 28nm-class numbers onto the paper's 40nm baseline, then comparing
the projected chip against the paper's calibrated designs.

Run:  python examples/calibrate_your_accelerator.py
"""

from repro.core import HeterogeneousChip
from repro.devices import (
    Measurement,
    derive_ucore,
    get_measurement,
)
from repro.projection import project
from repro.projection.designs import DesignSpec, standard_designs
from repro.reporting import render_projection_panel


def measure_tensor_unit() -> Measurement:
    """Pretend-measured accelerator, already normalised to 40nm.

    600 GFLOP/s from a 20 mm^2 matrix engine at 18 W: denser than a
    GPU, less extreme than full custom logic.
    """
    return Measurement(
        device="TensorUnit",
        workload="mmm",
        throughput=600.0,
        area_mm2=20.0,
        watts=18.0,
        unit="GFLOP/s",
    )


def main() -> None:
    # 1. Pair your measurement with the fast-core baseline and derive.
    mine = measure_tensor_unit()
    fast = get_measurement("Core i7-960", "mmm")
    ucore = derive_ucore(mine, fast)
    print("Derived U-core:", ucore.describe())

    # 2. Append it to the paper's MMM design list and project.
    designs = list(standard_designs("mmm"))
    designs.append(
        DesignSpec(
            index=7,
            label="(7) TensorUnit",
            chip=HeterogeneousChip(ucore),
        )
    )
    result = project("mmm", 0.99, designs=designs)
    print()
    print(render_projection_panel(result))

    # 3. Read off the verdict.
    final = {s.design.short_label: s.final_speedup()
             for s in result.series}
    print()
    print(
        f"At 11nm your TensorUnit projects to {final['TensorUnit']:.0f}x "
        f"-- vs {final['R5870']:.0f}x for the best GPU and "
        f"{final['ASIC']:.0f}x for full custom logic."
    )


if __name__ == "__main__":
    main()
