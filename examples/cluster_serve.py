"""Scale the serving layer out to a fleet of worker processes.

``repro-hetsim serve --workers N`` puts an asyncio router in front of
N spawned worker processes, each a full single-process model service
with its own micro-batcher and LRU cache.  The router rendezvous-
hashes every request's *coalescing key* (workload, design, f -- never
the node, so a node sweep stays on one worker and still batches), so
repeat traffic always lands on the worker whose cache already holds
the answer.  This script drives that machinery in process:

1. **Boot** a 2-worker cluster on an ephemeral port.
2. **Route**: the same request, asked twice, returns byte-identical
   answers -- the second from the owning worker's cache.
3. **Observe**: ``/healthz`` reports fleet liveness and topology;
   ``/metrics`` merges every worker's counters into one scrape.
4. **Crash**: kill a worker; the watchdog respawns it under the same
   name, so rendezvous hands the replacement its old key range and
   the answer is again byte-identical.

The CLI equivalent is::

    repro-hetsim serve --workers 2 --port 8000
"""

import asyncio
import json
import socket
import time

from repro.cluster import ClusterConfig, Router, WorkerSupervisor
from repro.service.app import ServiceConfig

REQUEST = {"workload": "fft", "f": 0.99, "design": "GTX480"}


def fetch(port, method, path, body=b""):
    """One raw HTTP/1.1 round trip, as any external client would."""
    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    conn.sendall(
        (
            f"{method} {path} HTTP/1.1\r\nHost: demo\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        + body
    )
    data = b""
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            break
        data += chunk
    conn.close()
    head, _, payload = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, payload


def drive(port, supervisor):
    body = json.dumps(REQUEST).encode()

    status, first = fetch(port, "POST", "/v1/speedup", body)
    assert status == 200, first
    answer = json.loads(first)
    print(
        f"speedup({REQUEST['design']}, f={REQUEST['f']}): "
        f"{answer['point']['speedup']:.2f}x "
        f"(limited by {answer['point']['limiter']})"
    )
    status, second = fetch(port, "POST", "/v1/speedup", body)
    print("asked again -> byte-identical:", first == second)

    status, health = fetch(port, "GET", "/healthz")
    payload = json.loads(health)
    print(
        f"healthz: {payload['status']}, topology {payload['topology']}, "
        f"{payload['cluster']['alive']}/{payload['cluster']['configured']}"
        " workers alive"
    )

    status, metrics = fetch(port, "GET", "/metrics")
    merged = json.loads(metrics)
    for name in sorted(merged["workers"]):
        cache = merged["workers"][name]["cache"]
        print(
            f"  {name}: cache hits={cache['hits']} "
            f"misses={cache['misses']}"
        )

    # Crash one worker.  The router's watchdog respawns it under the
    # same name; rendezvous hashing hands the replacement exactly the
    # key range the corpse owned.
    victim = "w1"
    print(f"killing {victim}...")
    process = supervisor._slots[victim].process
    process.kill()
    process.join(10)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, health = fetch(port, "GET", "/healthz")
        payload = json.loads(health)
        if status == 200 and payload["status"] == "ok":
            break
        time.sleep(0.2)
    respawns = payload["cluster"]["workers"][victim]["respawns"]
    print(f"fleet healed: {payload['status']} (respawns={respawns})")
    status, reborn = fetch(port, "POST", "/v1/speedup", body)
    print("answer after respawn byte-identical:", reborn == first)


def main():
    config = ClusterConfig(
        workers=2,
        service=ServiceConfig(batch_window_ms=0.5, workers=1),
        host="127.0.0.1",
        port=0,
        respawn_backoff_s=0.1,
    )
    supervisor = WorkerSupervisor(config)
    ports = supervisor.start()
    print("worker fleet:", ports)
    router = Router(config, supervisor)

    async def serve_and_drive():
        stop = asyncio.Event()
        ready = asyncio.Event()
        serving = asyncio.ensure_future(
            router.serve_until(stop, ready=ready)
        )
        await ready.wait()
        print(f"router listening on 127.0.0.1:{router.bound_port}")
        await asyncio.get_running_loop().run_in_executor(
            None, drive, router.bound_port, supervisor
        )
        stop.set()
        await serving

    try:
        asyncio.run(serve_and_drive())
    finally:
        supervisor.stop()
    print("done")


if __name__ == "__main__":
    main()
