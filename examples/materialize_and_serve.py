"""Materialize the design space once, then serve it in O(1).

Every answer the serving layer can give is a pure function of
``(scenario, workload, design, node, f, r_max)`` -- and the paper's
whole design space is only megabytes when tabulated.  This script
walks the materialized-serving pipeline end to end, in process:

1. **Build** a tensor store: a campaign evaluates every design's
   ``(f-grid x r-grid x node)`` block through one prefix-argmax grid
   call per ``f``, and the results land as memory-mapped float64
   channel tensors under a checksummed, atomically-published manifest.
2. **Serve** from it: a :class:`repro.service.app.ModelService` booted
   with ``tensor_dir`` answers on-grid requests straight from the
   mapped tensors -- bit-identical to live compute, verified here by
   comparing against a second, tensor-less service.
3. **Interpolate**: an off-grid ``f`` on ``/v1/speedup`` is answered
   harmonically (``1/speedup`` is linear in ``f`` under Amdahl's law)
   with a documented ``1e-9`` relative error bound and an
   ``interpolation`` block in the response.
4. **Fall back**: anything the store cannot answer exactly -- here an
   off-grid ``/v1/optimize`` -- silently takes the ordinary live path.
   The ``/metrics`` counters tally every outcome.

The CLI equivalent of steps 1-2 is::

    repro-hetsim materialize build --dir tensors/
    repro-hetsim serve --tensor-dir tensors/
"""

import asyncio
import json
import tempfile

from repro.perf.tensorstore import build_tensor_store, materialize_spec
from repro.service.app import ModelService, ServiceConfig

#: A compact grid keeps this demo quick; the CLI default materializes
#: every percent (102 f points x 16 r_max values per design/node).
F_GRID = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


async def post(service, path, **body):
    status, payload = await service.handle(
        "POST", path, json.dumps(body).encode()
    )
    assert status == 200, payload
    return payload


async def main(tensor_dir):
    manifest = build_tensor_store(
        tensor_dir,
        spec=materialize_spec(f_grid=F_GRID),
        executor="thread",
    )
    cells = sum(
        int(g["shape"][0]) * int(g["shape"][1])
        * int(g["shape"][2]) * int(g["shape"][3])
        for g in manifest["groups"]
    )
    print(
        f"built {len(manifest['groups'])} groups, "
        f"{len(manifest['task_hashes'])} tasks, {cells} cells"
    )

    tensor = ModelService(ServiceConfig(tensor_dir=tensor_dir))
    live = ModelService(ServiceConfig())
    try:
        _, health = await tensor.handle("GET", "/healthz")
        block = health["tensor"]
        print(
            f"healthz: tensor {block['status']} "
            f"({block['cells']} cells, {block['bytes']} bytes)"
        )

        # On-grid: answered from the mapped tensors, bit-identical.
        request = dict(workload="mmm", f=0.99, design="ASIC",
                       node_nm=22)
        from_tensor = await post(tensor, "/v1/speedup", **request)
        from_live = await post(live, "/v1/speedup", **request)
        assert json.dumps(from_tensor) == json.dumps(from_live)
        point = from_tensor["point"]
        print(
            f"on-grid hit: ASIC mmm f=0.99 @22nm -> "
            f"{point['speedup']:.2f}x (r={point['r']:g}), "
            f"bit-identical to live compute"
        )

        # Off-grid f: harmonic interpolation, error bound attached.
        interp = await post(
            tensor, "/v1/speedup",
            workload="mmm", f=0.6, design="GTX480", node_nm=22,
        )
        info = interp["interpolation"]
        print(
            f"off-grid f=0.6: interpolated between f={info['f_bracket']} "
            f"(rel error <= {info['rel_error_bound']:g})"
        )

        # Off-grid aggregate: refuses to guess, falls back to live.
        await post(tensor, "/v1/optimize", workload="mmm", f=0.6)
        _, metrics = await tensor.handle("GET", "/metrics")
        outcomes = {
            key: metrics["tensorstore"][key]
            for key in ("hit", "interp", "fallback")
        }
        print(f"outcomes: {outcomes}")
    finally:
        tensor.close()
        live.close()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory(prefix="tensors-") as directory:
        asyncio.run(main(directory))
