"""Pareto fronts over a declarative design space, two ways.

Builds a DSL scenario that races the paper's ASIC against a hybrid
multi-U-core die (3:1 custom logic : GPU fabric split) across area
budgets from a quarter to four dies, then reduces the config cloud to
the speedup/area/power Pareto front -- once exhaustively and once by
successive halving.  The two fronts are identical (that is the
halving invariant) but halving pays for only a fraction of the full
evaluations, which is the point: the front of a thousands-of-configs
space costs a few dozen optimizer calls.

Run:  python examples/dse_pareto.py
"""

from repro.dse import (
    ChipSpec,
    DSEScenario,
    SegmentSpec,
    exhaustive_sweep,
    expand_configs,
    pareto_front,
    successive_halving,
)
from repro.reporting import format_table

AREA_GRID = (0.25, 0.5, 1.0, 2.0, 4.0)
POWER_GRID = (0.5, 1.0)

SCENARIO = DSEScenario(
    name="asic-vs-hybrid",
    description="custom logic vs a mixed-substrate die",
    f_values=(0.9, 0.99, 0.999),
    chips=(
        ChipSpec(kind="single", device="ASIC"),
        ChipSpec(kind="single", device="GTX480"),
        ChipSpec(
            kind="multi",
            segments=(
                SegmentSpec(name="hot-loop", weight=3.0,
                            device="ASIC"),
                SegmentSpec(name="simd-tail", weight=1.0,
                            device="GTX480"),
            ),
        ),
    ),
)


def front_rows(front):
    rows = []
    for p in front:
        rows.append(
            (
                p.chip,
                p.node,
                f"{p.f:g}",
                f"{p.area_scale:g}x/{p.power_scale:g}x",
                f"{p.speedup:.1f}",
                p.limiter,
            )
        )
    return rows


def main():
    configs = expand_configs(SCENARIO, AREA_GRID, POWER_GRID)
    points, infeasible = exhaustive_sweep(configs)
    exhaustive = pareto_front(points)

    result = successive_halving(
        SCENARIO,
        area_scale_grid=AREA_GRID,
        power_scale_grid=POWER_GRID,
    )

    assert list(result.front) == exhaustive  # same front, fewer evals

    print(
        format_table(
            ["chip", "node", "f", "area/power", "speedup", "limiter"],
            front_rows(exhaustive),
            title=(
                f"Pareto front: {SCENARIO.name} "
                f"({len(exhaustive)} of {len(configs)} configs)"
            ),
        )
    )
    print(
        f"\nexhaustive sweep: {len(configs)} evaluations "
        f"({infeasible} infeasible)"
    )
    print(
        f"successive halving: {result.full_evaluations} full + "
        f"{result.rung_evaluations} rung evaluations = "
        f"{result.full_eval_fraction:.1%} of exhaustive, "
        f"identical front"
    )


if __name__ == "__main__":
    main()
