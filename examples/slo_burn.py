"""An SLO burn episode, end to end through the serving layer.

The serving layer tracks declarative objectives (availability and
per-endpoint latency) with two-window burn rates and a lifetime error
budget.  This script drives a :class:`repro.service.app.ModelService`
through a full episode without a socket or a wall clock:

1. healthy traffic -- every objective ``ok``, budget untouched;
2. a latency incident -- sustained slow requests push both burn
   windows over their thresholds, the alert hook fires exactly once,
   ``/v1/slo`` flips to ``burning`` while ``/healthz`` keeps
   answering 200 (burning means "stop deploying", not "stop
   routing");
3. recovery -- the incident ages out of the windows, status returns
   to ``ok``, and the spent error budget remains on the books.

The tracker's clock is injectable, so the hour-long slow window is
crossed instantly and deterministically.
"""

import asyncio

from repro.obs.slo import SLObjective, SLOTracker
from repro.service.app import ModelService, ServiceConfig

#: Tight latency objective so the episode is visible at small scale:
#: 99% of /v1/speedup requests under 250 ms (budget: 1% of traffic).
OBJECTIVE = SLObjective(
    name="speedup-latency",
    endpoint="/v1/speedup",
    target=0.99,
    latency_threshold_ms=250.0,
)


class ManualClock:
    """A clock the script advances by hand."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def show(tracker, label):
    snap = tracker.snapshot()
    obj = snap["objectives"][0]
    print(f"{label}:")
    print(
        f"  status={obj['status']:<9} "
        f"burn fast={obj['burn_rate_fast']:7.1f}  "
        f"slow={obj['burn_rate_slow']:7.1f}  "
        f"budget remaining={obj['error_budget_remaining']:6.1%}  "
        f"(good={obj['events_good']}, bad={obj['events_bad']})"
    )


async def main():
    service = ModelService(
        ServiceConfig(batch_window_ms=0.5, request_timeout_s=5.0)
    )
    clock = ManualClock()
    tracker = SLOTracker(
        objectives=(OBJECTIVE,),
        registry=service.registry,
        clock=clock,
    )
    alerts = []
    tracker.add_alert_hook(
        lambda alert: alerts.append(alert)
        or print(
            f"  >> ALERT fired: {alert['slo']} is {alert['status']} "
            f"(fast burn {alert['burn_rate_fast']:.0f}x)"
        )
    )
    service.slo = tracker

    try:
        print("== phase 1: healthy traffic ==")
        for _ in range(5000):
            tracker.record("/v1/speedup", 0.010, error=False)
            clock.advance(0.1)
        show(tracker, "after 5000 fast requests")

        print()
        print("== phase 2: latency incident ==")
        clock.advance(3600.0)  # the healthy window drains
        for i in range(30):
            tracker.record("/v1/speedup", 1.2, error=False)  # 1200 ms
            clock.advance(1.0)
        show(tracker, "after 30 slow requests")
        print(f"  alert hook invocations: {len(alerts)}")

        status, health, _ = await service.handle_request(
            "GET", "/healthz"
        )
        print(
            f"  /healthz -> {status} status={health['status']!r} "
            f"slo={health['slo']!r}  (readiness contract unchanged)"
        )
        status, slo_payload, _ = await service.handle_request(
            "GET", "/v1/slo"
        )
        print(f"  /v1/slo  -> {status} overall={slo_payload['status']!r}")

        print()
        print("== phase 3: recovery ==")
        clock.advance(3601.0)  # the incident ages out of both windows
        for _ in range(2000):
            tracker.record("/v1/speedup", 0.010, error=False)
            clock.advance(0.1)
        show(tracker, "after the incident ages out")
        print(f"  alert hook invocations: {len(alerts)} (still one episode)")
    finally:
        service.close()

    assert len(alerts) == 1, "expected exactly one alert per episode"
    print()
    print("done: one burn episode, one page, budget accounting intact")


if __name__ == "__main__":
    asyncio.run(main())
