"""Tail a running campaign live, then prove the replay guarantee.

Every campaign job publishes its lifecycle -- queued, started, one
``task.settled`` per panel, finished -- onto a per-job event stream
with monotonic cursors, served over SSE at ``GET /v1/events``.
``repro-hetsim watch <job>`` is the terminal client; this script
drives the same code path in process:

1. **Boot** a model service on an ephemeral port and submit a
   three-figure campaign through ``POST /v1/jobs``.
2. **Watch** the job's stream live from cursor 0: one rendered line
   per event, progress accumulating to ``finished succeeded``.
3. **Replay**: reconnect from cursor 0 after the job is done.  The
   stream is rebuilt from the content-addressed store's event log, so
   the ``--json`` tail is byte-for-byte the live one -- watching late
   loses nothing.
4. **Resume**: reconnect from a mid-stream cursor and get exactly the
   suffix, no gap, no duplicate -- what the watch client leans on
   when a connection drops.

The CLI equivalent of step 2 is::

    repro-hetsim watch <job-id> --url http://127.0.0.1:<port>
"""

import asyncio
import json
import socket
import tempfile
import threading

from repro.service.app import ModelService, ServiceConfig
from repro.service.http import start_server
from repro.service.watch import watch

SPEC = {"figures": ["F6", "F7", "F8"]}


def fetch(port, method, path, body=b""):
    """One raw HTTP/1.1 round trip, as any external client would."""
    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    conn.sendall(
        (
            f"{method} {path} HTTP/1.1\r\nHost: demo\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        + body
    )
    data = b""
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            break
        data += chunk
    conn.close()
    head, _, payload = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, payload


def drive(port):
    url = f"http://127.0.0.1:{port}"

    status, accepted = fetch(
        port, "POST", "/v1/jobs", json.dumps(SPEC).encode()
    )
    assert status == 202, accepted
    job_id = json.loads(accepted)["job_id"]
    print(f"submitted {job_id} ({SPEC['figures']})")

    # Live tail from cursor 0: blocks until the job finishes, printing
    # one line per event.  Exit code mirrors the job outcome.
    print("-- live tail " + "-" * 40)
    code = watch(url, job_id, timeout_s=120)
    print(f"-- watch exited {code} " + "-" * 33)

    # The replay guarantee: a fresh tail from cursor 0 sees the exact
    # canonical lines the live tail saw, reconstructed from the
    # store's durable event log if retention already trimmed them.
    tailed = []
    watch(url, job_id, as_json=True, emit=tailed.append, timeout_s=120)
    status, body = fetch(
        port, "GET", f"/v1/events?job_id={job_id}&cursor=0"
    )
    batch = json.loads(body)
    print(
        f"replay from cursor 0: {len(tailed)} events, "
        f"byte-identical to the batch read: "
        f"{tailed == batch['lines']}"
    )

    # Cursors are resume points: reading from the middle returns
    # exactly the suffix.  This is what makes a dropped watch safe to
    # reconnect -- the client just asks again from its last cursor.
    resume_cursor = len(tailed) - 2
    status, body = fetch(
        port, "GET",
        f"/v1/events?job_id={job_id}&cursor={resume_cursor}",
    )
    suffix = json.loads(body)
    print(
        f"resume from cursor {resume_cursor}: "
        f"{[e['kind'] for e in suffix['events']]} "
        f"(suffix match: {suffix['lines'] == tailed[resume_cursor:]})"
    )

    # The job payload names the stream's live cursor, so a poller can
    # hand off to a tail without guessing.
    status, body = fetch(port, "GET", f"/v1/jobs/{job_id}")
    payload = json.loads(body)
    print(
        f"job payload: state={payload['state']}, "
        f"events_cursor={payload['events_cursor']}"
    )


def main():
    config = ServiceConfig(
        batch_window_ms=0.5,
        store_dir=tempfile.mkdtemp(prefix="watch-campaign-"),
    )
    service = ModelService(config)

    async def serve_and_drive():
        server = await start_server(service, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        print(f"serving on 127.0.0.1:{port}")
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, drive, port
            )
        finally:
            server.close()
            await server.wait_closed()

    try:
        asyncio.run(serve_and_drive())
    finally:
        service.close()
    print("done")


if __name__ == "__main__":
    main()
