"""Design-space exploration: which U-core wins, where?

Sweeps the parallel fraction f and the technology node for all three
workloads and prints a winner map -- the question a heterogeneous-SoC
architect actually asks ("given my app's parallelism and my process
node, what should I put on the die?").  Reproduces the paper's
qualitative answer: CMPs suffice below f ~ 0.9; flexible U-cores match
custom logic whenever bandwidth limits; custom logic only pulls away
on high-intensity kernels at extreme parallelism.

Run:  python examples/design_space_exploration.py
"""

from repro.itrs.roadmap import ITRS_2009
from repro.projection import project
from repro.reporting import format_table

F_SWEEP = (0.5, 0.9, 0.99, 0.999)


def winner_map(workload: str, fft_size=None):
    """For each (f, node): the winning design and its margin."""
    rows = []
    for f in F_SWEEP:
        result = project(workload, f, fft_size=fft_size)
        cells = []
        for node_index, node in enumerate(ITRS_2009.nodes):
            ranked = sorted(
                (
                    (s.cells[node_index].speedup, s.design.short_label)
                    for s in result.series
                    if s.cells[node_index].point is not None
                ),
                reverse=True,
            )
            (best, who), (second, _) = ranked[0], ranked[1]
            margin = best / second
            mark = who if margin > 1.05 else f"{who}~"
            cells.append(f"{mark} ({best:.0f}x)")
        rows.append([f"f={f}"] + cells)
    return format_table(
        ["parallelism"] + ITRS_2009.node_labels(),
        rows,
        title=f"Winner map for {workload.upper()}"
        + (f"-{fft_size}" if fft_size else "")
        + "  (~ marks wins under 5% margin)",
    )


def main() -> None:
    for workload, size in (("fft", 1024), ("mmm", None), ("bs", None)):
        print(winner_map(workload, size))
        print()

    # Zoom in: how big is the custom-logic premium on MMM, really?
    print("Custom logic premium on MMM (ASIC speedup / best flexible):")
    for f in F_SWEEP:
        result = project("mmm", f)
        final = {
            s.design.short_label: s.final_speedup() for s in result.series
        }
        flexible = max(
            final["LX760"], final["GTX285"], final["GTX480"],
            final["R5870"],
        )
        print(f"  f={f}: {final['ASIC'] / flexible:.2f}x at 11nm")


if __name__ == "__main__":
    main()
