"""Scenario grid: when does lifting the bandwidth ceiling pay off?

The paper's final sentence: U-cores scale the power wall, but "their
long-term impact will increase even further if the bandwidth ceiling
can be lifted through future innovations."  This example quantifies
that interaction by sweeping *both* the power budget and the starting
bandwidth for FFT-1024 at f = 0.99, printing the 11 nm ASIC speedup
and its binding constraint in each cell -- a map of which wall to
attack first at every point in the design space.

Run:  python examples/scenario_grid.py
"""

from repro.itrs.roadmap import ITRS_2009
from repro.itrs.scenarios import Scenario
from repro.projection import project
from repro.reporting import format_table

POWER_BUDGETS_W = (10, 50, 100, 200, 400)
BANDWIDTHS_GBPS = (90, 180, 360, 1000, 4000)


def grid_cell(power_w: float, bandwidth_gbps: float):
    scenario = Scenario(
        name=f"p{power_w}-b{bandwidth_gbps}",
        description="grid point",
        roadmap=ITRS_2009.with_overrides(
            power_budget_w=float(power_w),
            bandwidth_gbps_at_start=float(bandwidth_gbps),
        ),
    )
    result = project("fft", 0.99, scenario, fft_size=1024)
    cell = result.by_label()["ASIC"].cells[-1]
    if cell.point is None:
        return "infeasible"
    return f"{cell.speedup:6.0f}x ({cell.limiter.value[:2]})"


def main() -> None:
    rows = []
    for power_w in POWER_BUDGETS_W:
        rows.append(
            [f"{power_w} W"]
            + [grid_cell(power_w, bw) for bw in BANDWIDTHS_GBPS]
        )
    print(
        format_table(
            ["power \\ bandwidth"]
            + [f"{bw} GB/s" for bw in BANDWIDTHS_GBPS],
            rows,
            title=(
                "ASIC-FFT speedup at 11nm, f=0.99, by power budget and "
                "2011 starting bandwidth (po=power-, ba=bandwidth-, "
                "ar=area-limited)"
            ),
        )
    )
    print(
        "\nReading the map: along each row, more bandwidth converts "
        "to speedup only\nuntil the power wall takes over (ba -> po); "
        "along each column, more power\nhelps only if the pins keep "
        "up.  The paper's 100 W / 180 GB/s baseline\nsits deep in the "
        "bandwidth-limited regime -- hence its closing call to\n"
        "attack the memory bandwidth ceiling."
    )


if __name__ == "__main__":
    main()
