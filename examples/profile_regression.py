"""From a 30% slowdown to the line of code that caused it.

Every benchmark writer stamps two artifacts into each
``BENCH_history.jsonl`` row: scalar metrics (wall times, throughputs)
and the run's own **folded profile** from the continuous sampler.
``repro-hetsim bench-check`` gates the scalars against a rolling
bootstrap baseline; when a gate trips, the differential profiler
(:mod:`repro.obs.profdiff`) joins per-frame self-time between the
candidate profile and the baseline window and names the frames that
gained time -- the exit-5 report says not just *that* the benchmark
regressed but *which function* did it.

This script runs that whole path deterministically, no server and no
wall clock: it synthesises six history rows exactly as
``record_benchmark`` would have written them.  Five healthy baselines
spend 1.00 s with a known frame mix; the sixth run is 30% slower, and
its profile shows all of the extra time inside one frame --
``repro.core.optimizer:optimize``.  Then it hands the rows to the real
:func:`repro.obs.regress.check_rows` and prints what ``bench-check``
would print.

The CLI equivalent against a real history file is::

    repro-hetsim bench-check --history BENCH_history.jsonl
"""

from repro.obs.history import HISTORY_SCHEMA_VERSION
from repro.obs.prof import FoldedProfile
from repro.obs.profdiff import render_culprit
from repro.obs.regress import check_rows

#: The frame that will eat the extra time.  Stacks are root-first,
#: frames are ``module:func:line`` -- the profiler's folded format.
HOT_FRAME = "repro.core.optimizer:optimize:77"
COLD_FRAME = "repro.model.io:load_tables:9"

#: Samples at 100 Hz, so counts read directly as centiseconds.
HZ = 100.0


def sampled_profile(hot_count: int, cold_count: int = 50) -> FoldedProfile:
    """What the stack sampler would fold out of one benchmark run."""
    profile = FoldedProfile(hz=HZ)
    profile.add_stack(("repro.cli:main:1", HOT_FRAME), hot_count)
    profile.add_stack(("repro.cli:main:1", COLD_FRAME), cold_count)
    profile.samples = hot_count + cold_count
    profile.duration_s = profile.samples / HZ
    return profile


def history_row(run_id: int, best_s: float, hot_count: int) -> dict:
    """One BENCH_history.jsonl row, as ``record_benchmark`` writes it."""
    return {
        "benchmark": "campaign_wall",
        "envelope": {
            "run_id": run_id,
            "host_fingerprint": "demo-host",
            "schema_version": HISTORY_SCHEMA_VERSION,
            "topology": None,
        },
        "metrics": {"best_s": best_s},
        "profile": sampled_profile(hot_count).payload(),
    }


def main() -> None:
    # Five healthy runs: 1.00 s each, the hot frame at 100 samples.
    rows = [history_row(run_id, 1.0, 100) for run_id in range(1, 6)]

    # The candidate: 30% slower overall -- and the profile records the
    # slowdown exactly where it happened, +30 samples on the hot frame.
    rows.append(history_row(6, 1.3, 130))

    report = check_rows(rows, seed=2010)

    print("== bench-check verdict")
    print(report.render())
    print()

    assert not report.ok, "the 30% slowdown must trip the gate"
    regressed = [v for v in report.verdicts if v.status == "regressed"]
    assert regressed and regressed[0].metric == "best_s"
    print(
        f"gate tripped: campaign_wall:best_s "
        f"{regressed[0].candidate:.2f}s vs baseline "
        f"[{regressed[0].baseline_lo:.2f}, {regressed[0].baseline_hi:.2f}]s"
    )

    # The differential profiler names the frame, not just the metric.
    culprits = report.attributions["campaign_wall"]
    top = culprits[0]
    assert top["frame"] == "repro.core.optimizer:optimize"
    assert top["status"] == "regressed"
    print()
    print("== culprit frames (candidate vs baseline mean self-time)")
    for culprit in culprits:
        print(f"  {render_culprit(culprit)}")
    print()
    print(
        f"attribution: the regression lives in {top['frame']} "
        f"(+{top['delta_pct']:.1f}% self-time) -- the cold frame "
        f"moved 0.000s and is not reported"
    )


if __name__ == "__main__":
    main()
